"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and both
prints it and writes it under ``benchmarks/output/``.  The simulation
scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.25, the quick preset); set it to 1.0 to regenerate the
numbers quoted in ``EXPERIMENTS.md``.

Independent runs inside each figure/table fan out over worker
processes: set ``REPRO_JOBS`` to choose the worker count (default
``cpu_count - 1``; ``REPRO_JOBS=1`` forces the serial path).  Results
persist in the on-disk cache (``REPRO_CACHE_DIR``, default
``~/.cache/repro``), so a re-run after an interrupted sweep only pays
for the missing combinations; set ``REPRO_CACHE=0`` for a cold run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.parallel import resolve_jobs
from repro.experiments.runner import RunSettings
from repro.sim.config import SimConfig

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def settings() -> RunSettings:
    """Run settings for benchmark runs (scale from REPRO_BENCH_SCALE)."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "0"))
    if scale >= 1.0:
        config = SimConfig(seed=seed)
    else:
        config = SimConfig(
            stream_length=768, scale=scale, seed=seed, ibs_rate=2e-4
        )
    return RunSettings(config=config, seed=seed)


@pytest.fixture(scope="session")
def repro_jobs() -> int:
    """Worker count the parallel runner will use (REPRO_JOBS env)."""
    return resolve_jobs()


@pytest.fixture(scope="session")
def report_sink():
    """Callable that prints a report and persists it to disk."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _sink(report) -> None:
        text = report.render()
        print()
        print(text)
        (OUTPUT_DIR / f"{report.experiment_id}.txt").write_text(text + "\n")

    return _sink
