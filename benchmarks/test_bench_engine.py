"""Benchmarks the engine hot path itself and emits ``BENCH_engine.json``.

Runs the same figure-shaped grid as ``test_bench_runner`` (CG.D / UA.B
/ SSCA.20 x machines A/B x linux-4k/thp), but serially and with the
per-phase profiler on, so the numbers answer questions the runner
bench cannot: how long does *one* uncached simulation take, where
inside ``Simulation._run_epoch`` does that time go, and how much of it
the stream-bank disk store gives back.

Two passes over the grid, both with ``REPRO_STREAM_CACHE`` pointing at
a block store:

* **cold** — fresh store directory, empty banks: every (workload,
  machine) pair generates and persists its streams and fused
  aggregation columns from scratch.  This is the first-ever sweep on a
  machine.
* **warm** — banks dropped again, store kept: fills come back as
  memmapped block loads.  This is every later process — a re-run, a
  resumed sweep, the second CI job on a primed cache — and is where
  the ``stream_bank_warm`` number comes from.

The PR 2 baseline for this grid (serial, cold, scale 0.25) was
11.973 s; ``speedup_vs_pr2_baseline`` tracks the hot-path trajectory
against it.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.sim.profile import PHASES, run_profiled
from repro.workloads.streambank import STREAM_CACHE_ENV, clear_stream_banks

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: Cold serial wall seconds for this grid recorded by PR 2's
#: ``BENCH_runner.json`` (``serial_wall_s``), the comparison point for
#: the hot-path overhaul.
PR2_BASELINE_WALL_S = 11.973

#: Perf-smoke budget: profiling-side aggregation (``tracker``) plus
#: stream-bank fetch (``stream_bank``) as a share of the *store-warm*
#: pass.  Warm is the gated pass because its attribution is stable: a
#: cold pass spends most of its stream_bank lap inside golden-pinned
#: per-thread generator draws, which no aggregation work can shrink
#: and whose share varies with core count (the prefill worker can only
#: overlap generation when a spare core exists).
WARM_TRACKER_BANK_PCT_BUDGET = 45.0

#: Cold-pass backstop for the same sum: catches a regression in the
#: fused fill path itself without pretending the pinned generation
#: cost away.
COLD_TRACKER_BANK_PCT_BUDGET = 85.0

BENCH_GRID = [
    (wl, machine, policy)
    for wl in ("CG.D", "UA.B", "SSCA.20")
    for machine in ("A", "B")
    for policy in ("linux-4k", "thp")
]


def _sweep(settings):
    """One serial pass over the grid; returns (wall, phase sums, runs)."""
    runs = []
    phase_totals = {phase: 0.0 for phase in PHASES}
    total_wall = 0.0
    for workload, machine, policy in BENCH_GRID:
        start = time.perf_counter()
        result, timer = run_profiled(workload, machine, policy, settings)
        wall = time.perf_counter() - start
        total_wall += wall

        # The profiler brackets every epoch, so its phases must account
        # for (almost all of) the run; the remainder is setup/teardown
        # outside the epoch loop.
        assert timer.n_epochs == len(result.epoch_times_s)
        assert 0.0 < timer.total_s <= wall
        for phase, seconds in timer.phase_s.items():
            phase_totals[phase] += seconds
        runs.append(
            {
                "run": f"{workload}@{machine}/{policy}",
                "wall_s": round(wall, 3),
                "epochs": timer.n_epochs,
                "phases_s": {
                    phase: round(seconds, 4)
                    for phase, seconds in timer.phase_s.items()
                },
            }
        )
    return total_wall, phase_totals, runs


def _tracker_bank_pct(phase_totals) -> float:
    total = sum(phase_totals.values())
    if not total:
        return 0.0
    combined = phase_totals["tracker"] + phase_totals["stream_bank"]
    return round(100.0 * combined / total, 1)


def test_bench_engine(settings, tmp_path, monkeypatch):
    # Cold pass against a guaranteed-fresh store directory: honest
    # first-sweep numbers (generate + persist), even when the
    # environment already carries a primed REPRO_STREAM_CACHE.
    store_dir = tmp_path / "stream-store"
    monkeypatch.setenv(STREAM_CACHE_ENV, str(store_dir))
    clear_stream_banks()
    cold_wall, cold_phases, cold_runs = _sweep(settings)

    # Warm pass: drop the in-memory banks but keep the store, so every
    # fill is a memmapped block load plus the fused-column handoff.
    # Best of two sweeps — the pass is short enough that one scheduler
    # hiccup or cold page cache would dominate a single sample.
    warm_wall, warm_phases = None, None
    for _ in range(2):
        clear_stream_banks()
        wall, phases, _ = _sweep(settings)
        if warm_wall is None or wall < warm_wall:
            warm_wall, warm_phases = wall, phases
    clear_stream_banks()

    store_bytes = sum(
        f.stat().st_size for f in store_dir.rglob("*") if f.is_file()
    )
    cold_total = sum(cold_phases.values())
    payload = {
        "grid": [f"{wl}@{m}/{p}" for wl, m, p in BENCH_GRID],
        "n_runs": len(BENCH_GRID),
        "scale": settings.config.scale,
        "cold_serial_wall_s": round(cold_wall, 3),
        "pr2_baseline_wall_s": PR2_BASELINE_WALL_S,
        "speedup_vs_pr2_baseline": round(PR2_BASELINE_WALL_S / cold_wall, 2),
        "phases_s": {
            phase: round(seconds, 3) for phase, seconds in cold_phases.items()
        },
        "phases_pct": {
            phase: round(100.0 * seconds / cold_total, 1)
            for phase, seconds in cold_phases.items()
        },
        "tracker_bank_pct_cold": _tracker_bank_pct(cold_phases),
        # Stream-bank reuse through the disk store: same grid, block
        # store primed by the cold pass.
        "warm_serial_wall_s": round(warm_wall, 3),
        "stream_bank_warm_s": round(warm_phases["stream_bank"], 3),
        "tracker_bank_pct_warm": _tracker_bank_pct(warm_phases),
        "warm_phases_s": {
            phase: round(seconds, 3) for phase, seconds in warm_phases.items()
        },
        "stream_store_bytes": store_bytes,
        "runs": cold_runs,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))

    # Perf-smoke gates (CI sets REPRO_BENCH_ASSERT=1).
    if os.environ.get("REPRO_BENCH_ASSERT", "").strip() == "1":
        warm_pct = payload["tracker_bank_pct_warm"]
        assert warm_pct <= WARM_TRACKER_BANK_PCT_BUDGET, (
            f"tracker + stream_bank is {warm_pct}% of the store-warm pass"
            f" (budget: {WARM_TRACKER_BANK_PCT_BUDGET}%); the fused"
            " aggregation handoff or the block-store load path regressed"
        )
        cold_pct = payload["tracker_bank_pct_cold"]
        assert cold_pct <= COLD_TRACKER_BANK_PCT_BUDGET, (
            f"tracker + stream_bank is {cold_pct}% of the cold pass"
            f" (budget: {COLD_TRACKER_BANK_PCT_BUDGET}%); the fused fill"
            " pipeline regressed"
        )
        assert warm_wall < cold_wall, (
            "the store-warm pass should beat the cold pass"
            f" (warm {warm_wall:.3f}s vs cold {cold_wall:.3f}s)"
        )
