"""Benchmarks the engine hot path itself and emits ``BENCH_engine.json``.

Runs the same figure-shaped grid as ``test_bench_runner`` (CG.D / UA.B
/ SSCA.20 x machines A/B x linux-4k/thp), but cold, serially and with
the per-phase profiler on, so the numbers answer two questions the
runner bench cannot: how long does *one* uncached simulation take, and
where inside ``Simulation._run_epoch`` does that time go.

The PR 2 baseline for this grid (serial, cold, scale 0.25) was
11.973 s; ``speedup_vs_pr2_baseline`` tracks the hot-path trajectory
against it.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.sim.profile import PHASES, run_profiled
from repro.workloads.streambank import clear_stream_banks

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: Cold serial wall seconds for this grid recorded by PR 2's
#: ``BENCH_runner.json`` (``serial_wall_s``), the comparison point for
#: the hot-path overhaul.
PR2_BASELINE_WALL_S = 11.973

BENCH_GRID = [
    (wl, machine, policy)
    for wl in ("CG.D", "UA.B", "SSCA.20")
    for machine in ("A", "B")
    for policy in ("linux-4k", "thp")
]


def test_bench_engine(settings):
    # Honest cold numbers: the first run of each (workload, machine)
    # pair generates its stream bank from scratch; the paired policy
    # run then shares it — which is exactly the grid's real cost.
    clear_stream_banks()
    runs = []
    phase_totals = {phase: 0.0 for phase in PHASES}
    total_wall = 0.0
    for workload, machine, policy in BENCH_GRID:
        start = time.perf_counter()
        result, timer = run_profiled(workload, machine, policy, settings)
        wall = time.perf_counter() - start
        total_wall += wall

        # The profiler brackets every epoch, so its phases must account
        # for (almost all of) the run; the remainder is setup/teardown
        # outside the epoch loop.
        assert timer.n_epochs == len(result.epoch_times_s)
        assert 0.0 < timer.total_s <= wall
        for phase, seconds in timer.phase_s.items():
            phase_totals[phase] += seconds
        runs.append(
            {
                "run": f"{workload}@{machine}/{policy}",
                "wall_s": round(wall, 3),
                "epochs": timer.n_epochs,
                "phases_s": {
                    phase: round(seconds, 4)
                    for phase, seconds in timer.phase_s.items()
                },
            }
        )

    payload = {
        "grid": [f"{wl}@{m}/{p}" for wl, m, p in BENCH_GRID],
        "n_runs": len(BENCH_GRID),
        "scale": settings.config.scale,
        "cold_serial_wall_s": round(total_wall, 3),
        "pr2_baseline_wall_s": PR2_BASELINE_WALL_S,
        "speedup_vs_pr2_baseline": round(PR2_BASELINE_WALL_S / total_wall, 2),
        "phases_s": {
            phase: round(seconds, 3) for phase, seconds in phase_totals.items()
        },
        "phases_pct": {
            phase: round(100.0 * seconds / sum(phase_totals.values()), 1)
            for phase, seconds in phase_totals.items()
        },
        "runs": runs,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))

    # Perf-smoke gate (CI sets REPRO_BENCH_ASSERT=1): the streams phase
    # must stay under half the wall-clock now that generation is banked.
    if os.environ.get("REPRO_BENCH_ASSERT", "").strip() == "1":
        streams_pct = payload["phases_pct"]["streams"]
        assert streams_pct <= 50.0, (
            f"streams phase is {streams_pct}% of wall-clock (budget: 50%);"
            " the stream-bank fast path regressed"
        )
