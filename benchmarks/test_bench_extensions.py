"""Extension benches: LWP sampling and design-choice ablations."""

from repro.experiments.extensions import (
    ablation_hot_threshold,
    ablation_migration_budget,
    autonuma,
    lwp,
)


def test_bench_autonuma(benchmark, settings, report_sink):
    report = benchmark.pedantic(autonuma, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    # AutoNUMA cannot split pages: it inherits THP's CG/UA failures...
    assert data["CG.D@B"]["autonuma"] < -20.0
    assert data["UA.B@A"]["autonuma"] < -5.0
    # ...while Carrefour-LP recovers them.
    assert data["CG.D@B"]["carrefour-lp"] > data["CG.D@B"]["autonuma"] + 15.0
    # Migrate-to-accessor does help the master-initialised case.
    assert data["pca@B"]["autonuma"] > 20.0


def test_bench_lwp(benchmark, settings, report_sink):
    report = benchmark.pedantic(lwp, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    ssca = data["SSCA.20@A"]
    # Denser LWP samples must not do worse than plain IBS sampling, and
    # should close most of the gap to Carrefour-2M that the reactive
    # misestimation opened.
    assert ssca["carrefour-lp-lwp"] >= ssca["carrefour-lp"] - 3.0


def test_bench_ablation_hot_threshold(benchmark, settings, report_sink):
    report = benchmark.pedantic(
        ablation_hot_threshold, args=(settings,), rounds=1, iterations=1
    )
    report_sink(report)
    data = report.data
    # Disabling hot-page splitting leaves CG's imbalance unfixed.
    assert data["100"]["imbalance"] > data["6"]["imbalance"] + 10.0
    assert data["6"]["improvement"] > data["100"]["improvement"]


def test_bench_ablation_migration_budget(benchmark, settings, report_sink):
    report = benchmark.pedantic(
        ablation_migration_budget, args=(settings,), rounds=1, iterations=1
    )
    report_sink(report)
    data = report.data
    # More budget converges faster: the starved configuration keeps
    # more residual imbalance than the unbounded one.
    assert data["32"]["imbalance"] >= data["4096"]["imbalance"] - 1.0
    assert data["4096"]["improvement"] >= data["32"]["improvement"] - 3.0
