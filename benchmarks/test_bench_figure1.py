"""Regenerates Figure 1: THP improvement over Linux, 19 benchmarks x 2 machines."""

from repro.experiments.experiments import figure1


def test_bench_figure1(benchmark, settings, report_sink):
    report = benchmark.pedantic(
        figure1, args=(settings,), rounds=1, iterations=1
    )
    report_sink(report)
    # Shape assertions from the paper.
    data = report.data
    assert data["B"]["CG.D"] < -15.0, "THP must hurt CG.D on machine B"
    assert data["B"]["WC"] > 40.0, "THP must strongly help WC on machine B"
    assert data["A"]["SSCA.20"] > 5.0, "THP must help SSCA on machine A"
    assert data["A"]["UA.B"] < 0.0, "THP must hurt UA.B"
