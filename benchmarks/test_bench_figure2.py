"""Regenerates Figure 2: Carrefour-2M vs THP on the affected applications."""

from repro.experiments.experiments import figure2


def test_bench_figure2(benchmark, settings, report_sink):
    report = benchmark.pedantic(figure2, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    # Carrefour-2M cannot fix the hot-page effect (CG) or false sharing (UA).
    assert data["B"]["CG.D"]["carrefour-2m"] < -15.0
    assert data["A"]["UA.B"]["carrefour-2m"] < 0.0
    # But it does fix SPECjbb.
    assert (
        data["A"]["SPECjbb"]["carrefour-2m"] > data["A"]["SPECjbb"]["thp"]
    )
