"""Regenerates Figure 3: Carrefour-LP vs THP on the affected applications."""

from repro.experiments.experiments import figure3


def test_bench_figure3(benchmark, settings, report_sink):
    report = benchmark.pedantic(figure3, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    # Carrefour-LP recovers the applications that suffered under THP.
    for bench, machine in (("CG.D", "B"), ("UA.B", "A"), ("UA.C", "B")):
        lp = data[machine][bench]["carrefour-lp"]
        thp = data[machine][bench]["thp"]
        assert lp > thp, f"{bench}@{machine}: LP ({lp:+.1f}) must beat THP ({thp:+.1f})"
    assert data["B"]["CG.D"]["carrefour-lp"] > -16.0
