"""Regenerates Figure 4: component breakdown over Linux with THP."""

from repro.experiments.experiments import figure4


def test_bench_figure4(benchmark, settings, report_sink):
    report = benchmark.pedantic(figure4, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    # For CG the reactive path (hot-page splitting) is what recovers
    # performance over plain THP.
    assert data["B"]["CG.D"]["carrefour-lp"] > 15.0
    assert data["B"]["CG.D"]["reactive-only"] > 15.0
    # Conservative-only starts from 4KB pages, avoiding CG's hot pages
    # entirely.
    assert data["B"]["CG.D"]["conservative-only"] > 15.0
    # Carrefour-LP is the best (or close to the best) configuration.
    for machine in ("A", "B"):
        for bench, per_policy in data[machine].items():
            best = max(per_policy.values())
            assert per_policy["carrefour-lp"] > best - 25.0, (
                f"{bench}@{machine}: LP far from best"
            )
