"""Regenerates Figure 5: THP and Carrefour-LP on the unaffected apps."""

from repro.experiments.experiments import figure5


def test_bench_figure5(benchmark, settings, report_sink):
    report = benchmark.pedantic(figure5, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    # Carrefour-LP does not significantly hurt the unaffected apps.
    for machine in ("A", "B"):
        for bench, per_policy in data[machine].items():
            assert per_policy["carrefour-lp"] > -12.0, (
                f"{bench}@{machine}: LP hurt an unaffected app"
            )
    # EP.C and pca had NUMA issues to begin with: LP helps a lot.
    assert data["B"]["pca"]["carrefour-lp"] > 40.0
    assert data["B"]["EP.C"]["carrefour-lp"] > 5.0
