"""Regenerates Section 4.2: Carrefour-LP overhead assessment."""

from repro.experiments.experiments import overhead
from repro.workloads.registry import UNAFFECTED_SET


def test_bench_overhead(benchmark, settings, report_sink):
    report = benchmark.pedantic(overhead, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    # LP vs the reactive approach: small overhead across the board
    # (paper: 1-2%, 3.2% worst; allow slack at reduced scale).
    worst_vs_reactive = max(
        entries["reactive-only"]
        for machine in data.values()
        for entries in machine.values()
    )
    assert worst_vs_reactive < 15.0
    # For neutral applications LP must stay near Linux-4K.
    for bench in ("Kmeans", "BT.B", "MG.D", "DC.A"):
        for machine in ("A", "B"):
            assert data[machine][bench]["linux-4k"] < 12.0, (
                f"{bench}@{machine}: LP overhead vs Linux too high"
            )
