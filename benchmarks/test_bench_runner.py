"""Benchmarks the parallel runner itself and emits ``BENCH_runner.json``.

Times one representative grid three ways — serial (``jobs=1``),
parallel (``REPRO_JOBS`` or 2+), and warm (everything answered from
the persistent cache) — plus one representative run (CG.D on the
8-node machine B) with and without per-epoch invariant checking, and
records the wall-clock numbers in ``BENCH_runner.json`` at the
repository root so the performance trajectory of the execution layer
is tracked from PR to PR.

The grid is run in a throwaway cache directory so the timings are
honest cold-start numbers regardless of the developer's cache state.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import time

import pytest

from repro.analysis.invariants import CHECK_ENV
from repro.experiments.parallel import (
    GridRunner,
    RunSpec,
    backend_choice,
    resolve_jobs,
)
from repro.experiments.runner import clear_cache, execute_run
from repro.workloads.streambank import STREAM_CACHE_ENV, clear_stream_banks

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_runner.json"

#: A figure-shaped slice of the experiment grid: shared baselines plus
#: per-policy runs across both machines, small enough to time twice.
BENCH_GRID = [
    RunSpec(wl, machine, policy)
    for wl in ("CG.D", "UA.B", "SSCA.20")
    for machine in ("A", "B")
    for policy in ("linux-4k", "thp")
]


def _timed_run(
    settings, jobs: int, cache_dir: pathlib.Path, backend: str = None
) -> float:
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    clear_cache()
    # Each timed pass starts with cold stream banks AND its own block
    # store; a shared REPRO_STREAM_CACHE would let the serial pass warm
    # the parallel pass's fills from disk and inflate the speedup.
    os.environ[STREAM_CACHE_ENV] = str(cache_dir / "stream-store")
    clear_stream_banks()
    grid = GridRunner(settings, backend=backend)
    for spec in BENCH_GRID:
        grid.add_spec(spec)
    start = time.perf_counter()
    results = grid.run(jobs=jobs)
    elapsed = time.perf_counter() - start
    assert len(results) == len(BENCH_GRID)
    return elapsed


def _timed_invariant_overhead(settings, repeats: int = 3) -> dict:
    """Wall-clock for CG.D@B with per-epoch invariant checking off/on.

    Uses ``execute_run`` (no caching at either level) so both passes
    really simulate; ``REPRO_CHECK`` must not override the config flag,
    so it is cleared for the measurement.

    A single off/on pair is dominated by warm-up noise (allocator and
    stream-bank caches, CPU frequency) and has historically reported
    negative overhead for a strictly-additive check.  Each arm is
    therefore timed ``repeats`` times interleaved, the raw timings are
    recorded, and the overhead is computed best-of-N against best-of-N
    — minima are the noise-robust estimator for a lower-bounded cost.
    """
    old_env = os.environ.pop(CHECK_ENV, None)
    try:
        raw = {"off": [], "on": []}
        for _ in range(repeats):
            # Interleave the arms so drift (thermal, competing load)
            # hits both equally instead of biasing the second arm.
            for label, checked in (("off", False), ("on", True)):
                cfg = dataclasses.replace(
                    settings.config, check_invariants=checked
                )
                run_settings = dataclasses.replace(settings, config=cfg)
                start = time.perf_counter()
                execute_run("CG.D", "B", "carrefour-lp", run_settings)
                raw[label].append(time.perf_counter() - start)
    finally:
        if old_env is not None:
            os.environ[CHECK_ENV] = old_env
    best_off = min(raw["off"])
    best_on = min(raw["on"])
    return {
        "run": "CG.D@B/carrefour-lp",
        "repeats": repeats,
        "unchecked_wall_s_raw": [round(s, 3) for s in raw["off"]],
        "checked_wall_s_raw": [round(s, 3) for s in raw["on"]],
        "unchecked_wall_s": round(best_off, 3),
        "checked_wall_s": round(best_on, 3),
        "overhead_pct": round(
            100.0 * (best_on - best_off) / best_off, 1
        )
        if best_off
        else None,
    }


def test_bench_runner(settings, repro_jobs, tmp_path):
    old_cache_dir = os.environ.get("REPRO_CACHE_DIR")
    old_stream_cache = os.environ.get(STREAM_CACHE_ENV)
    # The backend comes from the same auto-selection the runner uses,
    # and the reason is recorded in the payload: a one-core box with no
    # explicit REPRO_JOBS_BACKEND resolves to the serial loop (this
    # grid previously recorded speedup_parallel 0.68 from a thread pool
    # time-slicing a single core), in which case the parallel pass is
    # honestly skipped rather than timed as a pessimization.  With an
    # explicit thread backend, jobs floor at 2 so even a one-core box
    # measures real in-process overlap (shared stream banks +
    # GIL-released numpy sections).
    backend, backend_reason = backend_choice()
    jobs_requested = max(2, repro_jobs)
    jobs = resolve_jobs(jobs_requested, backend)
    try:
        serial_s = _timed_run(settings, 1, tmp_path / "serial")
        parallel_s = (
            _timed_run(settings, jobs, tmp_path / "parallel", backend)
            if jobs > 1
            else None
        )
        # Warm pass: same cache dir as the parallel pass, memo cleared,
        # so every run is answered from disk.
        clear_cache()
        os.environ["REPRO_CACHE_DIR"] = str(tmp_path / ("parallel" if jobs > 1 else "serial"))
        start = time.perf_counter()
        grid = GridRunner(settings, backend=backend)
        for spec in BENCH_GRID:
            grid.add_spec(spec)
        warm = grid.run(jobs=jobs)
        warm_s = time.perf_counter() - start
    finally:
        if old_cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache_dir
        if old_stream_cache is None:
            os.environ.pop(STREAM_CACHE_ENV, None)
        else:
            os.environ[STREAM_CACHE_ENV] = old_stream_cache
        clear_cache()
        clear_stream_banks()

    assert len(warm) == len(BENCH_GRID)
    invariant_check = _timed_invariant_overhead(settings)
    payload = {
        "grid": [spec.describe() for spec in BENCH_GRID],
        "n_runs": len(BENCH_GRID),
        "jobs_requested": jobs_requested,
        "jobs_effective": jobs,
        "backend": backend,
        "backend_reason": backend_reason,
        "cpu_count": os.cpu_count(),
        "scale": settings.config.scale,
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3) if parallel_s is not None else None,
        "warm_cache_wall_s": round(warm_s, 3),
        "speedup_parallel": (
            round(serial_s / parallel_s, 2) if parallel_s else None
        ),
        "speedup_warm": round(serial_s / warm_s, 2) if warm_s else None,
        "invariant_check": invariant_check,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))

    # The warm path must always beat re-simulating; the parallel-vs-
    # serial ratio is hardware-dependent (>=2x on a 4+-core machine)
    # so it is recorded, not asserted, to keep CI load-tolerant.
    assert warm_s < serial_s
