"""Benchmarks the parallel runner itself and emits ``BENCH_runner.json``.

Times one representative grid three ways — serial (``jobs=1``),
parallel (``REPRO_JOBS`` or 2+), and warm (everything answered from
the persistent cache) — and records the wall-clock numbers in
``BENCH_runner.json`` at the repository root so the performance
trajectory of the execution layer is tracked from PR to PR.

The grid is run in a throwaway cache directory so the timings are
honest cold-start numbers regardless of the developer's cache state.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.experiments.parallel import GridRunner, RunSpec, resolve_jobs
from repro.experiments.runner import clear_cache

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_runner.json"

#: A figure-shaped slice of the experiment grid: shared baselines plus
#: per-policy runs across both machines, small enough to time twice.
BENCH_GRID = [
    RunSpec(wl, machine, policy)
    for wl in ("CG.D", "UA.B", "SSCA.20")
    for machine in ("A", "B")
    for policy in ("linux-4k", "thp")
]


def _timed_run(settings, jobs: int, cache_dir: pathlib.Path) -> float:
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    clear_cache()
    grid = GridRunner(settings)
    for spec in BENCH_GRID:
        grid.add_spec(spec)
    start = time.perf_counter()
    results = grid.run(jobs=jobs)
    elapsed = time.perf_counter() - start
    assert len(results) == len(BENCH_GRID)
    return elapsed


def test_bench_runner(settings, repro_jobs, tmp_path):
    old_cache_dir = os.environ.get("REPRO_CACHE_DIR")
    jobs = max(2, repro_jobs)
    try:
        serial_s = _timed_run(settings, 1, tmp_path / "serial")
        parallel_s = _timed_run(settings, jobs, tmp_path / "parallel")
        # Warm pass: same cache dir as the parallel pass, memo cleared,
        # so every run is answered from disk.
        clear_cache()
        start = time.perf_counter()
        grid = GridRunner(settings)
        for spec in BENCH_GRID:
            grid.add_spec(spec)
        warm = grid.run(jobs=jobs)
        warm_s = time.perf_counter() - start
    finally:
        if old_cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache_dir
        clear_cache()

    assert len(warm) == len(BENCH_GRID)
    payload = {
        "grid": [spec.describe() for spec in BENCH_GRID],
        "n_runs": len(BENCH_GRID),
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "scale": settings.config.scale,
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "warm_cache_wall_s": round(warm_s, 3),
        "speedup_parallel": round(serial_s / parallel_s, 2) if parallel_s else None,
        "speedup_warm": round(serial_s / warm_s, 2) if warm_s else None,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))

    # The warm path must always beat re-simulating; the parallel-vs-
    # serial ratio is hardware-dependent (>=2x on a 4+-core machine)
    # so it is recorded, not asserted, to keep CI load-tolerant.
    assert warm_s < serial_s
