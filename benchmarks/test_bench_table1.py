"""Regenerates Table 1: detailed Linux-vs-THP analysis of five apps."""

from repro.experiments.experiments import table1


def test_bench_table1(benchmark, settings, report_sink):
    report = benchmark.pedantic(table1, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    cg = data["CG.D@B"]
    assert cg["thp"].imbalance_pct > cg["linux"].imbalance_pct + 30
    ua = data["UA.C@B"]
    assert ua["thp"].lar_pct < ua["linux"].lar_pct - 10
    wc = data["WC@B"]
    assert wc["thp"].fault_time_total_s < wc["linux"].fault_time_total_s
    ssca = data["SSCA.20@A"]
    assert ssca["linux"].pct_l2_walk > 8
    assert ssca["thp"].pct_l2_walk < 2
