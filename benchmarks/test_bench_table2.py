"""Regenerates Table 2: PAMUP / NHP / PSP / imbalance / LAR, machine A."""

from repro.experiments.experiments import table2


def test_bench_table2(benchmark, settings, report_sink):
    report = benchmark.pedantic(table2, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    cg = data["CG.D"]
    assert cg["linux-4k"].n_hot_pages == 0
    assert cg["thp"].n_hot_pages >= 1
    assert cg["carrefour-2m"].n_hot_pages >= 1  # migration cannot fix them
    ua = data["UA.B"]
    assert ua["thp"].psp_pct > ua["linux-4k"].psp_pct + 30
    jbb = data["SPECjbb"]
    assert jbb["carrefour-2m"].imbalance_pct < jbb["thp"].imbalance_pct
