"""Regenerates Table 3: LAR and imbalance under the four policies."""

from repro.experiments.experiments import table3


def test_bench_table3(benchmark, settings, report_sink):
    report = benchmark.pedantic(table3, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    cg = data["CG.D@B"]
    # THP destroys CG's balance; Carrefour-2M cannot restore it;
    # Carrefour-LP restores it almost entirely (paper: 59% -> 3%).
    assert cg["linux-4k"]["imbalance"] < 10
    assert cg["thp"]["imbalance"] > 40
    assert cg["carrefour-2m"]["imbalance"] > 15
    assert cg["carrefour-lp"]["imbalance"] < 12
    ua = data["UA.B@A"]
    # THP drops UA's LAR; Carrefour-2M keeps it low; LP restores it.
    assert ua["linux-4k"]["lar"] > 85
    assert ua["thp"]["lar"] < 80
    assert ua["carrefour-2m"]["lar"] <= ua["thp"]["lar"] + 3
    assert ua["carrefour-lp"]["lar"] > ua["thp"]["lar"] + 5
