"""Regenerates Section 4.4: the 1GB-page study (SSCA, streamcluster)."""

from repro.experiments.experiments import verylarge


def test_bench_verylarge(benchmark, settings, report_sink):
    report = benchmark.pedantic(verylarge, args=(settings,), rounds=1, iterations=1)
    report_sink(report)
    data = report.data
    # Paper: streamcluster degrades ~4x with 1GB pages, SSCA by 34%.
    assert data["streamcluster"]["slowdown-1g"] > 1.5
    assert data["SSCA.20"]["1g"] < -15.0
    # Carrefour-LP (with 1GB splitting support) recovers ground.
    assert data["streamcluster"]["lp-on-1g"] > data["streamcluster"]["1g"]
