#!/usr/bin/env python3
"""Writing a custom placement policy against the public API.

Implements the classic static alternative to Carrefour — interleave
every page round-robin across nodes at allocation time — and compares
it against the paper's policies on a workload with a pre-existing NUMA
problem (a master-initialised shared matrix, like Metis pca).

Interleaving fixes imbalance but sacrifices the locality a smarter
policy could recover; that trade-off is visible directly in the LAR
column.

Run:  python examples/custom_policy.py
"""

import numpy as np

from repro.experiments.configs import make_policy
from repro.hardware.machines import machine_b
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.policy import PlacementPolicy, PolicyActionSummary
from repro.core.metrics import PageSampleTable
from repro.workloads.base import WorkloadInstance
from repro.workloads.common import reference_cost
from repro.workloads.regions import PartitionedRegion, SharedRegion

MIB = 1024 * 1024


class InterleaveAllPolicy(PlacementPolicy):
    """Migrate every sampled page round-robin across nodes.

    A deliberately blunt instrument: it balances controllers perfectly
    but ignores locality (private pages get scattered too).
    """

    name = "interleave-all"
    interval_s = 1.0

    def __init__(self) -> None:
        self._cursor = 0

    def setup(self, sim) -> None:
        sim.thp.enable_alloc()
        sim.thp.enable_promotion()

    def on_interval(self, sim, samples, window) -> PolicyActionSummary:
        summary = PolicyActionSummary()
        table = PageSampleTable.from_samples(
            samples, sim.asp, sim.machine.n_nodes, granularity="backing"
        )
        for page_id in table.ids:
            page_id = int(page_id)
            if not sim.asp.backing_is_live(page_id):
                continue
            target = self._cursor % sim.machine.n_nodes
            self._cursor += 1
            moved = sim.asp.migrate_backing(page_id, target)
            summary.bytes_migrated += moved
            if moved == 4096:
                summary.migrated_4k += 1
            elif moved:
                summary.migrated_2m += 1
        return summary


def build_workload(machine):
    regions = [
        SharedRegion(
            "matrix", total_bytes=512 * MIB, access_share=0.9, master_init=True
        ),
        PartitionedRegion(
            "partials", bytes_per_thread=2 * MIB, access_share=0.1, contiguous=True
        ),
    ]
    return WorkloadInstance(
        "pca-like",
        machine,
        regions,
        cost=reference_cost(machine, rho=0.55, cpu_s=0.05),
        total_epochs=16,
    )


def main() -> None:
    machine = machine_b()
    config = SimConfig(stream_length=768, seed=0, ibs_rate=2e-4)
    policies = [
        make_policy("linux-4k"),
        make_policy("thp"),
        InterleaveAllPolicy(),
        make_policy("carrefour-2m"),
        make_policy("carrefour-lp"),
    ]
    results = {}
    for policy in policies:
        sim = Simulation(machine, build_workload(machine), policy, config)
        results[policy.name] = sim.run()
    baseline = results["linux-4k"]
    print(f"{'policy':16s} {'vs linux':>9s} {'LAR':>5s} {'imbalance':>9s}")
    for name, result in results.items():
        m = result.metrics()
        print(
            f"{name:16s} {result.improvement_over(baseline):+8.1f}% "
            f"{m.lar_pct:4.0f}% {m.imbalance_pct:8.0f}%"
        )
    print(
        "\nThe master-initialised matrix starts entirely on node 0."
        "\nBlind interleaving balances the controllers; Carrefour does"
        "\nthe same for shared pages but keeps single-consumer pages"
        "\nlocal, so it wins on both columns."
    )


if __name__ == "__main__":
    main()
