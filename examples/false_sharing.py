#!/usr/bin/env python3
"""Page-level false sharing as a function of data layout (Section 3.1).

Sweeps the block size of a per-thread partitioned region.  With small
blocks, one 2MB page holds many threads' private data: under THP the
page must live on a single node (or be interleaved), destroying the
locality that 4KB first-touch placement provides.  Blocks of 2MB or
more eliminate the effect entirely — the data-layout fix the paper's
Carrefour-LP makes unnecessary.

Run:  python examples/false_sharing.py
"""

from repro.hardware.machines import machine_a
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.policy import LinuxPolicy
from repro.workloads.base import WorkloadInstance
from repro.workloads.common import reference_cost
from repro.workloads.regions import PartitionedRegion

KIB = 1024
MIB = 1024 * KIB


def run(block_bytes: int, thp: bool):
    machine = machine_a()
    region = PartitionedRegion(
        "elements",
        bytes_per_thread=12 * MIB,
        access_share=1.0,
        block_bytes=block_bytes,
        neighbor_share=0.05,
    )
    instance = WorkloadInstance(
        "false-sharing-demo",
        machine,
        [region],
        cost=reference_cost(machine, rho=0.4, cpu_s=0.06),
        total_epochs=8,
    )
    sim = Simulation(
        machine, instance, LinuxPolicy(thp=thp), SimConfig(stream_length=768, seed=0)
    )
    return sim.run()


def main() -> None:
    print(f"{'block size':>10s} {'LAR 4K':>7s} {'LAR THP':>8s} "
          f"{'PSP 4K':>7s} {'PSP THP':>8s} {'THP slowdown':>13s}")
    for block in (64 * KIB, 256 * KIB, 512 * KIB, 2 * MIB, 4 * MIB):
        small = run(block, thp=False)
        huge = run(block, thp=True)
        ms, mh = small.metrics(), huge.metrics()
        slowdown = (huge.runtime_s / small.runtime_s - 1) * 100
        label = f"{block // KIB}KiB" if block < MIB else f"{block // MIB}MiB"
        print(
            f"{label:>10s} {ms.lar_pct:6.0f}% {mh.lar_pct:7.0f}% "
            f"{ms.psp_pct:6.0f}% {mh.psp_pct:7.0f}% {slowdown:+12.1f}%"
        )
    print(
        "\nSmall blocks: high locality at 4KB, but each 2MB page mixes"
        "\nmany threads' data (PSP explodes, LAR collapses under THP)."
        "\nOnce blocks reach the huge-page size, pages are single-owner"
        "\nagain and THP is harmless — UA's pathology is purely a"
        "\nlayout-versus-page-size interaction."
    )


if __name__ == "__main__":
    main()
