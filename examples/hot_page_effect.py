#!/usr/bin/env python3
"""The hot-page effect, built from the public API (paper Section 3.1).

Constructs a custom workload whose hot data fits in three 2MB pages —
fewer hot pages than NUMA nodes — and shows:

1. at 4KB pages the hot data spreads across all controllers (balanced);
2. THP coalesces it onto <= 3 nodes (imbalance, latency blow-up);
3. migration/interleaving at 2MB granularity cannot fix it
   (3 pages cannot cover 8 nodes);
4. splitting + interleaving the constituent 4KB pages fixes it.

Run:  python examples/hot_page_effect.py
"""

from repro.hardware.machines import machine_b
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.experiments.configs import make_policy
from repro.workloads.base import CostProfile, WorkloadInstance
from repro.workloads.common import reference_cost
from repro.workloads.regions import HotRegion, PartitionedRegion

MIB = 1024 * 1024


def build_workload(machine):
    """A CG-like kernel: one tiny, very hot array + private slabs."""
    regions = [
        HotRegion("hot-array", total_bytes=6 * MIB, access_share=0.45),
        PartitionedRegion(
            "private-slabs",
            bytes_per_thread=16 * MIB,
            access_share=0.55,
            contiguous=True,
        ),
    ]
    return WorkloadInstance(
        "hot-page-demo",
        machine,
        regions,
        cost=reference_cost(machine, rho=0.55, cpu_s=0.05),
        total_epochs=16,
    )


def run(policy_name: str):
    machine = machine_b()
    config = SimConfig(stream_length=768, seed=0, ibs_rate=2e-4)
    sim = Simulation(machine, build_workload(machine), make_policy(policy_name), config)
    return sim.run()


def main() -> None:
    print(f"{'policy':14s} {'runtime':>9s} {'imbalance':>9s} "
          f"{'hot pages':>9s} {'PAMUP':>6s} {'splits':>7s}")
    for policy in ["linux-4k", "thp", "carrefour-2m", "carrefour-lp"]:
        result = run(policy)
        m = result.metrics()
        print(
            f"{policy:14s} {m.runtime_s:8.2f}s {m.imbalance_pct:8.0f}% "
            f"{m.n_hot_pages:9d} {m.pamup_pct:5.1f}% {m.pages_split_2m:7d}"
        )
    print(
        "\nUnder THP the 6MB hot array becomes 3 huge pages (NHP=3 < 8"
        "\nnodes): no placement of 3 pages can balance 8 controllers."
        "\nCarrefour-2M shuffles them in vain; Carrefour-LP detects pages"
        "\nexceeding 6% of accesses, splits them, and interleaves the"
        "\n4KB pieces round-robin — balance restored (paper Table 3:"
        "\nimbalance 59% -> 3%)."
    )


if __name__ == "__main__":
    main()
