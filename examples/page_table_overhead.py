#!/usr/bin/env python3
"""Why large pages exist: page-table memory (paper Section 1).

Reproduces the motivating calculation from the paper's introduction:
"a large Oracle DBMS installation with 500 concurrent connections
consumed 7GB of RAM for page tables alone" — each process maps the
shared buffer cache with private page tables.

Run:  python examples/page_table_overhead.py
"""

from repro._util import human_bytes
from repro.vm.layout import PageSize
from repro.vm.page_table import PageTableModel

GIB = 1 << 30


def main() -> None:
    model = PageTableModel()
    buffer_cache = 7 * GIB
    connections = 500

    print(f"Shared buffer cache: {human_bytes(buffer_cache)}, "
          f"{connections} connections\n")
    print(f"{'page size':>10s} {'tables/process':>15s} {'total tables':>13s} "
          f"{'TLB entries needed':>19s}")
    for size, tlb_entries in (
        (PageSize.SIZE_4K, 1024),
        (PageSize.SIZE_2M, 128),
        (PageSize.SIZE_1G, 16),
    ):
        out = model.footprint_per_process(buffer_cache, size, connections)
        translations = buffer_cache // int(size)
        coverage = tlb_entries * int(size)
        print(
            f"{int(size) // 1024:>9d}K {human_bytes(out['per_process_bytes']):>15s} "
            f"{human_bytes(out['total_bytes']):>13s} "
            f"{translations:>10,d} ({human_bytes(coverage)} TLB reach)"
        )

    print(
        "\n4KB pages: ~7GB of page tables across 500 processes and a"
        "\nworking set 1,700x larger than the TLB's reach.  2MB pages"
        "\ncut both by ~512x — which is exactly why THP exists, and why"
        "\nthe paper asks what those big pages cost on NUMA machines."
    )


if __name__ == "__main__":
    main()
