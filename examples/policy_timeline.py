#!/usr/bin/env python3
"""Watch Carrefour-LP converge, epoch by epoch.

The paper's figures report end-state averages; this example renders the
*trajectory*: CG.D starts with THP's catastrophic controller imbalance,
the daemon samples for one second, splits the hot pages, interleaves
the pieces — and the imbalance sparkline collapses while epoch times
recover.  Under plain THP nothing ever improves.

Run:  python examples/policy_timeline.py
"""

from repro.experiments.runner import RunSettings, run_benchmark
from repro.experiments.timeline import (
    convergence_epoch,
    epoch_series,
    render_timeline,
)


def main() -> None:
    settings = RunSettings.quick(seed=0)
    for policy in ("thp", "carrefour-2m", "carrefour-lp"):
        result = run_benchmark("CG.D", "B", policy, settings)
        print()
        print(render_timeline(result))
        series = epoch_series(result)
        settled = convergence_epoch(series.imbalance_pct, target=20.0)
        if settled >= 0:
            print(f"  -> imbalance settled below 20% from epoch {settled}")
        else:
            print("  -> imbalance never settled below 20%")

    print(
        "\nTHP's imbalance is flat and fatal; Carrefour-2M shuffles 2MB"
        "\npages without effect (three hot pages cannot cover eight"
        "\nnodes); Carrefour-LP splits them at the first interval (the"
        "\n'S' marker) and the imbalance collapses within a couple of"
        "\nepochs."
    )


if __name__ == "__main__":
    main()
