#!/usr/bin/env python3
"""Quickstart: run one benchmark under several placement policies.

Reproduces the paper's headline in one screen of output: transparent
huge pages help some applications and badly hurt others, and
Carrefour-LP recovers the losses while keeping the benefits.

Run:  python examples/quickstart.py
"""

from repro.experiments.runner import RunSettings, run_benchmark

POLICIES = ["linux-4k", "thp", "carrefour-2m", "carrefour-lp"]


def main() -> None:
    settings = RunSettings.quick(seed=0)

    for workload, machine in [("CG.D", "B"), ("WC", "B")]:
        print(f"\n=== {workload} on machine {machine} ===")
        baseline = run_benchmark(workload, machine, "linux-4k", settings)
        print(f"{'policy':14s} {'runtime':>9s} {'vs linux':>9s} "
              f"{'LAR':>5s} {'imbalance':>9s} {'2M pages':>9s}")
        for policy in POLICIES:
            result = run_benchmark(workload, machine, policy, settings)
            m = result.metrics()
            huge = m.final_page_counts.get(2 * 1024 * 1024, 0)
            print(
                f"{policy:14s} {m.runtime_s:8.2f}s "
                f"{result.improvement_over(baseline):+8.1f}% "
                f"{m.lar_pct:4.0f}% {m.imbalance_pct:8.0f}% {huge:9d}"
            )

    print(
        "\nTHP doubles WC's performance (fewer page faults, fewer TLB"
        "\nmisses) but cripples CG.D: its hot data coalesces into a few"
        "\n2MB pages that overload one memory controller.  Carrefour-LP"
        "\nsplits the hot pages, interleaves the pieces, and recovers"
        "\nthe loss — without giving up THP where it helps."
    )


if __name__ == "__main__":
    main()
