#!/usr/bin/env python3
"""Page replication: Carrefour's third mechanism [Dashti et al., ASPLOS'13].

A master-initialised, read-only lookup table (NAS EP's random tables,
an in-memory dictionary, a model's weights...) is the worst case for
first-touch placement — everything lands on one node — and even
interleaving only balances it: 7 of 8 accesses stay remote.

Replication places a copy on *every* node, so reads are always local.
The catch is writes: the first store to a replicated page forces the
replicas to collapse, which is why the policy only replicates pages
whose samples contain no stores.  This example shows both sides.

Run:  python examples/read_mostly_replication.py
"""

from repro.core.carrefour import CarrefourConfig, CarrefourPolicy
from repro.hardware.machines import machine_b
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.workloads.base import WorkloadInstance
from repro.workloads.common import reference_cost
from repro.workloads.regions import PartitionedRegion, SharedRegion

MIB = 1024 * 1024


def build_workload(machine, table_write_fraction):
    regions = [
        SharedRegion(
            "lookup-table",
            total_bytes=256 * MIB,
            access_share=0.85,
            master_init=True,
            write_fraction=table_write_fraction,
            tlb_run_length=500.0,
        ),
        PartitionedRegion(
            "private", bytes_per_thread=2 * MIB, access_share=0.15, contiguous=True
        ),
    ]
    return WorkloadInstance(
        "lookup-demo",
        machine,
        regions,
        cost=reference_cost(machine, rho=0.45, cpu_s=0.08),
        total_epochs=14,
    )


def run(machine, write_fraction, replication):
    policy = CarrefourPolicy(
        thp=True,
        config=CarrefourConfig(replication_enabled=replication),
        name="carrefour-2m" + ("" if replication else "-norepl"),
    )
    config = SimConfig(stream_length=768, seed=0, ibs_rate=2e-4)
    sim = Simulation(machine, build_workload(machine, write_fraction), policy, config)
    return sim.run()


def main() -> None:
    machine = machine_b()
    print(f"{'table writes':>12s} {'replication':>11s} {'runtime':>9s} "
          f"{'LAR*':>5s} {'replicated':>10s} {'collapsed':>9s}")
    for write_fraction in (0.0, 0.10):
        for replication in (False, True):
            result = run(machine, write_fraction, replication)
            m = result.metrics()
            print(
                f"{write_fraction:11.0%} {str(replication):>11s} "
                f"{m.runtime_s:8.2f}s {result.steady_lar(0.5):4.0f}% "
                f"{m.pages_replicated:10d} {m.replicas_collapsed:9d}"
            )
    print(
        "\n(LAR* is steady-state: second half of the run.)"
        "\nWith a read-only table, replication lifts the LAR to near"
        "\n100% — interleaving alone cannot beat 1/n_nodes locality on"
        "\nshared data.  Give the same table a 10% store ratio and the"
        "\npolicy correctly backs off (few or no pages replicate; any"
        "\nmistakes collapse on the first sampled write)."
    )


if __name__ == "__main__":
    main()
