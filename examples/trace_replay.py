#!/usr/bin/env python3
"""Record an access trace once, replay it under every policy.

The synthetic benchmarks here are calibrated to the paper, but the
library is equally usable on *your* application's behaviour: record (or
import) a per-thread access trace and replay it under any placement
policy.  This example records the CG-like hot-page workload into a
compressed .npz trace, reloads it, and compares policies on the exact
same access sequence.

Run:  python examples/trace_replay.py
"""

import os
import tempfile

from repro.experiments.configs import make_policy
from repro.hardware.machines import machine_b
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.workloads.base import WorkloadInstance
from repro.workloads.common import reference_cost
from repro.workloads.regions import HotRegion, PartitionedRegion
from repro.workloads.trace import TraceData, TraceRecorder, TraceWorkloadInstance

MIB = 1024 * 1024


def build_live_workload(machine):
    regions = [
        HotRegion("hot-array", total_bytes=6 * MIB, access_share=0.45),
        PartitionedRegion(
            "slabs", bytes_per_thread=16 * MIB, access_share=0.55, contiguous=True
        ),
    ]
    return WorkloadInstance(
        "cg-like",
        machine,
        regions,
        cost=reference_cost(machine, rho=0.55, cpu_s=0.05),
        total_epochs=12,
    )


def main() -> None:
    machine = machine_b()
    config = SimConfig(stream_length=768, seed=0, ibs_rate=2e-4)

    # 1. Record the workload's accesses once.
    live = build_live_workload(machine)
    trace = TraceRecorder().record(live, stream_length=768)
    path = os.path.join(tempfile.gettempdir(), "cg_like_trace.npz")
    trace.save(path)
    size_mb = os.path.getsize(path) / 1e6
    print(
        f"Recorded {len(trace):,} accesses from {trace.n_threads} threads"
        f" over {trace.total_epochs} epochs -> {path} ({size_mb:.1f} MB)"
    )

    # 2. Reload and replay under several policies.
    reloaded = TraceData.load(path)
    print(f"\n{'policy':14s} {'runtime':>9s} {'imbalance':>9s} {'splits':>7s}")
    results = {}
    for policy_name in ("linux-4k", "thp", "carrefour-lp"):
        replay = TraceWorkloadInstance("cg-like-replay", machine, reloaded)
        result = Simulation(machine, replay, make_policy(policy_name), config).run()
        results[policy_name] = result
        m = result.metrics()
        print(
            f"{policy_name:14s} {m.runtime_s:8.2f}s {m.imbalance_pct:8.0f}%"
            f" {m.pages_split_2m:7d}"
        )

    base = results["linux-4k"]
    lp = results["carrefour-lp"]
    print(
        f"\nOn the replayed trace, Carrefour-LP runs"
        f" {lp.improvement_over(base):+.1f}% vs 4KB pages — every policy"
        "\nsaw byte-for-byte the same access sequence, so the comparison"
        "\nisolates placement effects exactly."
    )


if __name__ == "__main__":
    main()
