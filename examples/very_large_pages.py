#!/usr/bin/env python3
"""The 1GB-page study (paper Section 4.4).

Backs SSCA and streamcluster with hugetlbfs-style 1GB pages on the
8-node machine B and shows the paper's finding: hot-page and
false-sharing effects become pervasive — whole gigabytes of many
threads' data collapse onto one node — and only splitting
(Carrefour-LP) recovers.

Run:  python examples/very_large_pages.py
"""

from repro.experiments.runner import RunSettings, run_benchmark
from repro.vm.layout import PageSize


def main() -> None:
    settings = RunSettings.quick(seed=0)
    for workload in ("streamcluster", "SSCA.20"):
        base = run_benchmark(workload, "B", "linux-4k", settings)
        rows = [
            ("4KB pages", run_benchmark(workload, "B", "linux-4k", settings)),
            ("2MB pages (THP)", run_benchmark(workload, "B", "thp", settings)),
            ("1GB pages", run_benchmark(workload, "B", "linux-4k", settings,
                                        backing_1g=True)),
            ("1GB + Carrefour-LP", run_benchmark(workload, "B", "carrefour-lp",
                                                 settings, backing_1g=True)),
        ]
        print(f"\n=== {workload} on machine B ===")
        print(f"{'config':>20s} {'vs 4KB':>8s} {'imbalance':>9s} "
              f"{'PSP':>5s} {'1G pages kept':>13s}")
        for label, result in rows:
            m = result.metrics()
            giga = m.final_page_counts.get(PageSize.SIZE_1G, 0)
            print(
                f"{label:>20s} {result.improvement_over(base):+7.1f}% "
                f"{m.imbalance_pct:8.0f}% {m.psp_pct:4.0f}% {giga:13d}"
            )
    print(
        "\n1GB pages concentrate entire working sets onto one or two"
        "\nnodes (paper: streamcluster ~4x slower, SSCA -34%)."
        "\nCarrefour-LP's splitting — which libhugetlbfs lacks — is the"
        "\nonly remedy; it demotes the giant pages and re-places the"
        "\npieces."
    )


if __name__ == "__main__":
    main()
