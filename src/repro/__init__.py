"""Reproduction of "Large Pages May Be Harmful on NUMA Systems" (USENIX ATC'14).

The package is organised in layers:

``repro.hardware``
    NUMA machine model: topology, memory controllers, interconnect, TLBs,
    caches, performance counters, and IBS-style access sampling.
``repro.vm``
    Simulated operating-system virtual memory: buddy frame allocator,
    multi-size address spaces (4KB / 2MB / 1GB pages), transparent huge
    pages, page faults, migration, splitting and promotion.
``repro.sim``
    The epoch-based execution engine that runs a workload on a machine
    under a placement policy and produces runtime plus counters.
``repro.workloads``
    Synthetic models of the paper's 21 benchmarks (NAS, Metis, SSCA,
    SPECjbb, PARSEC streamcluster).
``repro.core``
    The paper's contribution: Carrefour, Carrefour-2M and the
    large-page extensions (Carrefour-LP) with its reactive and
    conservative components.
``repro.experiments``
    Drivers that regenerate every table and figure of the paper.
"""

from repro.hardware.machines import machine_a, machine_b, machine_by_name
from repro.hardware.topology import NumaTopology
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.results import SimulationResult
from repro.workloads.registry import available_workloads, get_workload
from repro.experiments.configs import POLICIES, make_policy
from repro.experiments.runner import run_benchmark

# Also the persistent result-cache version stamp: bump on any change
# that affects simulation output, so stale cached results are shed.
__version__ = "1.1.0"

__all__ = [
    "NumaTopology",
    "machine_a",
    "machine_b",
    "machine_by_name",
    "SimConfig",
    "Simulation",
    "SimulationResult",
    "available_workloads",
    "get_workload",
    "POLICIES",
    "make_policy",
    "run_benchmark",
    "__version__",
]
