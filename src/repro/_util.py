"""Small shared helpers used across the package."""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np


def stable_seed(*parts: object) -> int:
    """Derive a deterministic 64-bit seed from arbitrary labelled parts.

    Seeds must be stable across processes and Python versions (``hash()``
    is salted), so we hash the repr of the parts with SHA-256.
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def rng_for(*parts: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded deterministically from parts."""
    return np.random.default_rng(stable_seed(*parts))


class SeedHasher:
    """Prefix-memoized :func:`stable_seed` / :func:`rng_for` for hot loops.

    Call sites that derive many seeds sharing a fixed prefix (the
    stream banks derive one generator per (thread, epoch) with only the
    last two parts varying) pay the prefix repr + hash once here; each
    :meth:`seed` call copies the SHA-256 midstate and hashes only the
    suffix.  ``SeedHasher(*prefix).seed(*suffix)`` is bit-identical to
    ``stable_seed(*prefix, *suffix)`` — the hashed byte stream is the
    same — which makes :meth:`rng_for` a drop-in for the module-level
    :func:`rng_for` (and keeps it a sanctioned generator construction
    site for lint rules R002/R104).
    """

    __slots__ = ("_midstate",)

    def __init__(self, *prefix: object) -> None:
        if not prefix:
            raise ValueError("SeedHasher needs at least one prefix part")
        text = "\x1f".join(repr(p) for p in prefix)
        self._midstate = hashlib.sha256(text.encode("utf-8"))

    def seed(self, *suffix: object) -> int:
        """``stable_seed(*prefix, *suffix)`` from the stored midstate."""
        digest = self._midstate.copy()
        digest.update(
            "".join("\x1f" + repr(p) for p in suffix).encode("utf-8")
        )
        return int.from_bytes(digest.digest()[:8], "little")

    def rng_for(self, *suffix: object) -> np.random.Generator:
        """A generator seeded with ``stable_seed(*prefix, *suffix)``."""
        return np.random.default_rng(self.seed(*suffix))


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a generator from a captured ``bit_generator.state`` dict.

    The stream-bank machinery memoizes access streams together with the
    post-generation RNG state of each thread-epoch generator, so later
    consumers of the same generator (the IBS sampler) draw exactly the
    values they would have drawn had the stream been generated in-line.
    The state must originate from a :func:`rng_for` generator; this is
    a replay mechanism, never a fresh randomness source, which is why
    it sits next to ``rng_for`` as the only other sanctioned
    ``np.random`` construction site (lint rule R002/R104).
    """
    bit_generator = np.random.PCG64()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def as_int_array(values: Iterable[int]) -> np.ndarray:
    """Coerce an iterable of indices to a contiguous int64 array."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    return np.ascontiguousarray(arr)


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)


def pct(value: float) -> str:
    """Format a ratio-as-percent value for report tables."""
    return f"{value:.1f}%"


def human_bytes(n: int) -> str:
    """Render a byte count with a binary-unit suffix (e.g. ``1.5 GiB``)."""
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(size)} {unit}"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    raise AssertionError("unreachable")
