"""Static and runtime correctness tooling for the reproduction.

Two halves, both aimed at the same property — every simulation run must
be a deterministic, physically consistent function of its configuration:

* :mod:`repro.analysis.linter` + :mod:`repro.analysis.rules` — an
  AST-based linter (``repro lint``) with repo-specific rules that catch
  determinism and robustness bugs at review time (incomplete cache
  keys, unseeded randomness, ordering-dependent float accumulation,
  swallowed exceptions, mutable defaults / float equality);
* :mod:`repro.analysis.invariants` — an epoch-level runtime checker
  (``REPRO_CHECK=1`` or ``SimConfig.check_invariants``) asserting page
  conservation, counter sanity, allocator accounting and huge-page
  bookkeeping after every simulated epoch.
"""

from repro.analysis.invariants import (
    CHECK_ENV,
    InvariantChecker,
    InvariantViolation,
    invariants_enabled,
)
from repro.analysis.linter import (
    Finding,
    format_findings,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "CHECK_ENV",
    "Finding",
    "InvariantChecker",
    "InvariantViolation",
    "default_rules",
    "format_findings",
    "invariants_enabled",
    "lint_paths",
    "lint_source",
]
