"""Lint baselines: fail CI only on *new* findings.

A baseline is a JSON file of finding fingerprints with counts.  The
fingerprint deliberately excludes line/column numbers — refactors move
code — and keys on ``(rule, path, message)``; counts let a file carry
two identical findings without one masking a newly introduced third.

Workflow::

    repro lint src/repro --baseline lint-baseline.json --baseline-update
    git add lint-baseline.json
    # later, in CI:
    repro lint src/repro --baseline lint-baseline.json   # exit 0 unless new

Fixing a finding leaves a stale entry behind; ``--baseline-update``
regenerates the file (CI diffs will show shrinkage, which reviewers
should expect to be monotonic).

Error handling distinguishes *usage mistakes* from *schema drift*: a
missing baseline file or one written by an unknown schema raises the
dedicated :class:`BaselineMissingError` / :class:`BaselineSchemaError`
subclasses, which the CLI maps to exit code 3 — distinct from exit 2
(generic usage error), so CI can tell "someone forgot to commit or
regenerate the baseline" apart from "the invocation is wrong".  Files
are stamped with a ``schema`` identifier so a future rule-set change
can version the fingerprint format without silently invalidating (or
silently accepting) old baselines.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence

from repro.analysis.linter import Finding

#: Schema version written into baseline files.
BASELINE_VERSION = 1

#: Schema identifier stamped into baseline files.  Version-1 files
#: written before the stamp existed (no ``schema`` key) are accepted;
#: any *other* schema string is rejected as unknown.
BASELINE_SCHEMA = "repro-lint-baseline/1"


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding across line-number churn."""
    path = pathlib.PurePosixPath(
        str(finding.path).replace("\\", "/")
    ).as_posix()
    if path.startswith("./"):
        path = path[2:]
    return f"{finding.rule}|{path}|{finding.message}"


def baseline_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    """Fingerprint -> occurrence count for a set of findings."""
    counts: Dict[str, int] = {}
    for finding in findings:
        key = fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(
    path: pathlib.Path, findings: Sequence[Finding]
) -> None:
    """Write (or overwrite) a baseline file for the given findings."""
    payload = {
        "schema": BASELINE_SCHEMA,
        "version": BASELINE_VERSION,
        "counts": dict(sorted(baseline_counts(findings).items())),
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


class BaselineError(ValueError):
    """A baseline file is malformed (CLI exit code 2)."""


class BaselineMissingError(BaselineError):
    """The baseline file does not exist (CLI exit code 3).

    Run ``repro lint ... --baseline <path> --baseline-update`` to create
    it, or drop ``--baseline`` to lint without one.
    """


class BaselineSchemaError(BaselineError):
    """The baseline was written by an unknown schema (CLI exit code 3).

    Regenerate it with ``--baseline-update`` under the current tool.
    """


def load_baseline(path: pathlib.Path) -> Dict[str, int]:
    """Read a baseline file, validating its shape and schema."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise BaselineMissingError(
            f"baseline {path} does not exist; create it with "
            "--baseline-update or lint without --baseline"
        ) from exc
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"malformed baseline {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise BaselineError(
            f"baseline {path} is not a lint baseline object"
        )
    schema = payload.get("schema", BASELINE_SCHEMA)
    if schema != BASELINE_SCHEMA or payload.get("version") != BASELINE_VERSION:
        raise BaselineSchemaError(
            f"baseline {path} has unknown schema "
            f"{schema!r} v{payload.get('version')!r} (expected "
            f"{BASELINE_SCHEMA!r} v{BASELINE_VERSION}); regenerate it "
            "with --baseline-update"
        )
    if not isinstance(payload.get("counts"), dict):
        raise BaselineError(
            f"baseline {path} is not a version-{BASELINE_VERSION} "
            "lint baseline"
        )
    counts = {}
    for key, value in payload["counts"].items():
        if not isinstance(key, str) or not isinstance(value, int):
            raise BaselineError(f"baseline {path} has a malformed entry")
        counts[key] = value
    return counts


def filter_new(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> List[Finding]:
    """Findings not covered by the baseline.

    Each fingerprint's baseline count absorbs that many occurrences (in
    source order); everything beyond is new.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(finding)
    return new
