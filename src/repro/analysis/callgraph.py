"""Project-wide symbol table, call graph and write-effect inference.

This module is the whole-program half of the static analyzer: it parses
every file of a project once, builds a qualified-name symbol table of
functions and classes, derives a call graph, and infers — per function
— the set of *write effects*: which objects reachable from the
function's parameters (or from module-level state) the function may
mutate, propagated transitively through the call graph to a fixpoint.

The effect model is deliberately small and biased toward the questions
rules R101/R104 ask:

* An :class:`Effect` is ``(root, path)`` where ``root`` names a
  parameter of the function (``self`` included) or the pseudo-root
  ``<global>``, and ``path`` is the chain of attribute names walked to
  reach the mutated object (subscripts collapse onto their container,
  so ``self.a[i] = x`` is a write to ``self.a``).
* Direct effects come from assignment/``del`` targets, augmented
  assignments, calls to known in-place mutator methods (``append``,
  ``update``, ``fill``, ...), ``np.copyto`` and ``setattr``.
* Call edges map callee effects into the caller's frame through the
  argument bindings; a simple intra-function alias pass resolves
  ``sim = self.sim``-style locals.  Effects on freshly constructed
  objects stay local and are dropped.

Known limits (documented in the README): dynamic dispatch is resolved
*by method name* across every class in the project (class-hierarchy
analysis degenerate), except for method names shadowed by builtin
container types (``get``, ``add``, ``items``, ...), which never resolve
to project methods; numpy in-place ufuncs (``np.add.at``) and writes
through containers of objects are only seen when spelled as attribute
or subscript writes.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.linter import FileContext

#: Pseudo-root for writes to module-level state.
GLOBAL_ROOT = "<global>"

#: Effect paths are capped at this many components; longer chains are
#: truncated with ``...`` so fixpoint iteration terminates even for
#: recursive attribute walks.
MAX_PATH = 6

#: Method names on builtin containers that mutate their receiver.
BUILTIN_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "fill",
        "sort_values",
        "resize",
        "put",
    }
)

#: Method names shadowed by builtin container/ndarray types.  Calls to
#: these never resolve to *project* methods by name (a ``.get(...)`` on
#: a dict must not inherit the effects of some unrelated class's
#: ``get``); mutators among them still count as writes to the receiver.
BUILTIN_SHADOWED = BUILTIN_MUTATORS | frozenset(
    {
        "get",
        "keys",
        "values",
        "items",
        "copy",
        "count",
        "index",
        "join",
        "split",
        "strip",
        "startswith",
        "endswith",
        "format",
        "astype",
        "reshape",
        "sum",
        "mean",
        "min",
        "max",
        "tolist",
        "item",
        "any",
        "all",
        "nonzero",
    }
)


@dataclass(frozen=True)
class Effect:
    """One potential mutation: ``root`` + attribute ``path`` to the target."""

    root: str
    path: Tuple[str, ...]

    def describe(self) -> str:
        """Human-readable ``root.a.b`` form."""
        return ".".join((self.root,) + self.path)


@dataclass
class FunctionInfo:
    """One function or method, with its AST and analysis artifacts."""

    qualname: str  # e.g. "repro.vm.address_space.AddressSpace.split_chunk"
    module: str
    class_name: Optional[str]
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    path: str
    params: Tuple[str, ...] = ()
    direct_effects: Set[Effect] = field(default_factory=set)
    effects: Set[Effect] = field(default_factory=set)
    #: Call sites: (call node, candidate callee qualnames).
    calls: List[Tuple[ast.Call, Tuple[str, ...]]] = field(default_factory=list)
    aliases: Dict[str, Optional[Tuple[str, Tuple[str, ...]]]] = field(
        default_factory=dict
    )
    global_names: Set[str] = field(default_factory=set)
    #: Cached flat body traversal (``walk_body``) — several analysis
    #: passes iterate every body node; walking the AST once and sharing
    #: the list keeps whole-program lint inside its time budget.
    _body_nodes: Optional[List[ast.AST]] = field(
        default=None, repr=False, compare=False
    )

    def walk_body(self) -> List[ast.AST]:
        """Every node in the function body, in ``ast.walk`` order.

        Equivalent to ``ast.walk`` over each body statement (nested
        definitions included, the header/decorators excluded), computed
        once per function and reused across analysis passes.
        """
        if self._body_nodes is None:
            self._body_nodes = [
                node
                for stmt in getattr(self.node, "body", [])
                for node in ast.walk(stmt)
            ]
        return self._body_nodes


def _attr_chain(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path: str, roots: Sequence[str] = ("src",)) -> str:
    """Dotted module name for a file path.

    Components up to and including a ``src`` (or other listed root)
    component are stripped, so ``src/repro/vm/layout.py`` maps to
    ``repro.vm.layout`` regardless of where the checkout lives.
    """
    parts = list(pathlib.PurePosixPath(str(path).replace("\\", "/")).parts)
    for root in roots:
        if root in parts:
            parts = parts[len(parts) - parts[::-1].index(root):]
            break
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p and p != "/")


class Project:
    """Parsed project: every file, symbol table and call graph."""

    def __init__(self) -> None:
        self.contexts: Dict[str, FileContext] = {}  # module -> FileContext
        self.functions: Dict[str, FunctionInfo] = {}  # qualname -> info
        self.classes: Dict[str, ast.ClassDef] = {}  # qualified class name
        #: method name -> qualnames of every project method with that name
        self.methods_by_name: Dict[str, List[str]] = {}
        #: module -> {local name -> imported qualified name}
        self.imports: Dict[str, Dict[str, str]] = {}
        #: module -> {module-level function/class name -> qualname}
        self.module_symbols: Dict[str, Dict[str, str]] = {}
        #: Registry declarations found in the tree (module-level
        #: ``_RESULT_NEUTRAL`` / ``_SIM_ENTRY_POINTS`` /
        #: ``_THREAD_ENTRY_POINTS`` / ``_CONCURRENCY_SAFE`` tuples).
        self.result_neutral: Set[str] = set()
        self.entry_points: Set[str] = set()
        self.thread_entry_points: Set[str] = set()
        self.concurrency_safe: Set[str] = set()
        self._qual_cache: Dict[str, str] = {}
        self._external_cache: Dict[str, bool] = {}
        self._analyzed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_paths(cls, paths: Sequence[pathlib.Path]) -> "Project":
        """Parse every Python file below the given paths.

        Module names are derived *relative to the directory passed in*
        (with a ``src`` component additionally stripped), so a fixture
        tree rooted anywhere gets the short module names its own
        registry declarations use.
        """
        project = cls()
        for root in paths:
            root = pathlib.Path(root)
            if root.is_dir():
                files = sorted(
                    p
                    for p in root.rglob("*.py")
                    if "__pycache__" not in p.parts
                )
                for file_path in files:
                    rel = file_path.relative_to(root)
                    project._add_file(file_path, module_name_for(str(rel)))
            elif root.suffix == ".py":
                project._add_file(root, module_name_for(root.name))
        return project

    def _add_file(self, file_path: pathlib.Path, module: str) -> None:
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return
        self.add_source(source, str(file_path), module=module)

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build from an in-memory {path: source} mapping (tests)."""
        project = cls()
        for path, source in sorted(sources.items()):
            project.add_source(source, path)
        return project

    def add_source(
        self, source: str, path: str, module: Optional[str] = None
    ) -> None:
        """Parse and index one file (syntax errors are skipped)."""
        try:
            ctx = FileContext(source, path)
        except SyntaxError:
            return
        if module is None:
            module = module_name_for(path)
        self.contexts[module] = ctx
        self._index_module(module, ctx)
        self._analyzed = False

    def _index_module(self, module: str, ctx: FileContext) -> None:
        imports: Dict[str, str] = {}
        symbols: Dict[str, str] = {}
        self.imports[module] = imports
        self.module_symbols[module] = symbols
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    imports[local] = alias.name
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module}.{stmt.name}"
                symbols[stmt.name] = qual
                self._add_function(qual, module, None, stmt, ctx.path)
            elif isinstance(stmt, ast.ClassDef):
                qual_cls = f"{module}.{stmt.name}"
                symbols[stmt.name] = qual_cls
                self.classes[qual_cls] = stmt
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{qual_cls}.{sub.name}"
                        self._add_function(qual, module, stmt.name, sub, ctx.path)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self._maybe_registry(module, target.id, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self._maybe_registry(module, stmt.target.id, stmt.value)

    _REGISTRIES = {
        "_RESULT_NEUTRAL": "result_neutral",
        "_SIM_ENTRY_POINTS": "entry_points",
        "_THREAD_ENTRY_POINTS": "thread_entry_points",
        "_CONCURRENCY_SAFE": "concurrency_safe",
    }

    def _maybe_registry(self, module: str, name: str, value: ast.AST) -> None:
        attr = self._REGISTRIES.get(name)
        if attr is None:
            return
        items: Set[str] = set()
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            items = {
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
        getattr(self, attr).update(items)

    def _add_function(
        self,
        qualname: str,
        module: str,
        class_name: Optional[str],
        node: ast.AST,
        path: str,
    ) -> None:
        args = node.args
        params = tuple(
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        )
        info = FunctionInfo(
            qualname=qualname,
            module=module,
            class_name=class_name,
            name=node.name,
            node=node,
            path=path,
            params=params,
        )
        self.functions[qualname] = info
        if class_name is not None:
            self.methods_by_name.setdefault(node.name, []).append(qualname)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(self) -> None:
        """Collect direct effects and call edges, then run the fixpoint."""
        if self._analyzed:
            return
        for info in self.functions.values():
            _FunctionScanner(self, info).scan()
        self._propagate()
        self._analyzed = True

    def _propagate(self) -> None:
        """Transitive effect propagation to a fixpoint."""
        for info in self.functions.values():
            info.effects = set(info.direct_effects)
        changed = True
        while changed:
            changed = False
            for info in self.functions.values():
                for call, candidates in info.calls:
                    for callee_name in candidates:
                        callee = self.functions.get(callee_name)
                        if callee is None:
                            continue
                        mapped = self._map_effects(info, call, callee)
                        if not mapped <= info.effects:
                            info.effects |= mapped
                            changed = True

    def _map_effects(
        self, caller: FunctionInfo, call: ast.Call, callee: FunctionInfo
    ) -> Set[Effect]:
        """Translate a callee's effects into the caller's frame."""
        out: Set[Effect] = set()
        bindings = self._bind_arguments(call, callee)
        for effect in callee.effects:
            if effect.root == GLOBAL_ROOT:
                out.add(effect)
                continue
            arg = bindings.get(effect.root)
            if arg is None:
                continue
            resolved = resolve_expr(caller, arg)
            if resolved is None:
                continue  # local / fresh object: mutation is not visible
            root, path = resolved
            out.add(_make_effect(root, path + effect.path))
        return out

    def _bind_arguments(
        self, call: ast.Call, callee: FunctionInfo
    ) -> Dict[str, ast.AST]:
        """Map callee parameter names to caller argument expressions."""
        params = list(callee.params)
        bindings: Dict[str, ast.AST] = {}
        positional = list(call.args)
        is_method = callee.class_name is not None
        is_constructor = callee.name == "__init__"
        if is_method and not is_constructor and isinstance(call.func, ast.Attribute):
            # recv.m(...): bind the receiver to the first parameter.
            if params:
                bindings[params[0]] = call.func.value
                params = params[1:]
        elif is_method and params:
            # Constructor (fresh receiver) or unbound reference: the
            # receiver is not an expression in the caller's frame.
            params = params[1:]
        for param, arg in zip(params, positional):
            bindings[param] = arg
        for keyword in call.keywords:
            if keyword.arg is not None:
                bindings[keyword.arg] = keyword.value
        return bindings

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self, info: FunctionInfo, call: ast.Call
    ) -> Tuple[str, ...]:
        """Candidate callee qualnames for a call site (possibly empty)."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(info.module, func.id)
        if isinstance(func, ast.Attribute):
            # self.m(...) within a class: prefer the class's own method.
            if (
                isinstance(func.value, ast.Name)
                and info.params
                and func.value.id == info.params[0]
                and info.class_name is not None
            ):
                own = f"{info.module}.{info.class_name}.{func.attr}"
                if own in self.functions:
                    return (own,)
            # module.func(...) via an import of the module.
            chain = _attr_chain(func)
            if chain is not None:
                head, _, rest = chain.partition(".")
                imported = self.imports.get(info.module, {}).get(head)
                if imported is not None and rest:
                    qual = self._lookup(f"{imported}.{rest}")
                    if qual is not None:
                        if qual in self.functions:
                            return (qual,)
                        resolved = self._resolve_class_call(qual)
                        if resolved:
                            return resolved
                    # A call through an *external* module alias
                    # (``np.load``, ``json.dump``) never dispatches to
                    # project methods by name.
                    if self._is_external(imported):
                        return ()
            # recv.m(...): name-based resolution across all classes,
            # except names shadowed by builtin containers.
            if func.attr in BUILTIN_SHADOWED:
                return ()
            return tuple(self.methods_by_name.get(func.attr, ()))
        return ()

    def _resolve_name(self, module: str, name: str) -> Tuple[str, ...]:
        local = self.module_symbols.get(module, {}).get(name)
        if local is None:
            local = self.imports.get(module, {}).get(name)
        if local is None:
            return ()
        local = self._lookup(local) or local
        if local in self.functions:
            return (local,)
        return self._resolve_class_call(local)

    def _lookup(self, qual: str) -> Optional[str]:
        """Map an imported qualified name onto an indexed one.

        Handles the package-prefix mismatch between import statements
        (``repro.vm.layout.X``) and module names derived relative to a
        lint root below the package (``vm.layout.X``): an exact match
        wins, otherwise a unique known name related by a dotted suffix.
        """
        if qual in self.functions or qual in self.classes:
            return qual
        cached = self._qual_cache.get(qual)
        if cached is not None:
            return cached or None
        matches = [
            known
            for known in list(self.functions) + list(self.classes)
            if qual.endswith("." + known) or known.endswith("." + qual)
        ]
        result = matches[0] if len(matches) == 1 else ""
        self._qual_cache[qual] = result
        return result or None

    def _is_external(self, dotted: str) -> bool:
        """Whether an imported dotted name points outside the project."""
        cached = self._external_cache.get(dotted)
        if cached is not None:
            return cached
        external = self._lookup(dotted) is None and not any(
            dotted == known
            or dotted.endswith("." + known)
            or known.endswith("." + dotted)
            or dotted.startswith(known + ".")
            or known.startswith(dotted + ".")
            for known in self.contexts
        )
        self._external_cache[dotted] = external
        return external

    def _resolve_class_call(self, qual_cls: str) -> Tuple[str, ...]:
        """A class-name call resolves to its ``__init__`` if present."""
        if qual_cls in self.classes:
            init = f"{qual_cls}.__init__"
            if init in self.functions:
                return (init,)
        return ()

    # ------------------------------------------------------------------
    # Reachability (R104)
    # ------------------------------------------------------------------
    def reachable_from(self, entries: Iterable[str]) -> Dict[str, Tuple[str, ...]]:
        """Functions reachable from the entries, with one shortest call
        chain (as a tuple of qualnames, entry first) per function."""
        self.analyze()
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: List[str] = []
        for entry in entries:
            if entry in self.functions and entry not in chains:
                chains[entry] = (entry,)
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            info = self.functions[current]
            for _, candidates in info.calls:
                for callee in candidates:
                    if callee in self.functions and callee not in chains:
                        chains[callee] = chains[current] + (callee,)
                        queue.append(callee)
        return chains


def _make_effect(root: str, path: Tuple[str, ...]) -> Effect:
    if len(path) > MAX_PATH:
        path = path[:MAX_PATH] + ("...",)
    return Effect(root, path)


def resolve_expr(
    info: FunctionInfo, node: ast.AST
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Resolve an expression to ``(root, attr path)`` in a function frame.

    Roots are parameter names or :data:`GLOBAL_ROOT`; ``None`` means the
    expression denotes a local or freshly created object whose mutation
    is invisible to callers.  Subscripts collapse onto their container.
    """
    path: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            path.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            return None  # fresh object
        elif isinstance(node, ast.Name):
            name = node.id
            if name in info.params:
                return name, tuple(reversed(path))
            if name in info.global_names:
                return GLOBAL_ROOT, (name,) + tuple(reversed(path))
            if name in info.aliases:
                base = info.aliases[name]
                if base is None:
                    return None
                root, base_path = base
                return root, base_path + tuple(reversed(path))
            return None  # plain local
        else:
            return None


class _FunctionScanner:
    """Single pass over one function: aliases, direct effects, calls."""

    def __init__(self, project: Project, info: FunctionInfo) -> None:
        self.project = project
        self.info = info

    def scan(self) -> None:
        nodes = self.info.walk_body()
        self._collect_globals(nodes)
        self._collect_aliases(nodes)
        for node in nodes:
            self._visit(node)

    def _collect_globals(self, nodes) -> None:
        for node in nodes:
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                self.info.global_names |= set(node.names)

    def _collect_aliases(self, nodes) -> None:
        """Flow-insensitive ``name = <path expr>`` alias map.

        A name assigned more than once, or assigned a non-path value,
        resolves to nothing (conservative for effect *attribution*: a
        rebound local never re-acquires parameter effects).
        """
        info = self.info
        for node in nodes:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name in info.params:
                continue  # reassigned params keep param attribution
            resolved = resolve_expr(info, node.value)
            if name in info.aliases or resolved is None:
                info.aliases[name] = None
            else:
                info.aliases[name] = resolved

    # ------------------------------------------------------------------
    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._effect_for_target(target)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._effect_for_target(node.target)
        elif isinstance(node, ast.AugAssign):
            self._effect_for_target(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._effect_for_target(target)
        elif isinstance(node, ast.Call):
            self._visit_call(node)

    def _effect_for_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._effect_for_target(elt)
            return
        if isinstance(target, ast.Name):
            if target.id in self.info.global_names:
                self._add(GLOBAL_ROOT, (target.id,))
            return
        if isinstance(target, ast.Starred):
            self._effect_for_target(target.value)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        # For attribute targets the written object is the attribute
        # itself; for subscript targets it is the container.
        if isinstance(target, ast.Attribute):
            base = resolve_expr(self.info, target.value)
            if base is not None:
                root, path = base
                self._add(root, path + (target.attr,))
        else:
            base = resolve_expr(self.info, target.value)
            if base is not None:
                self._add(*base)

    def _visit_call(self, call: ast.Call) -> None:
        info = self.info
        func = call.func
        # Builtin in-place mutators write their receiver.
        if isinstance(func, ast.Attribute) and func.attr in BUILTIN_MUTATORS:
            base = resolve_expr(info, func.value)
            if base is not None:
                self._add(*base)
        # np.copyto(dst, ...) writes its first argument.
        chain = _attr_chain(func)
        if chain is not None and chain.split(".")[-1] == "copyto" and call.args:
            base = resolve_expr(info, call.args[0])
            if base is not None:
                self._add(*base)
        # setattr(obj, name, value) writes obj.
        if isinstance(func, ast.Name) and func.id == "setattr" and call.args:
            base = resolve_expr(info, call.args[0])
            if base is not None:
                root, path = base
                self._add(root, path + ("?",))
        candidates = self.project.resolve_call(info, call)
        if candidates:
            info.calls.append((call, candidates))

    def _add(self, root: str, path: Tuple[str, ...]) -> None:
        self.info.direct_effects.add(_make_effect(root, path))
