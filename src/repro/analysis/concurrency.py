"""Concurrency-safety analysis: static race detection (R105-R108).

PR 6 made the thread backend real: grid shards now run concurrently in
one process, sharing process-wide mutable state (the stream-bank
registries, the runner memo, per-bank block stores).  This module is
the Eraser-style lockset discipline for that sharing, layered on the
:mod:`repro.analysis.callgraph` project model the way the R104
reachability rule is: find the code that can run on worker threads,
find the objects it shares, and prove every write is guarded.

The analysis proceeds in four steps:

1. **Shared-state discovery** — module-level mutable containers
   (``_BANKS = OrderedDict()``), class-level mutable attributes
   (``class C: registry = {}``), and instances *published* into a
   shared container (``_BANKS[fp] = StreamBank(...)`` marks
   ``StreamBank`` thread-shared, so its ``self.*`` writes count too).
   Locks are discovered the same way: module-level
   ``threading.Lock()``-family constructions and ``self._lock = Lock()``
   instance locks.
2. **Thread-entry discovery** — functions handed to
   ``ThreadPoolExecutor.submit`` or ``threading.Thread(target=...)``,
   plus any module-level ``_THREAD_ENTRY_POINTS`` registry tuple
   (mirroring R104's ``_SIM_ENTRY_POINTS``) and the defaults in
   :data:`DEFAULT_THREAD_ENTRY_POINTS`.  Targets submitted to a
   ``ProcessPoolExecutor`` bound in the same function are *not*
   entries (processes do not share the heap).
3. **Lockset construction** — a guard-domination walk over each
   function's AST records, for every write/call/return site, the locks
   lexically held via ``with <lock>:``; an interprocedural fixpoint
   then computes, per function, the locks held on *every* call path
   from a thread entry (meet = set intersection over call sites).
4. **Rules** — R105 flags shared writes whose effective lockset
   (lexical ∪ inherited) is empty; R106 flags objects guarded by
   *different* locks at different sites; R107 flags references to
   shared mutable state escaping via ``return`` without a copy; R108
   flags lock-order inversions and blocking calls (I/O, sleep,
   subprocess) made while holding a lock.

Sanctioning: a line comment ``# lint: ignore[R105]`` (any of the four
ids) suppresses one site; a module-level ``_CONCURRENCY_SAFE`` tuple of
dotted-name fragments sanctions whole objects or functions — use it
for state proven immutable-after-publish or protected by a documented
read-only contract (the ``rng_from_state``-style annotation for this
pass)::

    _CONCURRENCY_SAFE = ("runner.run_benchmark", "streambank._BANKS")

Known limits (deliberate, matching the callgraph's bias): writes
through containers-of-containers are seen one level deep; instance
locks are keyed per class, not per object, so two instances of one
class are assumed to guard with their own lock consistently; nested
``def`` bodies are skipped (lambdas are walked, because they are the
idiom for inline callbacks executed under the caller's locks).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    BUILTIN_MUTATORS,
    FunctionInfo,
    Project,
    _attr_chain,
)

#: Thread entry points assumed even without a registry entry: the
#: thread-backend shard worker, the bank factory (callable from any
#: user thread), and the public run API the ``repro serve`` dispatcher
#: will drive from worker threads.
DEFAULT_THREAD_ENTRY_POINTS: Tuple[str, ...] = (
    "parallel._pool_execute",
    "streambank.get_stream_bank",
    "runner.run_benchmark",
)

#: Constructors whose results are locks (last dotted segment).
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Constructors whose results are shared-mutable containers (last
#: dotted segment).  Literals ({}, [], set/dict/list comprehensions)
#: are recognised structurally.
_CONTAINER_CTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "OrderedDict",
        "defaultdict",
        "deque",
        "Counter",
        "WeakKeyDictionary",
        "WeakValueDictionary",
    }
)

#: In-place mutators: the builtin set plus OrderedDict's own.
_MUTATORS = frozenset(BUILTIN_MUTATORS | {"move_to_end"})

#: Calls that copy their argument/receiver (a returned copy does not
#: escape the lock).
_COPIER_NAMES = frozenset(
    {"dict", "list", "tuple", "set", "frozenset", "sorted", "str", "bytes"}
)
_COPIER_TAILS = frozenset({"copy", "deepcopy", "array", "tolist"})

#: Accessor methods returning a *member* of their receiver (escape
#: vector when the receiver is shared).
_ACCESSOR_TAILS = frozenset({"get"})

#: Blocking sinks for R108: exact dotted chains, chain prefixes, and
#: bare callable names.
_BLOCKING_CHAINS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.replace",
        "os.makedirs",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.fsync",
        "tempfile.mkstemp",
        "shutil.rmtree",
        "shutil.copy",
        "shutil.copytree",
        "np.save",
        "np.load",
        "numpy.save",
        "numpy.load",
        "pickle.dump",
        "pickle.load",
        "json.dump",
        "json.load",
    }
)
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "requests.", "urllib.", "http.")
_BLOCKING_NAMES = frozenset({"open", "input"})

#: A canonical lock: ("module", module, name) or ("instance",
#: class qualname, attr).
Lock = Tuple[str, str, str]


def lock_label(lock: Lock) -> str:
    """Short ``owner.name`` form for messages (stable across roots)."""
    kind, owner, name = lock
    return f"{owner.split('.')[-1]}.{name}"


@dataclass(frozen=True)
class SharedObject:
    """One process-wide mutable object the thread cone may touch."""

    kind: str  # "module" | "class-attr" | "instance-attr"
    owner: str  # module name, or class qualname
    name: str  # variable / attribute name

    @property
    def qualname(self) -> str:
        """Full dotted id (for ``_CONCURRENCY_SAFE`` matching)."""
        return f"{self.owner}.{self.name}"

    @property
    def label(self) -> str:
        """Short ``owner.name`` form for messages."""
        return f"{self.owner.split('.')[-1]}.{self.name}"


@dataclass(frozen=True)
class _Event:
    """One interesting site in a function, with its lexical lockset."""

    kind: str  # "write" | "return" | "block" | "acquire"
    func: str  # qualname
    node_line: int
    node_col: int
    locks: FrozenSet[Lock]
    obj: Optional[SharedObject] = None  # write / return
    chain: str = ""  # block: the blocking call chain
    lock: Optional[Lock] = None  # acquire: the lock taken


def _covers(fragment: str, qualname: str) -> bool:
    """Whether a dotted fragment is a contiguous segment of a qualname."""
    return f".{fragment}." in f".{qualname}."


def _short_qual(qualname: str) -> str:
    return ".".join(qualname.split(".")[-2:])


def render_chain(chain: Sequence[str]) -> str:
    """``entry -> ... -> func`` with short qualified names."""
    return " -> ".join(_short_qual(q) for q in chain)


def _is_mutable_value(value: ast.AST) -> bool:
    """Whether a module/class-level assignment creates a mutable container."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        chain = _attr_chain(value.func)
        if chain is not None and chain.split(".")[-1] in _CONTAINER_CTORS:
            return True
    return False


def _is_lock_value(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    chain = _attr_chain(value.func)
    return chain is not None and chain.split(".")[-1] in _LOCK_CTORS


def _is_blocking_chain(chain: str) -> bool:
    if chain in _BLOCKING_CHAINS or chain in _BLOCKING_NAMES:
        return True
    return chain.startswith(_BLOCKING_PREFIXES)


class ConcurrencyModel:
    """Shared objects, locks, thread entries and per-site locksets."""

    def __init__(self, project: Project) -> None:
        self.project = project
        project.analyze()
        #: (module, name) -> SharedObject for module-level containers.
        self.module_shared: Dict[Tuple[str, str], SharedObject] = {}
        #: (class qualname, attr) -> SharedObject for class-level ones.
        self.class_shared: Dict[Tuple[str, str], SharedObject] = {}
        #: (module, name) and (class qualname, attr) lock declarations.
        self.module_locks: Set[Tuple[str, str]] = set()
        self.instance_locks: Set[Tuple[str, str]] = set()
        #: Class qualnames published into shared containers.
        self.shared_classes: Set[str] = set()
        #: Objects written by *any* project function (R107 only cares
        #: about state that is actually mutated post-import).
        self.written_objects: Set[SharedObject] = set()
        self.entries: List[str] = []
        self.chains: Dict[str, Tuple[str, ...]] = {}
        self.events: Dict[str, List[_Event]] = {}
        #: id(call node) -> lexical lockset at that call site.
        self._call_locks: Dict[int, FrozenSet[Lock]] = {}
        self.held: Dict[str, Optional[FrozenSet[Lock]]] = {}
        self._module_cache: Dict[str, Optional[str]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        self._discover_declarations()
        self._discover_instance_locks()
        self._discover_publications()
        submit_entries = self._scan_functions()
        self._resolve_entries(submit_entries)
        self.chains = self.project.reachable_from(self.entries)
        self._held_fixpoint()

    def _discover_declarations(self) -> None:
        """Module- and class-level containers and module locks."""
        for module, ctx in self.project.contexts.items():
            for stmt in ctx.tree.body:
                for name, value in _declared(stmt):
                    if _is_lock_value(value):
                        self.module_locks.add((module, name))
                    elif _is_mutable_value(value):
                        self.module_shared[(module, name)] = SharedObject(
                            "module", module, name
                        )
                if isinstance(stmt, ast.ClassDef):
                    class_qual = f"{module}.{stmt.name}"
                    for sub in stmt.body:
                        for name, value in _declared(sub):
                            if _is_mutable_value(value):
                                self.class_shared[(class_qual, name)] = (
                                    SharedObject("class-attr", class_qual, name)
                                )

    def _discover_instance_locks(self) -> None:
        """``self.X = threading.Lock()``-style per-instance locks."""
        for info in self.project.functions.values():
            if info.class_name is None or not info.params:
                continue
            class_qual = f"{info.module}.{info.class_name}"
            receiver = info.params[0]
            for node in info.walk_body():
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == receiver
                        and _is_lock_value(node.value)
                    ):
                        self.instance_locks.add((class_qual, target.attr))

    def _discover_publications(self) -> None:
        """Classes whose instances are published into shared containers.

        A separate light pass over assignment statements, run *before*
        the event scan: ``self.*`` writes inside a class's methods only
        count as shared once the class is known to be published
        (``bank = StreamBank(...)`` then ``_BANKS[fp] = bank``), and
        the publishing function may well be scanned after the methods.
        """
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            assigns = [
                node
                for node in info.walk_body()
                if isinstance(node, ast.Assign)
            ]
            ctor_types: Dict[str, str] = {}
            for node in assigns:
                if (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    chain = _attr_chain(node.value.func)
                    qual = (
                        self.class_for(info, chain)
                        if chain is not None
                        else None
                    )
                    if qual is not None:
                        ctor_types[node.targets[0].id] = qual
            for node in assigns:
                for target in node.targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    obj = self.shared_for_path(info, target.value, False)
                    if obj is None:
                        continue
                    value = node.value
                    qual = None
                    if isinstance(value, ast.Name):
                        qual = ctor_types.get(value.id)
                    elif isinstance(value, ast.Call):
                        chain = _attr_chain(value.func)
                        if chain is not None:
                            qual = self.class_for(info, chain)
                    if qual is not None:
                        self.shared_classes.add(qual)

    def class_for(self, info: FunctionInfo, chain: str) -> Optional[str]:
        """Project class qualname a constructor call chain names."""
        project = self.project
        head, _, rest = chain.partition(".")
        symbol = project.module_symbols.get(info.module, {}).get(head)
        if symbol is None:
            symbol = project.imports.get(info.module, {}).get(head)
        if symbol is None:
            return None
        if rest:
            symbol = f"{symbol}.{rest}"
        symbol = project._lookup(symbol) or symbol
        return symbol if symbol in project.classes else None

    def shared_for_path(
        self, info: FunctionInfo, expr: ast.AST, writing: bool
    ) -> Optional[SharedObject]:
        """Resolve an attribute/subscript path to the shared object it
        touches, or ``None`` for local/fresh/unshared state."""
        path: List[str] = []
        node = expr
        is_attr_target = isinstance(expr, ast.Attribute)
        while True:
            if isinstance(node, ast.Attribute):
                path.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Name):
                break
            else:
                return None
        path.reverse()
        name = node.id
        module = info.module
        # self.<attr>...
        if info.params and name == info.params[0] and info.class_name:
            if not path:
                return None
            class_qual = f"{module}.{info.class_name}"
            attr = path[0]
            if (class_qual, attr) in self.instance_locks:
                return None
            class_obj = self.class_shared.get((class_qual, attr))
            if class_obj is not None:
                # ``self.X[k] = v`` mutates the class-level container;
                # ``self.X = v`` creates an instance attribute instead.
                if writing and is_attr_target and len(path) == 1:
                    return None
                return class_obj
            if class_qual in self.shared_classes:
                if info.name == "__init__":
                    return None  # not yet published
                return SharedObject("instance-attr", class_qual, attr)
            return None
        # Module-level container in this module.
        obj = self.module_shared.get((module, name))
        if obj is not None:
            return obj
        imported = self.project.imports.get(module, {}).get(name)
        if imported is not None:
            # ``from mod import _CACHE`` -> the name IS the container.
            mod_part, _, item = imported.rpartition(".")
            owner = self.resolve_module(mod_part)
            if owner is not None:
                obj = self.module_shared.get((owner, item))
                if obj is not None:
                    return obj
            # ``import mod`` / ``from pkg import mod`` -> mod._CACHE.
            owner = self.resolve_module(imported)
            if owner is not None and path:
                obj = self.module_shared.get((owner, path[0]))
                if obj is not None:
                    # Rebinding mod.X replaces the module global: still
                    # a shared write; deeper paths and subscripts too.
                    return obj
        # ClassName.attr for class-level containers.
        symbol = self.project.module_symbols.get(module, {}).get(name)
        if symbol is not None and path:
            obj = self.class_shared.get((symbol, path[0]))
            if obj is not None:
                return obj
        return None

    def _scan_functions(self) -> List[Tuple[str, ast.AST]]:
        """Per-function event scan; returns raw thread-entry targets."""
        submit_targets: List[Tuple[str, ast.AST]] = []
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            scan = _FunctionWalk(self, info)
            scan.run()
            self.events[qualname] = scan.events
            self._call_locks.update(scan.call_locks)
            submit_targets.extend(scan.submit_targets)
            for event in scan.events:
                if event.kind == "write" and event.obj is not None:
                    self.written_objects.add(event.obj)
        return submit_targets

    def _resolve_entries(self, submit_targets: List[Tuple[str, ast.AST]]) -> None:
        """Submit/Thread targets + registry fragments + defaults."""
        entries: Set[str] = set()
        for module, target in submit_targets:
            qual = self._resolve_callable(module, target)
            if qual is not None:
                entries.add(qual)
        fragments = tuple(DEFAULT_THREAD_ENTRY_POINTS) + tuple(
            sorted(self.project.thread_entry_points)
        )
        for qualname in self.project.functions:
            if any(_covers(f, qualname) for f in fragments):
                entries.add(qualname)
        self.entries = sorted(entries)

    def _resolve_callable(self, module: str, node: ast.AST) -> Optional[str]:
        """Map a submitted callable expression to a project qualname."""
        if isinstance(node, ast.Name):
            local = self.project.module_symbols.get(module, {}).get(node.id)
            if local is None:
                local = self.project.imports.get(module, {}).get(node.id)
            if local is None:
                return None
            local = self.project._lookup(local) or local
            return local if local in self.project.functions else None
        chain = _attr_chain(node)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        imported = self.project.imports.get(module, {}).get(head)
        if imported is not None and rest:
            qual = self.project._lookup(f"{imported}.{rest}")
            if qual in self.project.functions:
                return qual
        # self.method / Class.method submitted: resolve by method name.
        tail = chain.split(".")[-1]
        candidates = self.project.methods_by_name.get(tail, ())
        return candidates[0] if len(candidates) == 1 else None

    def _held_fixpoint(self) -> None:
        """Locks held on *every* path from a thread entry, per function."""
        self.held = {q: None for q in self.chains}
        for entry in self.entries:
            if entry in self.held:
                self.held[entry] = frozenset()
        changed = True
        while changed:
            changed = False
            for caller in self.chains:
                held = self.held.get(caller)
                if held is None:
                    continue
                info = self.project.functions[caller]
                for call, candidates in info.calls:
                    site = held | self._call_locks.get(id(call), frozenset())
                    for callee in candidates:
                        if callee not in self.held or callee in self.entries:
                            continue
                        current = self.held[callee]
                        merged = site if current is None else current & site
                        if merged != current:
                            self.held[callee] = merged
                            changed = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve_module(self, dotted: str) -> Optional[str]:
        """Map an imported module path onto an indexed module name."""
        if dotted in self.project.contexts:
            return dotted
        cached = self._module_cache.get(dotted)
        if cached is not None or dotted in self._module_cache:
            return cached
        matches = [
            known
            for known in self.project.contexts
            if dotted.endswith("." + known) or known.endswith("." + dotted)
        ]
        result = matches[0] if len(matches) == 1 else None
        self._module_cache[dotted] = result
        return result

    def effective_locks(self, event: _Event) -> FrozenSet[Lock]:
        """Lexical locks at the site plus locks inherited from callers."""
        inherited = self.held.get(event.func) or frozenset()
        return event.locks | inherited

    def in_cone(self, qualname: str) -> bool:
        return qualname in self.chains

    def is_safe(self, *names: str) -> bool:
        """Whether any name matches a ``_CONCURRENCY_SAFE`` fragment."""
        fragments = self.project.concurrency_safe
        return any(
            _covers(fragment, name)
            for fragment in fragments
            for name in names
        )

    def cone_events(self, kind: str) -> Iterator[_Event]:
        for qualname in sorted(self.chains):
            for event in self.events.get(qualname, ()):
                if event.kind == kind:
                    yield event

    def describe(self) -> str:
        """Human-readable model dump (the ``--explain`` payload)."""
        lines = ["thread entry points:"]
        for entry in self.entries or ["  (none found)"]:
            if entry in self.project.functions:
                lines.append(f"  {entry}")
        lines.append("shared objects (written on a thread path):")
        locksets = self.object_locksets()
        shown = False
        for obj in sorted(self.written_objects, key=lambda o: o.qualname):
            sets = locksets.get(obj)
            if sets is None:
                continue
            shown = True
            names = sorted({lock_label(l) for s in sets for l in s})
            guard = ", ".join(names) if names else "UNGUARDED"
            lines.append(f"  {obj.label}  [{obj.kind}]  locks: {guard}")
        if not shown:
            lines.append("  (none)")
        return "\n".join(lines)

    def object_locksets(self) -> Dict[SharedObject, List[FrozenSet[Lock]]]:
        """Effective lockset of every in-cone write, grouped by object."""
        grouped: Dict[SharedObject, List[FrozenSet[Lock]]] = {}
        for event in self.cone_events("write"):
            grouped.setdefault(event.obj, []).append(
                self.effective_locks(event)
            )
        return grouped


def _declared(stmt: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """(name, value) pairs declared by a module/class-level statement."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        if isinstance(stmt.targets[0], ast.Name):
            yield stmt.targets[0].id, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        if isinstance(stmt.target, ast.Name):
            yield stmt.target.id, stmt.value


class _FunctionWalk:
    """Guard-domination walk of one function body.

    Records write/return/blocking/acquire events with the lexical
    lockset at each site, the lockset at every call site (for the
    interprocedural fixpoint), publications of constructed instances
    into shared containers, and raw thread-entry targets.
    """

    def __init__(self, model: ConcurrencyModel, info: FunctionInfo) -> None:
        self.model = model
        self.info = info
        self.events: List[_Event] = []
        self.call_locks: Dict[int, FrozenSet[Lock]] = {}
        self.submit_targets: List[Tuple[str, ast.AST]] = []
        #: Local constructor types: name -> class qualname.
        #: Names bound to process pools (their submits are not threads).
        self._process_pools: Set[str] = set()
        #: Sequential alias map: name -> SharedObject reference.
        self._ref_aliases: Dict[str, Optional[SharedObject]] = {}

    def run(self) -> None:
        for stmt in getattr(self.info.node, "body", []):
            self._walk(stmt, frozenset())

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def _walk(self, node: ast.AST, locks: FrozenSet[Lock]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions run in unknown lock contexts
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[Lock] = set()
            for item in node.items:
                self._walk(item.context_expr, locks)
                lock = self._resolve_lock(item.context_expr)
                if lock is not None:
                    self._event("acquire", node, locks, lock=lock)
                    acquired.add(lock)
            inner = locks | acquired
            for stmt in node.body:
                self._walk(stmt, inner)
            return
        self._visit(node, locks)
        for child in ast.iter_child_nodes(node):
            self._walk(child, locks)

    def _visit(self, node: ast.AST, locks: FrozenSet[Lock]) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._write_target(target, node, locks)
            self._note_aliases(node)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if not (isinstance(node, ast.AnnAssign) and node.value is None):
                self._write_target(node.target, node, locks)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._write_target(target, node, locks)
        elif isinstance(node, ast.Call):
            self._visit_call(node, locks)
        elif isinstance(node, ast.Return) and node.value is not None:
            self._visit_return(node, locks)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _write_target(
        self, target: ast.AST, node: ast.AST, locks: FrozenSet[Lock]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._write_target(elt, node, locks)
            return
        if isinstance(target, ast.Starred):
            self._write_target(target.value, node, locks)
            return
        if isinstance(target, ast.Name):
            # Rebinding a module-level shared name needs ``global``.
            if target.id in self.info.global_names:
                obj = self.model.module_shared.get(
                    (self.info.module, target.id)
                )
                if obj is not None:
                    self._event("write", node, locks, obj=obj)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            obj = self._shared_for_path(target, writing=True)
            if obj is not None:
                self._event("write", node, locks, obj=obj)

    def _shared_for_path(
        self, expr: ast.AST, writing: bool
    ) -> Optional[SharedObject]:
        return self.model.shared_for_path(self.info, expr, writing)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _visit_call(self, call: ast.Call, locks: FrozenSet[Lock]) -> None:
        self.call_locks[id(call)] = locks
        func = call.func
        chain = _attr_chain(func)
        # Mutator methods write their receiver.
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            obj = self._shared_for_path(func.value, writing=False)
            if obj is None and isinstance(func.value, ast.Name):
                obj = self._ref_aliases.get(func.value.id)
            if obj is not None:
                self._event("write", call, locks, obj=obj)
        # Blocking sinks under a lock.
        if chain is not None and _is_blocking_chain(chain):
            self._event("block", call, locks, chain=chain)
        elif isinstance(func, ast.Name) and func.id in _BLOCKING_NAMES:
            self._event("block", call, locks, chain=func.id)
        # Thread-entry targets: pool.submit(f, ...) / Thread(target=f).
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "submit"
            and call.args
        ):
            receiver = func.value
            if not (
                isinstance(receiver, ast.Name)
                and receiver.id in self._process_pools
            ):
                self.submit_targets.append((self.info.module, call.args[0]))
        if chain is not None and chain.split(".")[-1] == "Thread":
            for keyword in call.keywords:
                if keyword.arg == "target":
                    self.submit_targets.append(
                        (self.info.module, keyword.value)
                    )

    # ------------------------------------------------------------------
    # Aliases / publication
    # ------------------------------------------------------------------
    def _note_aliases(self, node: ast.Assign) -> None:
        """Track, in statement order, locals naming shared references
        and process pools."""
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        value = node.value
        self._ref_aliases[name] = self._reference_root(value)
        self._process_pools.discard(name)
        if isinstance(value, ast.Call):
            chain = _attr_chain(value.func)
            if chain is not None and chain.split(".")[-1] == "ProcessPoolExecutor":
                self._process_pools.add(name)

    def _reference_root(self, expr: ast.AST) -> Optional[SharedObject]:
        """Shared object an expression references (escape tracking)."""
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr in _ACCESSOR_TAILS:
                return self._reference_root(func.value)
            return None  # fresh object (copies included)
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            obj = self._shared_for_path(expr, writing=False)
            if obj is not None:
                return obj
            # Walk down to a possible aliased root name.
            node = expr
            while isinstance(node, (ast.Attribute, ast.Subscript)):
                node = node.value
            if isinstance(node, ast.Name):
                return self._ref_aliases.get(node.id)
            return None
        if isinstance(expr, ast.Name):
            obj = self._shared_for_path(expr, writing=False)
            if obj is not None:
                return obj
            return self._ref_aliases.get(expr.id)
        return None

    # ------------------------------------------------------------------
    # Returns
    # ------------------------------------------------------------------
    def _visit_return(self, node: ast.Return, locks: FrozenSet[Lock]) -> None:
        values = (
            node.value.elts
            if isinstance(node.value, ast.Tuple)
            else [node.value]
        )
        for value in values:
            if self._is_copy(value):
                continue
            obj = self._reference_root(value)
            if obj is not None:
                self._event("return", node, locks, obj=obj)

    @staticmethod
    def _is_copy(expr: ast.AST) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _COPIER_NAMES:
            return True
        chain = _attr_chain(func)
        return chain is not None and chain.split(".")[-1] in _COPIER_TAILS

    # ------------------------------------------------------------------
    # Locks
    # ------------------------------------------------------------------
    def _resolve_lock(self, expr: ast.AST) -> Optional[Lock]:
        info = self.info
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            # self._lock
            if (
                info.params
                and expr.value.id == info.params[0]
                and info.class_name is not None
            ):
                class_qual = f"{info.module}.{info.class_name}"
                if (class_qual, expr.attr) in self.model.instance_locks:
                    return ("instance", class_qual, expr.attr)
            # mod._LOCK via an imported module name.
            imported = self.model.project.imports.get(info.module, {}).get(
                expr.value.id
            )
            if imported is not None:
                owner = self.model.resolve_module(imported)
                if owner is not None and (owner, expr.attr) in self.model.module_locks:
                    return ("module", owner, expr.attr)
            return None
        if isinstance(expr, ast.Name):
            name = expr.id
            if (info.module, name) in self.model.module_locks:
                return ("module", info.module, name)
            # local alias of self._lock
            alias = info.aliases.get(name)
            if (
                alias is not None
                and info.params
                and alias[0] == info.params[0]
                and len(alias[1]) == 1
                and info.class_name is not None
            ):
                class_qual = f"{info.module}.{info.class_name}"
                if (class_qual, alias[1][0]) in self.model.instance_locks:
                    return ("instance", class_qual, alias[1][0])
            # from mod import _LOCK
            imported = self.model.project.imports.get(info.module, {}).get(name)
            if imported is not None:
                mod_part, _, item = imported.rpartition(".")
                owner = self.model.resolve_module(mod_part)
                if owner is not None and (owner, item) in self.model.module_locks:
                    return ("module", owner, item)
        return None

    # ------------------------------------------------------------------
    def _event(self, kind: str, node: ast.AST, locks: FrozenSet[Lock],
               obj: Optional[SharedObject] = None, chain: str = "",
               lock: Optional[Lock] = None) -> None:
        self.events.append(
            _Event(
                kind=kind,
                func=self.info.qualname,
                node_line=getattr(node, "lineno", 0),
                node_col=getattr(node, "col_offset", 0),
                locks=locks,
                obj=obj,
                chain=chain,
                lock=lock,
            )
        )


def concurrency_model(project: Project) -> ConcurrencyModel:
    """One cached :class:`ConcurrencyModel` per analyzed project."""
    cached = getattr(project, "_concurrency_model", None)
    if cached is None:
        cached = ConcurrencyModel(project)
        project._concurrency_model = cached
    return cached


# ----------------------------------------------------------------------
# Rule drivers (wrapped into DeepRule subclasses by analysis.deep)
# ----------------------------------------------------------------------
def _locked_names(locks: FrozenSet[Lock]) -> Tuple[str, ...]:
    return tuple(sorted(lock_label(lock) for lock in locks))


def check_unguarded_writes(model: ConcurrencyModel):
    """R105: shared writes on a thread path with an empty lockset."""
    for event in model.cone_events("write"):
        if model.effective_locks(event):
            continue
        if model.is_safe(event.obj.qualname, event.func):
            continue
        chain = model.chains.get(event.func, (event.func,))
        yield event, (
            f"unguarded write to shared {event.obj.label} in "
            f"{_short_qual(event.func)}() reachable from thread entry via "
            f"{render_chain(chain)}; hold a lock around the write or add a "
            f"_CONCURRENCY_SAFE entry"
        ), chain

    # Guarded-but-inconsistent objects are R106's job.


def check_lock_consistency(model: ConcurrencyModel):
    """R106: one shared object guarded by different locks at different
    sites (every writer must agree on a single lock)."""
    by_object: Dict[SharedObject, List[Tuple[_Event, FrozenSet[Lock]]]] = {}
    for event in model.cone_events("write"):
        by_object.setdefault(event.obj, []).append(
            (event, model.effective_locks(event))
        )
    for obj in sorted(by_object, key=lambda o: o.qualname):
        guarded = [(e, s) for e, s in by_object[obj] if s]
        if len(guarded) < 2:
            continue
        common = frozenset.intersection(*[s for _, s in guarded])
        if common:
            continue
        if model.is_safe(obj.qualname):
            continue
        sites = sorted(
            {
                f"{', '.join(_locked_names(s))} in {_short_qual(e.func)}()"
                for e, s in guarded
            }
        )
        anchor = min(guarded, key=lambda pair: (pair[0].func, pair[0].node_line))
        event = anchor[0]
        chain = model.chains.get(event.func, (event.func,))
        yield event, (
            f"inconsistent locking for shared {obj.label}: guarded by "
            f"{'; '.join(sites)} — every writer must hold one consistent "
            f"lock"
        ), chain


def check_escapes(model: ConcurrencyModel):
    """R107: references to shared mutable state escaping via return."""
    for event in model.cone_events("return"):
        obj = event.obj
        if obj not in model.written_objects:
            continue  # never mutated post-import: effectively frozen
        if model.is_safe(obj.qualname, event.func):
            continue
        chain = model.chains.get(event.func, (event.func,))
        yield event, (
            f"{_short_qual(event.func)}() returns a reference into shared "
            f"{obj.label}, which escapes its lock; return a copy (or a "
            f"read-only view), or add a _CONCURRENCY_SAFE entry for the "
            f"documented contract"
        ), chain


def check_lock_discipline(model: ConcurrencyModel):
    """R108: lock-order inversions and blocking calls under a lock."""
    # Acquisition-order edges: (held, acquired) -> first event.
    edges: Dict[Tuple[Lock, Lock], _Event] = {}
    for event in model.cone_events("acquire"):
        prior = event.locks | (model.held.get(event.func) or frozenset())
        for held_lock in prior:
            if held_lock != event.lock:
                edges.setdefault((held_lock, event.lock), event)
    reported: Set[Tuple[Lock, Lock]] = set()
    for (first, second), event in sorted(
        edges.items(), key=lambda kv: (kv[1].func, kv[1].node_line)
    ):
        reverse = edges.get((second, first))
        if reverse is None:
            continue
        key = tuple(sorted((first, second)))
        if key in reported:
            continue
        reported.add(key)
        chain = model.chains.get(event.func, (event.func,))
        yield event, (
            f"lock-order inversion: {_short_qual(event.func)}() acquires "
            f"{lock_label(event.lock)} while holding "
            f"{lock_label(first)}, but {_short_qual(reverse.func)}() "
            f"acquires them in the opposite order; pick one global order"
        ), chain
    for event in model.cone_events("block"):
        effective = model.effective_locks(event)
        if not effective:
            continue
        if model.is_safe(event.func):
            continue
        chain = model.chains.get(event.func, (event.func,))
        yield event, (
            f"blocking call {event.chain}() while holding "
            f"{', '.join(_locked_names(effective))} in "
            f"{_short_qual(event.func)}(); move I/O and sleeps outside the "
            f"critical section"
        ), chain
