"""Decision-kernel contract analysis (rules R109-R113).

Since the decision-kernel refactor, every placement policy is a pure
decider: ``decide()`` yields typed :class:`~repro.sim.decisions.Decision`
objects, one :class:`~repro.sim.engine.ActionExecutor` applies them, and
an :class:`~repro.sim.decisions.Outcome` is sent back into the
generator.  That architecture is held together by contracts that used to
be enforced only by a syntactic test and runtime invariants.  This
module proves them statically, on top of the callgraph's symbol table
and transitive write-effect fixpoint (:mod:`repro.analysis.callgraph`):

* **R109 — handler exhaustiveness.**  Every concrete ``Decision``
  subclass must have an entry in the executor's class-level ``HANDLERS``
  dispatch table, every entry must name a real ``_apply_*`` method, and
  every ``_apply_*`` method must be reachable through the table (no dead
  handlers).  Adding ``MigrateThread`` without a handler becomes a lint
  error instead of a runtime ``SimulationError``.
* **R110 — interprocedural decider purity.**  No function reachable
  from a policy's ``decide()`` may write simulation state through the
  ``sim`` parameter (or module globals).  This is the semantic upgrade
  of the old syntactic purity test: the callgraph write-effect fixpoint
  sees a mutation through any depth of calls.  Writes whose attribute
  path crosses an underscore-private component are sanctioned — they
  are version-keyed memo caches (``AddressSpace._home_map``), invisible
  to results by construction.
* **R111 — generator-protocol misuse.**  Deciders that yield values
  which are not ``Decision`` objects, policy ``decide()`` methods whose
  ``return`` value the executor's ``run_interval`` silently drops, and
  loops that fire mutating decisions as bare statements (discarding the
  ``Outcome``) while gating the loop on a hand-maintained budget
  counter — accounting work that was never confirmed.
* **R112 — accounting completeness.**  Each ``Decision`` class declares
  the :class:`PolicyActionSummary` counters its handler must touch
  (``counters`` class metadata); the analyzer matches the declaration
  against the handler's inferred write effects both ways, and checks
  the union of declared counters covers every conserved field the
  invariant checker reconciles (``_ACTION_FIELDS``).
* **R113 — conflict-domain declarations.**  Each ``Decision`` class
  declares its conflict domain (``page`` / ``thp`` / ``pt`` / ``none``)
  as ``domain`` class metadata; the analyzer checks the literal target
  kinds in ``targets()`` agree with the declaration, and that the
  executor's ``CONFLICT_DOMAINS`` claim coverage equals exactly the set
  of declared non-``none`` domains.

All five rules are structure-driven: a tree with no ``Decision``
hierarchy or no ``HANDLERS`` table is simply out of scope, so ordinary
fixture trees stay clean.  Suppression uses the standard
``# lint: ignore[R110]`` comments.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    GLOBAL_ROOT,
    Effect,
    FunctionInfo,
    Project,
)
from repro.analysis.linter import Finding

#: Valid values of the ``domain`` class metadata (R113).
VALID_DOMAINS: Tuple[str, ...] = ("page", "thp", "pt", "none")

#: Domains whose decisions mutate backing state; their handlers must
#: account work (R112) and their Outcomes must not be discarded inside
#: budget-gated loops (R111).
MUTATING_DOMAINS: Tuple[str, ...] = ("page", "pt")

#: Class basename anchoring the decision hierarchy.
DECISION_BASE = "Decision"

#: Class basename anchoring the policy hierarchy (R110/R111 roots).
POLICY_BASE = "PlacementPolicy"

#: Executor method-name prefix for apply handlers (R109 dead-handler
#: detection).
HANDLER_PREFIX = "_apply_"


# ----------------------------------------------------------------------
# Parsed structures
# ----------------------------------------------------------------------
@dataclass
class DecisionClassInfo:
    """One concrete ``Decision`` subclass and its declared metadata."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: Declared conflict domain, or None when the class body has none.
    domain: Optional[str] = None
    domain_node: Optional[ast.AST] = None
    #: Declared summary counters, or None when the class body has none.
    counters: Optional[Tuple[str, ...]] = None
    counters_node: Optional[ast.AST] = None
    #: Literal target-kind strings parsed from ``targets()`` returns.
    target_kinds: Tuple[str, ...] = ()
    #: Whether a ``targets()`` body was found (own body or inherited).
    has_targets: bool = False
    #: Whether ``targets()`` contains returns we could not parse into
    #: literal kinds (dynamic construction); kind checks are skipped.
    opaque_targets: bool = False

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def declared_counters(self) -> Tuple[str, ...]:
        """Counters, treating an absent declaration as the base () ."""
        return self.counters if self.counters is not None else ()


@dataclass
class ExecutorInfo:
    """One class carrying a ``HANDLERS`` decision-dispatch table."""

    qualname: str
    module: str
    node: ast.ClassDef
    handlers_node: ast.AST
    #: decision class qualname -> handler method name
    handlers: Dict[str, str] = field(default_factory=dict)
    #: HANDLERS keys that did not resolve to a project class, with the
    #: spelled name (R109 reports them).
    unresolved_keys: List[str] = field(default_factory=list)
    #: HANDLERS keys that resolved to a non-Decision class.
    foreign_keys: List[str] = field(default_factory=list)
    #: Every method name appearing as a HANDLERS value (including ones
    #: keyed by unresolved/foreign classes) — dead-handler detection
    #: must not double-report a method whose key is already flagged.
    referenced_methods: Set[str] = field(default_factory=set)
    conflict_domains: Optional[Tuple[str, ...]] = None
    conflict_domains_node: Optional[ast.AST] = None


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _own_nodes(func_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(getattr(func_node, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _class_body_assign(
    node: ast.ClassDef, name: str
) -> Tuple[Optional[ast.AST], Optional[ast.AST]]:
    """Find ``name = value`` / ``name: T = value`` in a class body."""
    for stmt in node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == name
            and stmt.value is not None
        ):
            return stmt, stmt.value
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
        ):
            return stmt, stmt.value
    return None, None


def _string_tuple(value: Optional[ast.AST]) -> Optional[Tuple[str, ...]]:
    """Parse a tuple/list literal of string constants, else None."""
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    out: List[str] = []
    for elt in value.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            out.append(elt.value)
        else:
            return None
    return tuple(out)


def _names_in(node: Optional[ast.AST]) -> Set[str]:
    if node is None:
        return set()
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _short(qualname: str) -> str:
    """Last two dotted components, for chains and messages."""
    return ".".join(qualname.split(".")[-2:])


# ----------------------------------------------------------------------
# The model
# ----------------------------------------------------------------------
class DecisionFlowModel:
    """Parsed decision-kernel structure of one project.

    Built once per project (cached by :func:`decision_flow_model`) and
    shared by the five rules: the decision hierarchy with its metadata,
    every executor's dispatch table, the policy ``decide()`` roots, the
    summary's field set and the invariant checker's conserved fields.
    """

    def __init__(self, project: Project) -> None:
        self.project = project
        project.analyze()
        #: qualname -> info for every concrete Decision subclass.
        self.decisions: Dict[str, DecisionClassInfo] = {}
        #: Hierarchy roots (classes literally named ``Decision``).
        self.decision_bases: List[str] = []
        self.executors: List[ExecutorInfo] = []
        #: ``decide()`` qualnames of PlacementPolicy subclasses.
        self.policy_roots: List[str] = []
        #: PolicyActionSummary dataclass fields (None: class not in tree,
        #: fields are then not filtered).
        self.summary_fields: Optional[Tuple[str, ...]] = None
        #: Conserved fields the invariant checker reconciles, with the
        #: module carrying the declaration (for finding anchors).
        self.action_fields: Tuple[str, ...] = ()
        self.action_fields_module: Optional[str] = None
        self.action_fields_node: Optional[ast.AST] = None
        self._subclasses = self._subclass_map()
        self._collect_decisions()
        self._collect_executors()
        self._collect_policy_roots()
        self._collect_summary_fields()
        self._collect_action_fields()

    # -- hierarchy ------------------------------------------------------
    def _resolve_base(self, module: str, base: ast.AST) -> Optional[str]:
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):
            name = base.attr
        else:
            return None
        project = self.project
        local = project.module_symbols.get(module, {}).get(name)
        if local is None:
            local = project.imports.get(module, {}).get(name)
        if local is None:
            return None
        resolved = project._lookup(local)
        return resolved if resolved in project.classes else None

    def _subclass_map(self) -> Dict[str, List[str]]:
        """Direct subclass edges: base qualname -> subclass qualnames."""
        edges: Dict[str, List[str]] = {}
        for qual, node in self.project.classes.items():
            module = qual.rsplit(".", 1)[0]
            for base in node.bases:
                parent = self._resolve_base(module, base)
                if parent is not None:
                    edges.setdefault(parent, []).append(qual)
        return edges

    def _transitive_subclasses(self, roots: Sequence[str]) -> List[str]:
        seen: Set[str] = set()
        queue = list(roots)
        while queue:
            current = queue.pop(0)
            for child in self._subclasses.get(current, ()):
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return sorted(seen)

    # -- decisions ------------------------------------------------------
    def _collect_decisions(self) -> None:
        self.decision_bases = sorted(
            qual
            for qual in self.project.classes
            if qual.rsplit(".", 1)[-1] == DECISION_BASE
        )
        for qual in self._transitive_subclasses(self.decision_bases):
            node = self.project.classes[qual]
            module = qual.rsplit(".", 1)[0]
            info = DecisionClassInfo(qualname=qual, module=module, node=node)
            info.domain_node, domain_value = _class_body_assign(node, "domain")
            if isinstance(domain_value, ast.Constant) and isinstance(
                domain_value.value, str
            ):
                info.domain = domain_value.value
            info.counters_node, counters_value = _class_body_assign(
                node, "counters"
            )
            info.counters = _string_tuple(counters_value)
            self._parse_targets(info)
            self.decisions[qual] = info

    def _parse_targets(self, info: DecisionClassInfo) -> None:
        """Literal target kinds from the nearest ``targets()`` body."""
        node = self._find_method(info.qualname, "targets")
        if node is None:
            return
        info.has_targets = True
        kinds: List[str] = []
        for sub in _own_nodes(node):
            if not isinstance(sub, ast.Return) or sub.value is None:
                continue
            value = sub.value
            if isinstance(value, ast.Tuple):
                for elt in value.elts:
                    if (
                        isinstance(elt, ast.Tuple)
                        and elt.elts
                        and isinstance(elt.elts[0], ast.Constant)
                        and isinstance(elt.elts[0].value, str)
                    ):
                        kinds.append(elt.elts[0].value)
                    else:
                        info.opaque_targets = True
            elif not (
                isinstance(value, ast.Constant) and value.value is None
            ):
                info.opaque_targets = True
        info.target_kinds = tuple(sorted(set(kinds)))

    def _find_method(self, qual_cls: str, name: str) -> Optional[ast.AST]:
        """Method body for a class, walking up the base chain."""
        seen: Set[str] = set()
        queue = [qual_cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            func = self.project.functions.get(f"{current}.{name}")
            if func is not None:
                return func.node
            node = self.project.classes.get(current)
            if node is None:
                continue
            module = current.rsplit(".", 1)[0]
            for base in node.bases:
                parent = self._resolve_base(module, base)
                if parent is not None:
                    queue.append(parent)
        return None

    # -- executors ------------------------------------------------------
    def _collect_executors(self) -> None:
        for qual in sorted(self.project.classes):
            node = self.project.classes[qual]
            handlers_node, handlers_value = _class_body_assign(
                node, "HANDLERS"
            )
            if handlers_node is None or not isinstance(
                handlers_value, ast.Dict
            ):
                continue
            module = qual.rsplit(".", 1)[0]
            executor = ExecutorInfo(
                qualname=qual,
                module=module,
                node=node,
                handlers_node=handlers_node,
            )
            for key, value in zip(
                handlers_value.keys, handlers_value.values
            ):
                key_qual, key_name = self._resolve_key(module, key)
                method = self._handler_name(value)
                if method is not None:
                    executor.referenced_methods.add(method)
                if key_qual is None:
                    executor.unresolved_keys.append(key_name)
                    continue
                if key_qual not in self.decisions:
                    executor.foreign_keys.append(key_name)
                    continue
                if method is not None:
                    executor.handlers[key_qual] = method
            domains_node, domains_value = _class_body_assign(
                node, "CONFLICT_DOMAINS"
            )
            executor.conflict_domains_node = domains_node
            executor.conflict_domains = _string_tuple(domains_value)
            self.executors.append(executor)

    def _resolve_key(
        self, module: str, key: Optional[ast.AST]
    ) -> Tuple[Optional[str], str]:
        """Resolve a HANDLERS key to a class qualname (or name it)."""
        if isinstance(key, ast.Name):
            name = key.id
        elif isinstance(key, ast.Attribute):
            name = key.attr
        else:
            return None, ast.dump(key) if key is not None else "<none>"
        project = self.project
        local = project.module_symbols.get(module, {}).get(name)
        if local is None:
            local = project.imports.get(module, {}).get(name)
        if local is None:
            return None, name
        resolved = project._lookup(local)
        if resolved in project.classes:
            return resolved, name
        return None, name

    @staticmethod
    def _handler_name(value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
        return None

    # -- policies and summary -------------------------------------------
    def _collect_policy_roots(self) -> None:
        bases = [
            qual
            for qual in self.project.classes
            if qual.rsplit(".", 1)[-1] == POLICY_BASE
        ]
        classes = sorted(bases) + self._transitive_subclasses(bases)
        roots: List[str] = []
        for qual_cls in classes:
            decide = f"{qual_cls}.decide"
            if decide in self.project.functions and decide not in roots:
                roots.append(decide)
        self.policy_roots = roots

    def _collect_summary_fields(self) -> None:
        for qual in sorted(self.project.classes):
            if qual.rsplit(".", 1)[-1] != "PolicyActionSummary":
                continue
            fields: List[str] = []
            for stmt in self.project.classes[qual].body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                annotation = ast.unparse(stmt.annotation)
                if "ClassVar" in annotation:
                    continue
                fields.append(stmt.target.id)
            self.summary_fields = tuple(fields)
            return

    def _collect_action_fields(self) -> None:
        for module, ctx in sorted(self.project.contexts.items()):
            for stmt in ctx.tree.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "_ACTION_FIELDS"
                ):
                    parsed = _string_tuple(stmt.value)
                    if parsed is not None:
                        self.action_fields = parsed
                        self.action_fields_module = module
                        self.action_fields_node = stmt
                        return

    # -- shared lookups -------------------------------------------------
    def resolve_decision_call(
        self, info: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        """Decision class qualname a constructor call builds, if any."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return None
        project = self.project
        local = project.module_symbols.get(info.module, {}).get(name)
        if local is None:
            local = project.imports.get(info.module, {}).get(name)
        if local is None:
            return None
        resolved = project._lookup(local)
        return resolved if resolved in self.decisions else None

    def resolve_project_class_call(
        self, info: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        """Project class qualname a constructor call builds, if any."""
        func = call.func
        if not isinstance(func, ast.Name):
            return None
        project = self.project
        local = project.module_symbols.get(info.module, {}).get(func.id)
        if local is None:
            local = project.imports.get(info.module, {}).get(func.id)
        if local is None:
            return None
        resolved = project._lookup(local)
        return resolved if resolved in project.classes else None

    def decider_functions(self) -> List[str]:
        """Generator functions that emit decisions (R111 scope).

        A function qualifies when it contains a ``yield`` and either
        (a) it is a policy ``decide()`` root, (b) it yields at least one
        resolvable ``Decision`` construction, or (c) its return
        annotation mentions ``Decision``.
        """
        out: List[str] = []
        roots = set(self.policy_roots)
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            yields = [
                n
                for n in _own_nodes(info.node)
                if isinstance(n, (ast.Yield, ast.YieldFrom))
            ]
            if not yields:
                continue
            if qualname in roots:
                out.append(qualname)
                continue
            annotation = getattr(info.node, "returns", None)
            if annotation is not None and "Decision" in ast.unparse(
                annotation
            ):
                out.append(qualname)
                continue
            for node in yields:
                if (
                    isinstance(node, ast.Yield)
                    and isinstance(node.value, ast.Call)
                    and self.resolve_decision_call(info, node.value)
                ):
                    out.append(qualname)
                    break
        return out

    def domain_of(self, qual_decision: str) -> str:
        info = self.decisions.get(qual_decision)
        if info is None or info.domain is None:
            return "none"
        return info.domain

    # -- --explain support ----------------------------------------------
    def describe(self) -> str:
        """Human-readable model summary for ``--explain R109..R113``."""
        lines = ["decision-kernel model:"]
        lines.append(f"  decision classes ({len(self.decisions)}):")
        for qual in sorted(self.decisions):
            info = self.decisions[qual]
            counters = ",".join(info.declared_counters()) or "-"
            lines.append(
                f"    {_short(qual)}: domain={info.domain or '?'} "
                f"counters={counters}"
            )
        for executor in self.executors:
            lines.append(
                f"  executor {_short(executor.qualname)}: "
                f"{len(executor.handlers)} handler(s), "
                f"domains={','.join(executor.conflict_domains or ()) or '?'}"
            )
        if self.policy_roots:
            lines.append(
                "  policy decide() roots: "
                + ", ".join(_short(q) for q in self.policy_roots)
            )
        if self.action_fields:
            lines.append(
                "  conserved fields: " + ", ".join(self.action_fields)
            )
        return "\n".join(lines)


def decision_flow_model(project: Project) -> DecisionFlowModel:
    """One cached model per analyzed project (all five rules share it)."""
    cached = getattr(project, "_decisionflow_model", None)
    if cached is None:
        cached = DecisionFlowModel(project)
        project._decisionflow_model = cached
    return cached


# ----------------------------------------------------------------------
# Finding helpers
# ----------------------------------------------------------------------
def _finding(
    model: DecisionFlowModel,
    rule: str,
    module: str,
    node: Optional[ast.AST],
    message: str,
    chain: Tuple[str, ...] = (),
) -> Optional[Finding]:
    ctx = model.project.contexts.get(module)
    if ctx is None:
        return None
    return ctx.finding(rule, node if node is not None else ctx.tree, message,
                       chain=chain)


def _emit(findings: List[Finding], finding: Optional[Finding]) -> None:
    if finding is not None:
        findings.append(finding)


# ----------------------------------------------------------------------
# R109: handler exhaustiveness
# ----------------------------------------------------------------------
def check_exhaustiveness(model: DecisionFlowModel) -> List[Finding]:
    """R109: HANDLERS covers every Decision subclass, with no dead
    handlers and no foreign keys."""
    findings: List[Finding] = []
    if not model.executors:
        return findings
    handled: Set[str] = set()
    for executor in model.executors:
        handled |= set(executor.handlers)
        for name in executor.unresolved_keys:
            _emit(
                findings,
                _finding(
                    model,
                    "R109",
                    executor.module,
                    executor.handlers_node,
                    f"{_short(executor.qualname)}.HANDLERS key {name!r} does "
                    "not resolve to a known class",
                ),
            )
        for name in executor.foreign_keys:
            _emit(
                findings,
                _finding(
                    model,
                    "R109",
                    executor.module,
                    executor.handlers_node,
                    f"{_short(executor.qualname)}.HANDLERS key {name!r} is "
                    "not a Decision subclass",
                ),
            )
        method_quals = {
            q.rsplit(".", 1)[-1]
            for q in model.project.functions
            if q.startswith(executor.qualname + ".")
        }
        referenced = executor.referenced_methods
        for qual_decision, method in sorted(executor.handlers.items()):
            if method not in method_quals:
                _emit(
                    findings,
                    _finding(
                        model,
                        "R109",
                        executor.module,
                        executor.handlers_node,
                        f"{_short(executor.qualname)}.HANDLERS maps "
                        f"{_short(qual_decision)} to missing method "
                        f"{method!r}",
                    ),
                )
        for method in sorted(method_quals):
            if method.startswith(HANDLER_PREFIX) and method not in referenced:
                info = model.project.functions[
                    f"{executor.qualname}.{method}"
                ]
                _emit(
                    findings,
                    _finding(
                        model,
                        "R109",
                        executor.module,
                        info.node,
                        f"dead handler {_short(executor.qualname)}.{method}: "
                        "not referenced by HANDLERS",
                    ),
                )
    for qual in sorted(model.decisions):
        if qual in handled:
            continue
        info = model.decisions[qual]
        _emit(
            findings,
            _finding(
                model,
                "R109",
                info.module,
                info.node,
                f"Decision subclass {_short(qual)} has no executor handler: "
                "add an _apply_* method and a HANDLERS entry",
            ),
        )
    return findings


# ----------------------------------------------------------------------
# R110: interprocedural decider purity
# ----------------------------------------------------------------------
def _is_sanctioned_path(path: Tuple[str, ...]) -> bool:
    """Underscore-private path components mark internal memo caches."""
    return any(part.startswith("_") for part in path)


def _sim_param(info: FunctionInfo) -> Optional[str]:
    if "sim" in info.params:
        return "sim"
    if info.class_name is not None and len(info.params) > 1:
        return info.params[1]
    if info.class_name is None and info.params:
        return info.params[0]
    return None


def _culprit_chain(
    model: DecisionFlowModel, root: str, effect: Effect
) -> Tuple[str, ...]:
    """Shortest call chain to a function directly causing the effect."""
    chains = model.project.reachable_from([root])
    best: Tuple[str, ...] = (root,)
    for qualname, chain in sorted(chains.items()):
        info = model.project.functions[qualname]
        for direct in info.direct_effects:
            if direct.path and effect.path and direct.path[-1] == effect.path[-1]:
                if len(chain) > len(best):
                    best = chain
                break
    return tuple(_short(q) for q in best)


def check_purity(model: DecisionFlowModel) -> List[Finding]:
    """R110: nothing reachable from decide() writes simulation state."""
    findings: List[Finding] = []
    for root in model.policy_roots:
        info = model.project.functions[root]
        sim = _sim_param(info)
        bad: List[Effect] = []
        for effect in sorted(info.effects, key=lambda e: (e.root, e.path)):
            if effect.root == GLOBAL_ROOT:
                bad.append(effect)
            elif (
                sim is not None
                and effect.root == sim
                and not _is_sanctioned_path(effect.path)
            ):
                bad.append(effect)
        for effect in bad:
            chain = _culprit_chain(model, root, effect)
            _emit(
                findings,
                _finding(
                    model,
                    "R110",
                    info.module,
                    info.node,
                    f"{_short(root)}() may mutate {effect.describe()} "
                    f"(via {' -> '.join(chain)}); deciders are pure — "
                    "yield a Decision and let the executor apply it",
                    chain=chain,
                ),
            )
    return findings


# ----------------------------------------------------------------------
# R111: generator-protocol misuse
# ----------------------------------------------------------------------
def _non_decision_yields(
    model: DecisionFlowModel, info: FunctionInfo
) -> Iterator[Tuple[ast.AST, str]]:
    for node in _own_nodes(info.node):
        if not isinstance(node, ast.Yield) or node.value is None:
            continue
        value = node.value
        if isinstance(value, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
            yield node, "a container literal"
        elif isinstance(value, ast.Constant):
            yield node, f"constant {value.value!r}"
        elif isinstance(value, ast.Call):
            built = model.resolve_project_class_call(info, value)
            if built is not None and built not in model.decisions:
                yield node, f"a {_short(built)} instance"


def _loop_discarded_outcomes(
    model: DecisionFlowModel, info: FunctionInfo
) -> Iterator[Tuple[ast.AST, str, str]]:
    """Statement-yields of mutating decisions in budget-gated loops."""
    for loop in _own_nodes(info.node):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        body = [n for stmt in loop.body for n in ast.walk(stmt)]
        aug_names = {
            n.target.id
            for n in body
            if isinstance(n, ast.AugAssign) and isinstance(n.target, ast.Name)
        }
        guard_names: Set[str] = set()
        if isinstance(loop, ast.While):
            guard_names |= _names_in(loop.test)
        for node in body:
            if isinstance(node, ast.If) and any(
                isinstance(sub, (ast.Break, ast.Continue))
                for stmt in node.body
                for sub in ast.walk(stmt)
            ):
                guard_names |= _names_in(node.test)
        gating = sorted(aug_names & guard_names)
        if not gating:
            continue
        for node in body:
            if not (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Yield)
                and isinstance(node.value.value, ast.Call)
            ):
                continue
            built = model.resolve_decision_call(info, node.value.value)
            if built is None:
                continue
            if model.domain_of(built) in MUTATING_DOMAINS:
                yield node.value, _short(built), gating[0]


def check_generator_protocol(model: DecisionFlowModel) -> List[Finding]:
    """R111: yields must be Decisions, returns must not be dropped,
    Outcomes must be consulted where they gate further work."""
    findings: List[Finding] = []
    deciders = model.decider_functions()
    policy_roots = set(model.policy_roots)
    for qualname in deciders:
        info = model.project.functions[qualname]
        for node, what in _non_decision_yields(model, info):
            _emit(
                findings,
                _finding(
                    model,
                    "R111",
                    info.module,
                    node,
                    f"{_short(qualname)}() yields {what}; the executor "
                    "only accepts Decision objects",
                ),
            )
        if qualname in policy_roots:
            for node in _own_nodes(info.node):
                if (
                    isinstance(node, ast.Return)
                    and node.value is not None
                    and not (
                        isinstance(node.value, ast.Constant)
                        and node.value.value is None
                    )
                ):
                    _emit(
                        findings,
                        _finding(
                            model,
                            "R111",
                            info.module,
                            node,
                            f"{_short(qualname)}() returns a value that "
                            "run_interval silently drops; yield a Note or "
                            "record it on the policy instead",
                        ),
                    )
        for node, decision_name, counter in _loop_discarded_outcomes(
            model, info
        ):
            _emit(
                findings,
                _finding(
                    model,
                    "R111",
                    info.module,
                    node,
                    f"{_short(qualname)}() discards the Outcome of "
                    f"{decision_name} while {counter!r} gates the loop; "
                    "bind it (outcome = yield ...) and account the work "
                    "actually performed",
                ),
            )
    return findings


# ----------------------------------------------------------------------
# R112: accounting completeness
# ----------------------------------------------------------------------
def _summary_param(info: FunctionInfo) -> Optional[str]:
    if "summary" in info.params:
        return "summary"
    if len(info.params) >= 3:
        return info.params[2]
    return None


def _handler_writes(
    model: DecisionFlowModel, info: FunctionInfo
) -> Set[str]:
    """Summary fields a handler's transitive effects touch."""
    param = _summary_param(info)
    if param is None:
        return set()
    touched = {
        effect.path[0]
        for effect in info.effects
        if effect.root == param and effect.path
        and not effect.path[0].startswith("_")
    }
    if model.summary_fields is not None:
        # Name-based dynamic dispatch pollutes effects with unrelated
        # merge()/add_note() implementations; only real summary fields
        # count.
        touched &= set(model.summary_fields)
    return touched


def check_accounting(model: DecisionFlowModel) -> List[Finding]:
    """R112: handler write effects match the declared counter map."""
    findings: List[Finding] = []
    declared_union: Set[str] = set()
    have_handlers = False
    for executor in model.executors:
        for qual_decision, method in sorted(executor.handlers.items()):
            decision = model.decisions[qual_decision]
            handler = model.project.functions.get(
                f"{executor.qualname}.{method}"
            )
            if handler is None:
                continue  # R109 reports the missing method
            have_handlers = True
            declared = set(decision.declared_counters())
            declared_union |= declared
            if model.summary_fields is not None:
                for counter in sorted(
                    declared - set(model.summary_fields)
                ):
                    _emit(
                        findings,
                        _finding(
                            model,
                            "R112",
                            decision.module,
                            decision.counters_node or decision.node,
                            f"{decision.name}.counters declares "
                            f"{counter!r}, which is not a "
                            "PolicyActionSummary field",
                        ),
                    )
            actual = _handler_writes(model, handler)
            for counter in sorted(actual - declared):
                _emit(
                    findings,
                    _finding(
                        model,
                        "R112",
                        executor.module,
                        handler.node,
                        f"handler {_short(executor.qualname)}.{method} "
                        f"touches summary.{counter}, which "
                        f"{decision.name}.counters does not declare",
                    ),
                )
            for counter in sorted(declared - actual):
                _emit(
                    findings,
                    _finding(
                        model,
                        "R112",
                        executor.module,
                        handler.node,
                        f"{decision.name}.counters declares {counter!r} "
                        f"but handler {_short(executor.qualname)}.{method} "
                        "never touches it",
                    ),
                )
            if (
                decision.domain in MUTATING_DOMAINS
                and not declared
                and not actual
            ):
                _emit(
                    findings,
                    _finding(
                        model,
                        "R112",
                        executor.module,
                        handler.node,
                        f"handler {_short(executor.qualname)}.{method} "
                        f"applies a {decision.domain!r}-domain decision "
                        "but accounts no summary counter; the invariant "
                        "checker cannot reconcile its work",
                    ),
                )
    if (
        have_handlers
        and model.action_fields
        and model.action_fields_module is not None
    ):
        for conserved in model.action_fields:
            if conserved not in declared_union:
                _emit(
                    findings,
                    _finding(
                        model,
                        "R112",
                        model.action_fields_module,
                        model.action_fields_node,
                        f"conserved field {conserved!r} is reconciled by "
                        "the invariant checker but declared by no "
                        "Decision.counters",
                    ),
                )
    return findings


# ----------------------------------------------------------------------
# R113: conflict-domain declarations
# ----------------------------------------------------------------------
def check_conflict_domains(model: DecisionFlowModel) -> List[Finding]:
    """R113: metadata, targets() and executor claim coverage agree."""
    findings: List[Finding] = []
    if not model.decisions:
        return findings
    for qual in sorted(model.decisions):
        info = model.decisions[qual]
        if info.domain is None:
            _emit(
                findings,
                _finding(
                    model,
                    "R113",
                    info.module,
                    info.node,
                    f"Decision subclass {info.name} does not declare its "
                    "conflict domain (domain = \"page\" | \"thp\" | \"pt\" "
                    "| \"none\")",
                ),
            )
            continue
        if info.domain not in VALID_DOMAINS:
            _emit(
                findings,
                _finding(
                    model,
                    "R113",
                    info.module,
                    info.domain_node or info.node,
                    f"{info.name}.domain is {info.domain!r}; valid domains "
                    f"are {', '.join(VALID_DOMAINS)}",
                ),
            )
            continue
        if info.opaque_targets:
            continue
        kinds = set(info.target_kinds)
        if info.domain == "none":
            if kinds:
                _emit(
                    findings,
                    _finding(
                        model,
                        "R113",
                        info.module,
                        info.domain_node or info.node,
                        f"{info.name} declares domain 'none' but targets() "
                        f"claims {', '.join(sorted(kinds))} keys",
                    ),
                )
        else:
            if not info.has_targets or not kinds:
                _emit(
                    findings,
                    _finding(
                        model,
                        "R113",
                        info.module,
                        info.domain_node or info.node,
                        f"{info.name} declares domain {info.domain!r} but "
                        "targets() claims nothing; the executor cannot "
                        "arbitrate it",
                    ),
                )
            elif kinds != {info.domain}:
                _emit(
                    findings,
                    _finding(
                        model,
                        "R113",
                        info.module,
                        info.domain_node or info.node,
                        f"{info.name} declares domain {info.domain!r} but "
                        f"targets() claims "
                        f"{', '.join(sorted(kinds))} keys",
                    ),
                )
    for executor in model.executors:
        declared_domains = {
            model.domain_of(qual)
            for qual in executor.handlers
        } - {"none"}
        declared_domains &= set(VALID_DOMAINS)
        if executor.conflict_domains is None:
            if declared_domains:
                _emit(
                    findings,
                    _finding(
                        model,
                        "R113",
                        executor.module,
                        executor.handlers_node,
                        f"{_short(executor.qualname)} declares no "
                        "CONFLICT_DOMAINS; its claim logic must cover "
                        f"{', '.join(sorted(declared_domains))}",
                    ),
                )
            continue
        claimed = set(executor.conflict_domains)
        if claimed != declared_domains:
            missing = sorted(declared_domains - claimed)
            extra = sorted(claimed - declared_domains)
            detail = []
            if missing:
                detail.append(f"missing {', '.join(missing)}")
            if extra:
                detail.append(f"unclaimed-by-decisions {', '.join(extra)}")
            _emit(
                findings,
                _finding(
                    model,
                    "R113",
                    executor.module,
                    executor.conflict_domains_node,
                    f"{_short(executor.qualname)}.CONFLICT_DOMAINS "
                    f"({', '.join(sorted(claimed)) or 'empty'}) does not "
                    "match the domains its decisions declare "
                    f"({', '.join(sorted(declared_domains)) or 'empty'}): "
                    + "; ".join(detail),
                ),
            )
    return findings
