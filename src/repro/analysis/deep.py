"""Whole-program lint rules R101-R113 (``repro lint --deep``).

These rules need more than one file at a time: they run over a
:class:`repro.analysis.callgraph.Project` (symbol table + call graph +
transitive write effects) and the units pass
(:mod:`repro.analysis.units`):

* **R101** — *result-neutral purity*.  Measurement components —
  ``sim/profile.py``, ``analysis/invariants.py``, and anything listed
  in a module-level ``_RESULT_NEUTRAL`` registry tuple — must be
  observation-only: no transitive write effect on simulation state
  (``AddressSpace``, engine, allocator) reachable from their arguments
  or from module globals.  Writes one attribute deep into their *own*
  instance (``self.phase_s[...] = t``) are the one sanctioned form of
  bookkeeping.  The two default-protected modules are checked even when
  a tree's registry forgets them, so deleting a registry entry cannot
  silently disable the check.
* **R102** — *unit mismatch*: arithmetic, comparisons, call arguments,
  returns or assignments mixing unrelated dimensions (node ids vs
  thread ids, samples vs bytes, ...).
* **R103** — *missing conversion*: the same mix but within the
  page/byte family (bytes vs 4KB granules vs 2MB/1GB chunks), where the
  fix is a ×512 / ×``PAGE_4K``-style conversion factor; the factor is
  named in the message.
* **R104** — *whole-program randomness/clock reachability*: upgrade of
  the per-file R002.  Starting from the sim entry points
  (``Simulation.run`` plus any module-level ``_SIM_ENTRY_POINTS``
  registry), walk the call graph and flag every reachable call site of
  a wall-clock or random-number sink, reporting the call chain.  Sink
  lines carrying a ``# lint: ignore[R002]`` suppression are treated as
  sanctioned for R104 too — the comment marks the site deliberate, and
  the two rules would otherwise demand duplicate annotations.

* **R105-R108** — the concurrency-safety pass
  (:mod:`repro.analysis.concurrency`): unguarded writes to
  thread-shared state, inconsistent locking, locked-state escapes, and
  lock-order / blocking-call discipline, computed from thread entry
  points (``_THREAD_ENTRY_POINTS``) with an Eraser-style lockset
  fixpoint over the call graph.

* **R109-R113** — the decision-kernel pass
  (:mod:`repro.analysis.decisionflow`): handler exhaustiveness over the
  executor's ``HANDLERS`` table, interprocedural decider purity,
  generator-protocol misuse, accounting completeness against the
  ``counters`` metadata, and conflict-domain declarations against the
  ``domain`` metadata.  These rules are structure-driven (they key on a
  ``Decision`` class hierarchy and a ``HANDLERS`` dispatch table) and
  stay silent on trees without one.

Registries are plain module-level tuples of dotted name fragments; a
fragment matches a function when it appears as a contiguous dotted
segment of the qualified name (``"sim.profile"`` covers
``repro.sim.profile.PhaseTimer.lap``)::

    _RESULT_NEUTRAL = ("sim.profile",)
    _SIM_ENTRY_POINTS = ("Simulation.run",)
    _THREAD_ENTRY_POINTS = ("Dispatcher.worker",)
    _CONCURRENCY_SAFE = ("runner.run_benchmark",)
"""

from __future__ import annotations

import ast
import pathlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.callgraph import (
    GLOBAL_ROOT,
    Effect,
    FunctionInfo,
    Project,
)
from repro.analysis.linter import FileContext, Finding
from repro.analysis.rules import (
    SANCTIONED_RNG_FUNCS,
    _WALL_CLOCK_DATE_FUNCS,
    _WALL_CLOCK_TIME_FUNCS,
    _attr_chain,
)
from repro.analysis.units import UnitChecker, UnitEvent

#: Modules protected by R101 even without a registry entry.
DEFAULT_RESULT_NEUTRAL: Tuple[str, ...] = ("sim.profile", "analysis.invariants")

#: Sim entry points assumed by R104 even without a registry entry.
DEFAULT_ENTRY_POINTS: Tuple[str, ...] = ("Simulation.run",)


def _covers(fragment: str, qualname: str) -> bool:
    """Whether a dotted fragment is a contiguous segment of a qualname."""
    return f".{fragment}." in f".{qualname}."


class DeepRule:
    """Base class for whole-program rules: one pass over a Project."""

    rule_id: str = ""
    title: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        """Yield findings across the whole project."""
        raise NotImplementedError


class ResultNeutralPurity(DeepRule):
    """R101: registered measurement code must be observation-only."""

    rule_id = "R101"
    title = "result-neutral purity"

    def check(self, project: Project) -> Iterator[Finding]:
        protected = tuple(DEFAULT_RESULT_NEUTRAL) + tuple(
            sorted(project.result_neutral)
        )
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            fragment = next(
                (f for f in protected if _covers(f, qualname)), None
            )
            if fragment is None:
                continue
            bad = sorted(
                e.describe() for e in self._impure_effects(info)
            )
            if not bad:
                continue
            ctx = project.contexts.get(info.module)
            if ctx is None:
                continue
            yield ctx.finding(
                self.rule_id,
                info.node,
                f"{qualname} is result-neutral (via {fragment!r}) but may "
                f"mutate {', '.join(bad)}; measurement code must not write "
                "simulation state",
            )

    @staticmethod
    def _impure_effects(info: FunctionInfo) -> List[Effect]:
        """Effects that escape the function's own instance."""
        receiver = (
            info.params[0]
            if info.class_name is not None and info.params
            else None
        )
        bad = []
        for effect in info.effects:
            if effect.root == receiver and len(effect.path) <= 1:
                continue  # own-instance bookkeeping (self.phase_s[...] = t)
            bad.append(effect)
        return bad


class _UnitRule(DeepRule):
    """Shared driver for the two unit rules (classified per event)."""

    #: Which family of events this subclass reports.
    conversion_events: bool = False

    def check(self, project: Project) -> Iterator[Finding]:
        checker = _unit_checker(project)
        for info, event in checker.check():
            if event.is_conversion != self.conversion_events:
                continue
            ctx = project.contexts.get(info.module)
            if ctx is None:
                continue
            yield ctx.finding(
                self.rule_id, event.node, self._message(info, event)
            )

    def _message(self, info: FunctionInfo, event: UnitEvent) -> str:
        raise NotImplementedError


def _unit_checker(project: Project) -> UnitChecker:
    """One UnitChecker per analyzed project (R102 and R103 share it)."""
    cached = getattr(project, "_unit_checker", None)
    if cached is None:
        project.analyze()
        cached = UnitChecker(project)
        project._unit_checker = cached
    return cached


class UnitMismatch(_UnitRule):
    """R102: mixing unrelated dimensions (node vs tid, samples vs bytes)."""

    rule_id = "R102"
    title = "unit mismatch"
    conversion_events = False

    def _message(self, info: FunctionInfo, event: UnitEvent) -> str:
        return (
            f"unit mismatch in {info.name}(): {event.detail} "
            f"({event.left} vs {event.right})"
        )


class MissingConversion(_UnitRule):
    """R103: page/byte-family mix missing a ×512/×PAGE_4K conversion."""

    rule_id = "R103"
    title = "missing page-size conversion"
    conversion_events = True

    def _message(self, info: FunctionInfo, event: UnitEvent) -> str:
        return (
            f"missing conversion in {info.name}(): {event.detail} "
            f"({event.left} vs {event.right}){event.suggestion()}"
        )


class ReachableNondeterminism(DeepRule):
    """R104: random/clock sinks reachable from sim entry points."""

    rule_id = "R104"
    title = "reachable randomness / wall-clock"

    def check(self, project: Project) -> Iterator[Finding]:
        project.analyze()
        entries = self._resolve_entries(project)
        chains = project.reachable_from(entries)
        for qualname in sorted(chains):
            info = project.functions[qualname]
            if info.name in SANCTIONED_RNG_FUNCS:
                continue  # a sanctioned RNG construction/replay site
            ctx = project.contexts.get(info.module)
            if ctx is None:
                continue
            for call, chain in self._sink_calls(info):
                line = getattr(call, "lineno", 0)
                if ctx.is_suppressed(line, "R002"):
                    continue  # sanctioned sink (see module docstring)
                via = " -> ".join(
                    _short_qual(q) for q in chains[qualname]
                )
                yield ctx.finding(
                    self.rule_id,
                    call,
                    f"{chain}() reachable from sim entry point via {via}; "
                    "derive generators from repro._util.rng_for and "
                    "simulated time from the engine",
                )

    @staticmethod
    def _resolve_entries(project: Project) -> List[str]:
        fragments = tuple(DEFAULT_ENTRY_POINTS) + tuple(
            sorted(project.entry_points)
        )
        return [
            qualname
            for qualname in sorted(project.functions)
            if any(_covers(f, qualname) for f in fragments)
        ]

    @staticmethod
    def _sink_calls(info: FunctionInfo) -> Iterator[Tuple[ast.Call, str]]:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if chain.startswith(("np.random.", "numpy.random.")):
                yield node, chain
            elif parts[0] == "random" and len(parts) > 1:
                yield node, chain
            elif parts[0] == "time" and parts[-1] in _WALL_CLOCK_TIME_FUNCS:
                yield node, chain
            elif parts[-1] in _WALL_CLOCK_DATE_FUNCS and any(
                p in {"datetime", "date", "Date"} for p in parts[:-1]
            ):
                yield node, chain


def _short_qual(qualname: str) -> str:
    """Last two dotted components (``Simulation.run``) for messages."""
    return ".".join(qualname.split(".")[-2:])


class _ConcurrencyRule(DeepRule):
    """Shared driver for R105-R108: one cached model, one event driver.

    Subclasses name the checker in :mod:`repro.analysis.concurrency`;
    findings carry the inferred entry-point ``chain`` and the effective
    ``lockset`` at the site (both rendered by ``--explain``).
    """

    checker = staticmethod(lambda model: iter(()))

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.concurrency import (
            _locked_names,
            concurrency_model,
        )

        model = concurrency_model(project)
        for event, message, chain in type(self).checker(model):
            info = project.functions.get(event.func)
            ctx = project.contexts.get(info.module) if info else None
            if ctx is None:
                continue
            yield Finding(
                rule=self.rule_id,
                path=ctx.path,
                line=event.node_line,
                col=event.node_col + 1,
                message=message,
                chain=tuple(_short_qual(q) for q in chain),
                lockset=_locked_names(model.effective_locks(event)),
            )


class UnguardedSharedWrite(_ConcurrencyRule):
    """R105: writes to thread-shared state with an empty lockset."""

    rule_id = "R105"
    title = "unguarded shared write"

    @staticmethod
    def checker(model):
        from repro.analysis.concurrency import check_unguarded_writes

        return check_unguarded_writes(model)


class InconsistentLocking(_ConcurrencyRule):
    """R106: one shared object guarded by different locks."""

    rule_id = "R106"
    title = "inconsistent locking"

    @staticmethod
    def checker(model):
        from repro.analysis.concurrency import check_lock_consistency

        return check_lock_consistency(model)


class LockedStateEscape(_ConcurrencyRule):
    """R107: shared mutable state escaping its lock via return."""

    rule_id = "R107"
    title = "locked-state escape"

    @staticmethod
    def checker(model):
        from repro.analysis.concurrency import check_escapes

        return check_escapes(model)


class LockDiscipline(_ConcurrencyRule):
    """R108: lock-order inversions and blocking calls under a lock."""

    rule_id = "R108"
    title = "lock-order / blocking-call discipline"

    @staticmethod
    def checker(model):
        from repro.analysis.concurrency import check_lock_discipline

        return check_lock_discipline(model)


class _DecisionFlowRule(DeepRule):
    """Shared driver for R109-R113: one cached decision-kernel model."""

    checker = staticmethod(lambda model: [])

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.decisionflow import decision_flow_model

        model = decision_flow_model(project)
        yield from type(self).checker(model)


class HandlerExhaustiveness(_DecisionFlowRule):
    """R109: every Decision subclass has a handler, and vice versa."""

    rule_id = "R109"
    title = "decision handler exhaustiveness"

    @staticmethod
    def checker(model):
        from repro.analysis.decisionflow import check_exhaustiveness

        return check_exhaustiveness(model)


class DeciderPurity(_DecisionFlowRule):
    """R110: nothing reachable from decide() mutates simulation state."""

    rule_id = "R110"
    title = "interprocedural decider purity"

    @staticmethod
    def checker(model):
        from repro.analysis.decisionflow import check_purity

        return check_purity(model)


class GeneratorProtocol(_DecisionFlowRule):
    """R111: decider generators speak the yield/send protocol correctly."""

    rule_id = "R111"
    title = "generator-protocol misuse"

    @staticmethod
    def checker(model):
        from repro.analysis.decisionflow import check_generator_protocol

        return check_generator_protocol(model)


class AccountingCompleteness(_DecisionFlowRule):
    """R112: handler write effects match the declared counter map."""

    rule_id = "R112"
    title = "accounting completeness"

    @staticmethod
    def checker(model):
        from repro.analysis.decisionflow import check_accounting

        return check_accounting(model)


class ConflictDomains(_DecisionFlowRule):
    """R113: domain metadata, targets() and executor claims agree."""

    rule_id = "R113"
    title = "conflict-domain declarations"

    @staticmethod
    def checker(model):
        from repro.analysis.decisionflow import check_conflict_domains

        return check_conflict_domains(model)


#: Rationale text for ``repro lint --deep --explain RULE``.
RULE_RATIONALE: Dict[str, str] = {
    "R101": (
        "Measurement code (profilers, invariant checkers, anything in a\n"
        "_RESULT_NEUTRAL registry) must be observation-only: a write to\n"
        "simulation state from a timer callback changes the result the\n"
        "instant someone enables profiling."
    ),
    "R102": (
        "Arithmetic mixing unrelated dimensions (node ids vs thread ids,\n"
        "samples vs bytes) is meaningless even when the integers happen\n"
        "to line up; the units pass tracks dimensions through the call\n"
        "graph and flags the mix site."
    ),
    "R103": (
        "Page/byte-family mixes (bytes vs 4KB granules vs 2MB chunks)\n"
        "need an explicit x512 / xPAGE_4K conversion; the finding names\n"
        "the factor that makes the expression dimensionally sound."
    ),
    "R104": (
        "Random or wall-clock sinks reachable from a sim entry point\n"
        "break run-to-run determinism; derive generators from rng_for\n"
        "and simulated time from the engine."
    ),
    "R105": (
        "Code reachable from a thread-backend entry point writes\n"
        "process-shared mutable state (module/class-level containers,\n"
        "published instances) without holding any lock: a data race.\n"
        "Hold the owning lock around the write, or sanction the object\n"
        "or function via _CONCURRENCY_SAFE if it is immutable after\n"
        "publish."
    ),
    "R106": (
        "A shared object is written under different locks at different\n"
        "sites, so no single lock serialises its writers (the Eraser\n"
        "lockset discipline: the intersection of guarding locksets must\n"
        "stay non-empty). Pick one lock per object."
    ),
    "R107": (
        "A reference into locked shared state is returned to callers\n"
        "who no longer hold the lock; later mutation corrupts the\n"
        "caller's view. Return a copy or a read-only view, or sanction\n"
        "the documented identity-preserving contract."
    ),
    "R108": (
        "Lock-order inversions deadlock under contention, and blocking\n"
        "calls (I/O, subprocess, sleep) made while holding a lock stall\n"
        "every other shard on the critical section. Keep a single\n"
        "global acquisition order and move I/O outside locks."
    ),
    "R109": (
        "Every concrete Decision subclass needs an entry in the\n"
        "executor's HANDLERS table (and every _apply_* handler must be\n"
        "reachable through it): a decision without a handler is a\n"
        "runtime SimulationError waiting for the first policy that\n"
        "yields it."
    ),
    "R110": (
        "Policies are pure deciders: nothing reachable from decide()\n"
        "may write AddressSpace / allocator / tracker state through the\n"
        "sim argument. The callgraph write-effect fixpoint proves this\n"
        "through any depth of calls; mutations belong in Decision\n"
        "handlers, where conflict claims and accounting see them."
    ),
    "R111": (
        "Decider generators speak a strict protocol: yield Decision\n"
        "objects only, never return a value run_interval would drop,\n"
        "and bind the Outcome before accounting budgets — a discarded\n"
        "Outcome means the budget counts work that may never have\n"
        "happened."
    ),
    "R112": (
        "Each Decision declares the PolicyActionSummary counters its\n"
        "handler must touch; handler write effects are matched against\n"
        "the declaration both ways, and every conserved field the\n"
        "invariant checker reconciles must be declared by some\n"
        "decision — unaccounted work breaks conservation at runtime."
    ),
    "R113": (
        "Each Decision declares its conflict domain (page / thp / pt /\n"
        "none); the literal target kinds in targets() must agree, and\n"
        "the executor's CONFLICT_DOMAINS must equal exactly the set of\n"
        "declared non-none domains — otherwise first-member-wins\n"
        "arbitration has silent gaps."
    ),
}


def explain_rule(rule_id: str, project: Optional[Project] = None) -> Optional[str]:
    """Rationale + (for R105-R108) the inferred concurrency model."""
    rationale = RULE_RATIONALE.get(rule_id)
    if rationale is None:
        return None
    lines = [f"{rule_id}: {rationale}"]
    if project is not None and rule_id in ("R105", "R106", "R107", "R108"):
        from repro.analysis.concurrency import concurrency_model

        lines.append("")
        lines.append(concurrency_model(project).describe())
    if project is not None and rule_id in (
        "R109",
        "R110",
        "R111",
        "R112",
        "R113",
    ):
        from repro.analysis.decisionflow import decision_flow_model

        lines.append("")
        lines.append(decision_flow_model(project).describe())
    return "\n".join(lines)


#: Every deep rule, in id order.
ALL_DEEP_RULES: Tuple[type, ...] = (
    ResultNeutralPurity,
    UnitMismatch,
    MissingConversion,
    ReachableNondeterminism,
    UnguardedSharedWrite,
    InconsistentLocking,
    LockedStateEscape,
    LockDiscipline,
    HandlerExhaustiveness,
    DeciderPurity,
    GeneratorProtocol,
    AccountingCompleteness,
    ConflictDomains,
)


def default_deep_rules() -> List[DeepRule]:
    """Fresh instances of every deep rule."""
    return [rule() for rule in ALL_DEEP_RULES]


def deep_lint_project(
    project: Project, rules: Optional[Sequence[DeepRule]] = None
) -> List[Finding]:
    """Run the deep rules over an already-built project."""
    if rules is None:
        rules = default_deep_rules()
    project.analyze()
    by_path: Dict[str, FileContext] = {
        ctx.path: ctx for ctx in project.contexts.values()
    }
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(project):
            ctx = by_path.get(finding.path)
            if ctx is not None and ctx.is_suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def deep_lint_paths(
    paths: Sequence[pathlib.Path],
    rules: Optional[Sequence[DeepRule]] = None,
) -> List[Finding]:
    """Build a project from paths and run the deep rules over it."""
    project = Project.from_paths(paths)
    return deep_lint_project(project, rules)


def deep_lint_sources(
    sources: Dict[str, str],
    rules: Optional[Sequence[DeepRule]] = None,
) -> List[Finding]:
    """Deep-lint an in-memory ``{path: source}`` tree (tests)."""
    project = Project.from_sources(sources)
    return deep_lint_project(project, rules)
