"""Epoch-level runtime invariant checking for the simulation engine.

The simulation is only trustworthy if every epoch leaves the system in
a physically consistent state: page migration and huge-page
splitting/promotion must conserve frames, hardware counters must be
sane and monotonic, and allocator accounting must balance.  When
enabled (``REPRO_CHECK=1`` in the environment, or
``SimConfig.check_invariants``), :class:`InvariantChecker` runs after
every epoch and raises a structured :class:`InvariantViolation` —
carrying the workload/machine/policy/epoch context — the moment any of
these properties breaks, instead of letting corruption surface as a
mysterious golden-file diff three experiments later.

All checks are vectorised (numpy reductions over the address-space
arrays), so the cost is a small multiple of one epoch's translation
work; ``BENCH_runner.json`` tracks the measured overhead.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.vm.layout import GRANULES_PER_2M, PAGE_4K, PageSize, SHIFT_1G, SHIFT_2M

#: Environment variable enabling (``1``) or force-disabling (``0``) the
#: checker regardless of :attr:`SimConfig.check_invariants`.
CHECK_ENV = "REPRO_CHECK"

#: Static-analysis registry (rule R101): the checker observes, it never
#: repairs — a checker that mutated state would invalidate the very
#: runs it certifies.  The deep linter also protects this module by
#: default, so deleting this declaration does not disable the check.
_RESULT_NEUTRAL = ("analysis.invariants",)

_TRUE_VALUES = frozenset({"1", "true", "on", "yes"})
_FALSE_VALUES = frozenset({"0", "false", "off", "no"})

#: Cumulative counter totals that must never decrease across epochs.
_MONOTONIC_COUNTERS = (
    "instructions",
    "mem_accesses",
    "l2_data_misses",
    "walk_l2_misses",
    "tlb_misses",
    "page_faults_4k",
    "page_faults_2m",
    "page_faults_1g",
)

#: Action-summary fields reconciled between the executor's lifetime
#: totals and the engine's per-interval action log.  Exact equality is
#: safe, floats included: ``ActionExecutor.run_interval`` merges each
#: interval summary into the totals in log order, so both sides
#: accumulate in the identical sequence.
_ACTION_FIELDS = (
    "migrated_4k",
    "migrated_2m",
    "bytes_migrated",
    "splits_2m",
    "splits_1g",
    "collapses_2m",
    "replicated_pages",
    "bytes_replicated",
    "pages_reclaimed",
    "bytes_reclaimed",
    "compute_s",
)


class InvariantViolation(SimulationError):
    """A runtime invariant failed, with the run context attached."""

    def __init__(
        self,
        detail: str,
        *,
        workload: Optional[str] = None,
        machine: Optional[str] = None,
        policy: Optional[str] = None,
        epoch: Optional[int] = None,
    ) -> None:
        self.detail = detail
        self.workload = workload
        self.machine = machine
        self.policy = policy
        self.epoch = epoch
        context = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("workload", workload),
                ("machine", machine),
                ("policy", policy),
                ("epoch", epoch),
            )
            if value is not None
        )
        super().__init__(f"{detail} [{context}]" if context else detail)


def invariants_enabled(config: Optional[object] = None) -> bool:
    """Whether epoch checking is on for a run.

    ``REPRO_CHECK`` wins in both directions when set; otherwise the
    (optional) config's ``check_invariants`` flag decides.
    """
    env = os.environ.get(CHECK_ENV, "").strip().lower()
    if env in _TRUE_VALUES:
        return True
    if env in _FALSE_VALUES:
        return False
    return bool(getattr(config, "check_invariants", False))


# ----------------------------------------------------------------------
# Stateless checks (usable directly from tests)
# ----------------------------------------------------------------------
def check_address_space(asp) -> None:
    """Mapping/bookkeeping consistency of one :class:`AddressSpace`.

    Vectorised equivalent of ``AddressSpace.check_invariants`` (which
    loops per chunk), fast enough to run every epoch:

    * no granule is covered by two backing sizes at once,
    * ``mapped_count_2m`` matches the 4KB map exactly (so a 2MB split
      produced exactly 512 children and a collapse consumed them),
    * every live huge/giga page has a home node,
    * replication flags and the replica byte counter are in sync.
    """
    mapped4 = np.flatnonzero(asp.node4k >= 0)
    huge_chunks = np.flatnonzero(asp.huge)
    giga_chunks = np.flatnonzero(asp.giga)

    if mapped4.size and np.any(asp.huge[mapped4 >> SHIFT_2M]):
        raise InvariantViolation("4KB mapping inside a 2MB huge page")
    if mapped4.size and np.any(asp.giga[mapped4 >> SHIFT_1G]):
        raise InvariantViolation("4KB mapping inside a 1GB page")
    if huge_chunks.size and np.any(
        asp.giga[huge_chunks >> (SHIFT_1G - SHIFT_2M)]
    ):
        raise InvariantViolation("2MB huge page inside a 1GB page")

    counted = np.zeros(asp.n_chunks_2m, dtype=np.int64)
    if mapped4.size:
        counted += np.bincount(
            mapped4 >> SHIFT_2M, minlength=asp.n_chunks_2m
        )
    if not np.array_equal(counted, asp.mapped_count_2m.astype(np.int64)):
        bad = int(np.flatnonzero(counted != asp.mapped_count_2m)[0])
        raise InvariantViolation(
            f"mapped_count_2m out of sync at chunk {bad}: "
            f"counted {int(counted[bad])}, "
            f"recorded {int(asp.mapped_count_2m[bad])} "
            f"(a 2MB split must yield exactly {GRANULES_PER_2M} children)"
        )
    if np.any(asp.mapped_count_2m < 0) or np.any(
        asp.mapped_count_2m > GRANULES_PER_2M
    ):
        raise InvariantViolation("mapped_count_2m outside [0, 512]")

    if huge_chunks.size and np.any(asp.node2m[huge_chunks] < 0):
        raise InvariantViolation("live 2MB page without a home node")
    if giga_chunks.size and np.any(asp.node1g[giga_chunks] < 0):
        raise InvariantViolation("live 1GB page without a home node")

    if np.any(asp.replicated_4k & (asp.node4k < 0)):
        raise InvariantViolation("replicated granule without a mapping")
    if np.any(asp.replicated_2m & ~asp.huge):
        raise InvariantViolation("replicated 2MB chunk is not huge-backed")
    expected_replicas = (
        int(np.count_nonzero(asp.replicated_4k)) * (asp.n_nodes - 1) * PAGE_4K
        + int(np.count_nonzero(asp.replicated_2m))
        * (asp.n_nodes - 1)
        * int(PageSize.SIZE_2M)
    )
    if expected_replicas != asp.replica_bytes:
        raise InvariantViolation(
            f"replica byte counter out of sync: expected "
            f"{expected_replicas}, recorded {asp.replica_bytes}"
        )


def check_physical_memory(phys) -> None:
    """Frame-allocator accounting: free + used == total on every node."""
    for node in phys.nodes:
        node.buddy.check_accounting()
        total = node.buddy.total_frames * PAGE_4K
        if node.used_bytes + node.free_bytes != total:
            raise InvariantViolation(
                f"node {node.node_id}: used ({node.used_bytes}) + free "
                f"({node.free_bytes}) != total ({total})"
            )
        if node.pool_stats().free_frames_in_pool < 0:
            raise InvariantViolation(
                f"node {node.node_id}: negative small-frame pool"
            )


def _expected_bytes_per_node(asp) -> np.ndarray:
    """Allocator bytes one address space should occupy on each node:
    home mappings plus the replica copies it holds elsewhere."""
    expected = asp.bytes_per_node().astype(np.int64)

    n_rep4 = int(np.count_nonzero(asp.replicated_4k))
    if n_rep4:
        homes = asp.node4k[asp.replicated_4k].astype(np.int64)
        home_counts = np.bincount(homes, minlength=asp.n_nodes)
        expected += (n_rep4 - home_counts) * PAGE_4K
    for backing_id in sorted(asp._replica_blocks):
        for node in sorted(asp._replica_blocks[backing_id]):
            expected[node] += int(PageSize.SIZE_2M)
    return expected


def check_page_conservation(asp) -> None:
    """Pages are neither created nor lost: allocator usage on every
    node equals the bytes mapped there plus replica copies held there.

    A migration or split that leaked/double-freed frames breaks this
    equality on the affected nodes immediately.
    """
    expected = _expected_bytes_per_node(asp)

    for node in asp.phys.nodes:
        want = int(expected[node.node_id]) + node.test_pinned_bytes
        if node.used_bytes != want:
            raise InvariantViolation(
                f"page conservation broken on node {node.node_id}: "
                f"allocator reports {node.used_bytes} bytes used, mappings "
                f"account for {want}"
            )


def check_host_conservation(phys, address_spaces) -> None:
    """Cross-tenant frame conservation on a shared allocator.

    Summing every tenant's expected per-node footprint and matching the
    allocator's used-bytes accounting exactly proves, at the accounting
    level, that no frame is owned by two tenants (double ownership would
    make the sum exceed usage) and that freed tenants returned every
    page (a leak would make usage exceed the sum).
    """
    n_nodes = len(phys.nodes)
    expected = np.zeros(n_nodes, dtype=np.int64)
    for asp in address_spaces:
        if asp.phys is not phys:
            raise InvariantViolation(
                f"address space '{asp.label}' is not backed by the "
                "host's allocator"
            )
        expected += _expected_bytes_per_node(asp)
    for node in phys.nodes:
        want = int(expected[node.node_id]) + node.test_pinned_bytes
        if node.used_bytes != want:
            raise InvariantViolation(
                f"cross-tenant page conservation broken on node "
                f"{node.node_id}: allocator reports {node.used_bytes} "
                f"bytes used, tenant mappings account for {want}"
            )


def check_tenant_released(asp) -> None:
    """A released / OOM-killed tenant left nothing behind."""
    if asp.mapped_bytes() != 0:
        raise InvariantViolation(
            f"released tenant '{asp.label}' still maps "
            f"{asp.mapped_bytes()} bytes"
        )
    if asp.replica_bytes != 0:
        raise InvariantViolation(
            f"released tenant '{asp.label}' still holds "
            f"{asp.replica_bytes} replica bytes"
        )


def check_epoch_counters(counters, n_nodes: int) -> None:
    """One epoch's counters: finite, non-negative, with LAR in [0, 1]."""
    if counters.traffic.shape != (n_nodes, n_nodes):
        raise InvariantViolation(
            f"traffic matrix shape {counters.traffic.shape} != "
            f"({n_nodes}, {n_nodes})"
        )
    if not np.all(np.isfinite(counters.traffic)):
        raise InvariantViolation("non-finite traffic entry")
    if np.any(counters.traffic < 0):
        raise InvariantViolation("negative traffic entry")
    total = float(counters.traffic.sum())
    local = float(np.trace(counters.traffic))
    if total > 0:
        lar = local / total
        if not 0.0 <= lar <= 1.0:
            raise InvariantViolation(f"LAR {lar} outside [0, 1]")
    for name in _MONOTONIC_COUNTERS + (
        "duration_s",
        "daemon_time_s",
        "time_cpu_s",
        "time_dram_s",
        "time_walk_s",
        "time_fault_s",
        "time_ibs_s",
    ):
        value = float(getattr(counters, name))
        if not np.isfinite(value):
            raise InvariantViolation(f"counter {name} is not finite")
        if value < 0:
            raise InvariantViolation(f"counter {name} is negative ({value})")


# ----------------------------------------------------------------------
# The per-run checker
# ----------------------------------------------------------------------
class InvariantChecker:
    """Runs every invariant after each epoch of one simulation.

    Holds the cross-epoch state needed for monotonicity checks
    (cumulative counters, simulated time, mapped footprint — none of
    which may ever decrease).
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self._prev_totals: Dict[str, float] = {}
        self._prev_sim_time = 0.0
        self._prev_mapped_bytes = 0
        self._epochs_checked = 0

    def _violation(self, exc: InvariantViolation) -> InvariantViolation:
        """Re-raise a stateless check's violation with run context."""
        sim = self.sim
        return InvariantViolation(
            exc.detail,
            workload=sim.instance.name,
            machine=sim.machine.name,
            policy=sim.policy.name,
            epoch=sim.epoch,
        )

    def after_epoch(self, epoch: int) -> None:
        """Validate the complete simulation state after one epoch."""
        sim = self.sim
        try:
            check_address_space(sim.asp)
            if getattr(sim, "owns_phys", True):
                # Shared-allocator tenants see other tenants' frames in
                # the node accounting; the host checker runs the
                # cross-tenant version of these two instead.
                check_physical_memory(sim.phys)
                check_page_conservation(sim.asp)
            if sim.bank.epochs:
                check_epoch_counters(sim.bank.epochs[-1], sim.machine.n_nodes)
        except InvariantViolation as exc:
            raise self._violation(exc) from None

        latest = sim.bank.epochs[-1] if sim.bank.epochs else None
        if latest is not None and latest.epoch != epoch:
            raise self._violation(
                InvariantViolation(
                    f"latest counters are for epoch {latest.epoch}, "
                    f"expected {epoch}"
                )
            )
        if sim.sim_time_s < self._prev_sim_time:
            raise self._violation(
                InvariantViolation(
                    f"simulated time went backwards: {sim.sim_time_s} < "
                    f"{self._prev_sim_time}"
                )
            )
        self._prev_sim_time = sim.sim_time_s

        # Footprint only shrinks through accounted reclaim: mapped plus
        # the cumulative reclaimed/released byte counter is monotonic,
        # so an unaccounted unmap still surfaces as lost pages.
        mapped = sim.asp.mapped_bytes() + getattr(
            sim.asp, "reclaimed_bytes", 0
        )
        if mapped < self._prev_mapped_bytes:
            raise self._violation(
                InvariantViolation(
                    f"mapped + reclaimed footprint shrank: {mapped} < "
                    f"{self._prev_mapped_bytes} (nothing unmaps without "
                    "reclaim accounting, so pages were lost)"
                )
            )
        self._prev_mapped_bytes = mapped

        if latest is not None:
            for name in _MONOTONIC_COUNTERS:
                cumulative = self._prev_totals.get(name, 0.0) + float(
                    getattr(latest, name)
                )
                if cumulative < self._prev_totals.get(name, 0.0):
                    raise self._violation(
                        InvariantViolation(
                            f"cumulative counter {name} decreased"
                        )
                    )
                self._prev_totals[name] = cumulative
        self._check_action_conservation()
        self._epochs_checked += 1

    def _check_action_conservation(self) -> None:
        """Decisions in == actions out, between executor and action log.

        Every decision the executor saw was either applied or skipped,
        and the per-interval summaries the engine logged (and priced)
        sum to exactly the executor's lifetime totals — i.e. no policy
        action bypassed the executor and no accounted work lacks a
        logged decision path.
        """
        executor = getattr(self.sim, "executor", None)
        if executor is None:
            return
        seen = executor.decisions_seen
        applied = executor.decisions_applied
        skipped = executor.decisions_skipped
        if seen != applied + skipped:
            raise self._violation(
                InvariantViolation(
                    f"decision conservation broken: {seen} seen != "
                    f"{applied} applied + {skipped} skipped"
                )
            )
        for name in _ACTION_FIELDS:
            logged = sum(
                getattr(summary, name) for _, summary in self.sim.action_log
            )
            total = getattr(executor.totals, name)
            if logged != total:
                raise self._violation(
                    InvariantViolation(
                        f"action conservation broken for {name}: action log "
                        f"sums to {logged}, executor totals say {total}"
                    )
                )


class HostInvariantChecker:
    """Cross-tenant invariants for a shared-allocator host.

    Runs after every host epoch, complementing the per-tenant
    :class:`InvariantChecker` (which each tenant still runs on its own
    address space): the allocator must balance globally, the live
    tenants' footprints must tile the used frames exactly (no frame
    owned by two tenants), and departed tenants must have returned
    every page.
    """

    def __init__(self, host) -> None:
        self.host = host
        self._epochs_checked = 0

    def after_epoch(self, epoch: int) -> None:
        """Validate the shared allocator against all tenant mappings."""
        host = self.host
        try:
            check_physical_memory(host.phys)
            check_host_conservation(
                host.phys, [tenant.asp for tenant in host.tenants]
            )
            for tenant in host.tenants:
                if host.status[tenant.tenant_id] in (
                    "released",
                    "oom-killed",
                ):
                    check_tenant_released(tenant.asp)
        except InvariantViolation as exc:
            raise InvariantViolation(
                exc.detail,
                machine=host.machine.name,
                epoch=epoch,
            ) from None
        self._epochs_checked += 1
