"""Rule engine for the repro determinism linter.

The linter is a thin harness over :mod:`ast`: each rule receives one
parsed file (a :class:`FileContext`) and yields :class:`Finding`
objects.  Rules live in :mod:`repro.analysis.rules`; this module owns
file discovery, suppression comments, and output formatting, and is
what both the ``repro lint`` CLI and the test suite drive.

Suppression: a line ending in ``# lint: ignore`` silences every rule on
that line; ``# lint: ignore[R003]`` (comma-separated ids allowed)
silences only the named rules.

Path scoping: some rules only make sense on simulation state and model
code.  A file is "sim-path" when a component *below the package or
fixture root* is one of :data:`SIM_PATH_PARTS` — which matches both the
real tree (``src/repro/sim/engine.py``) and test fixtures laid out the
same way, without being fooled by a checkout that happens to live under
a directory named ``core`` or ``sim`` (see :data:`SIM_PATH_ROOTS`).
"""

from __future__ import annotations

import ast
import json
import pathlib
import re
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Path components marking deterministic-simulation code, where the
#: ordering/float rules (R003, R005) and wall-clock bans (R002) apply.
SIM_PATH_PARTS = frozenset({"sim", "core", "vm", "hardware", "workloads"})

#: Components that anchor sim-path matching: only components *after*
#: the last of these count.  ``repro`` is the package root, ``fixtures``
#: the test-fixture root.  Absolute paths containing neither are never
#: sim-path (they point outside any known tree); relative paths without
#: an anchor are matched whole, so ``lint_source(src, "sim/snippet.py")``
#: still lints as simulation code.
SIM_PATH_ROOTS = frozenset({"repro", "fixtures"})

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One linter hit: a rule violation at a source location.

    The concurrency rules (R105-R108) additionally carry the inferred
    entry-point call ``chain`` and the effective ``lockset`` at the
    site; both stay empty for every other rule and are only serialised
    when present, so the original JSON schema is unchanged for the
    rules that predate them.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    chain: Tuple[str, ...] = ()
    lockset: Tuple[str, ...] = ()

    def sort_key(self) -> Tuple[str, int, str, int, str]:
        """Canonical output order: path, line, rule id, col, message.

        Every façade (``lint_source``, ``lint_paths``, the deep pass and
        the CLI's merged output) sorts with this one key, so baselines
        and CI logs are stable across rule families and rule-execution
        order.
        """
        return (self.path, self.line, self.rule, self.col, self.message)

    def format_text(self) -> str:
        """``path:line:col: RULE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form for ``--format json`` and CI."""
        payload: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.chain:
            payload["chain"] = list(self.chain)
        if self.lockset:
            payload["lockset"] = list(self.lockset)
        return payload


class FileContext:
    """One parsed source file plus the lookup helpers rules need."""

    def __init__(self, source: str, path: str) -> None:
        self.source = source
        self.path = path
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self._suppressed: Dict[int, Optional[Set[str]]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _IGNORE_RE.search(line)
            if not match:
                continue
            if match.group(1) is None:
                self._suppressed[lineno] = None  # every rule
            else:
                ids = {part.strip() for part in match.group(1).split(",")}
                self._suppressed[lineno] = {i for i in ids if i}

    @property
    def is_sim_path(self) -> bool:
        """Whether the file lives under a simulation-state directory.

        Matching is scoped to path components below the last
        :data:`SIM_PATH_ROOTS` anchor so a checkout under a directory
        named ``core`` or ``sim`` does not mark every file sim-path.
        """
        pure = pathlib.PurePosixPath(self.path.replace("\\", "/"))
        parts = pure.parts
        anchor = max(
            (i for i, part in enumerate(parts) if part in SIM_PATH_ROOTS),
            default=None,
        )
        if anchor is not None:
            parts = parts[anchor + 1:]
        elif pure.is_absolute():
            return False
        return any(part in SIM_PATH_PARTS for part in parts)

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        """Whether a ``lint: ignore`` comment covers this line and rule."""
        if lineno not in self._suppressed:
            return False
        rules = self._suppressed[lineno]
        return rules is None or rule_id in rules

    def finding(
        self,
        rule_id: str,
        node: ast.AST,
        message: str,
        chain: Tuple[str, ...] = (),
        lockset: Tuple[str, ...] = (),
    ) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(
            rule=rule_id,
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            chain=chain,
            lockset=lockset,
        )


class Rule:
    """Base class for linter rules.

    Subclasses set :attr:`rule_id`/:attr:`title`, optionally restrict
    themselves to sim paths via :attr:`sim_paths_only`, and implement
    :meth:`check`.
    """

    rule_id: str = ""
    title: str = ""
    sim_paths_only: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether the rule should run on this file at all."""
        return ctx.is_sim_path if self.sim_paths_only else True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        """Apply the rule, honouring scoping and suppression comments."""
        if not self.applies_to(ctx):
            return
        for finding in self.check(ctx):
            if not ctx.is_suppressed(finding.line, finding.rule):
                yield finding


def iter_python_files(paths: Iterable[pathlib.Path]) -> Iterator[pathlib.Path]:
    """Expand files/directories into the ``.py`` files beneath them."""
    for path in paths:
        path = pathlib.Path(path)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string (the unit the fixture tests drive).

    ``path`` participates in rule scoping: pass e.g. ``sim/snippet.py``
    to lint a snippet as simulation code.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    ctx = FileContext(source, path)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.run(ctx))
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: Sequence[pathlib.Path],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every Python file under the given paths."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding("E000", str(file_path), 0, 0, f"unreadable file: {exc}")
            )
            continue
        try:
            findings.extend(lint_source(source, str(file_path), rules))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    "E001",
                    str(file_path),
                    exc.lineno or 0,
                    (exc.offset or 0),
                    f"syntax error: {exc.msg}",
                )
            )
    findings.sort(key=Finding.sort_key)
    return findings


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render findings as ``text``, ``json`` or ``sarif``.

    The ``json`` payload shape is a stable contract (CI and editor
    integrations parse it); ``sarif`` emits a SARIF 2.1.0 log for
    GitHub code scanning (:mod:`repro.analysis.sarif`).
    """
    if fmt == "json":
        payload = {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
        }
        return json.dumps(payload, indent=2)
    if fmt == "sarif":
        from repro.analysis.sarif import format_sarif

        return format_sarif(findings)
    if fmt != "text":
        raise ValueError(f"unknown format {fmt!r}")
    lines = [f.format_text() for f in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)
