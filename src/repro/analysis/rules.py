"""Repo-specific lint rules (R001-R005).

Each rule targets a bug class this codebase has actually hit or is
structurally exposed to:

* **R001** — a ``cache_key``/``fingerprint`` method on a dataclass must
  cover every field (PR 1 shipped a memo key that silently dropped four
  ``SimConfig`` fields, colliding results across configs).
* **R002** — randomness must flow through ``repro._util.rng_for`` and
  simulation code must never read wall-clock time: both break the
  bit-identical replay contract.
* **R003** — iterating a dict/set while accumulating numbers makes the
  result depend on hash/insertion order; float addition is not
  associative, so sums must run in a sorted, explicit order.
* **R004** — ``except Exception``/bare ``except`` that neither
  re-raises nor logs hides exactly the corruption the invariant
  checker exists to surface.
* **R005** — mutable default arguments alias state across calls, and
  ``==`` against float literals is a determinism trap across numpy
  versions; both are banned in simulation code.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.linter import FileContext, Finding, Rule

#: Method-name fragments that mark a cache-identity method for R001.
KEY_METHOD_FRAGMENTS = ("cache_key", "fingerprint")

#: Class attribute naming fields deliberately excluded from cache keys.
CACHE_KEY_EXCLUDE_ATTR = "_CACHE_KEY_EXCLUDE"

_WALL_CLOCK_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "clock",
    }
)
_WALL_CLOCK_DATE_FUNCS = frozenset({"now", "utcnow", "today"})
_LOGGING_ATTRS = frozenset(
    {
        "debug",
        "info",
        "warning",
        "warn",
        "error",
        "exception",
        "critical",
        "log",
        "print_exc",
    }
)


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted-name string for ``a.b.c`` style expressions, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _iter_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield every node with the stack of enclosing function names."""
    stack: List[str] = []

    def visit(node: ast.AST) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
        yield node, tuple(stack)
        is_func = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if is_func:
            stack.append(node.name)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        if is_func:
            stack.pop()

    yield from visit(tree)


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        chain = _attr_chain(target)
        if chain and chain.split(".")[-1] == "dataclass":
            return True
    return False


def _string_elements(node: ast.AST) -> Set[str]:
    """String constants inside a set/tuple/list literal or wrapper call."""
    if isinstance(node, ast.Call):
        chain = _attr_chain(node.func)
        if chain and chain.split(".")[-1] in {"set", "frozenset", "tuple", "list"}:
            out: Set[str] = set()
            for arg in node.args:
                out |= _string_elements(arg)
            return out
        return set()
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return {
            elt.value
            for elt in node.elts
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        }
    return set()


class CacheKeyCompleteness(Rule):
    """R001: cache-key methods must reference every dataclass field."""

    rule_id = "R001"
    title = "cache-key completeness"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        fields: List[str] = []
        excluded: Set[str] = set()
        methods: List[ast.FunctionDef] = []
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                name = stmt.target.id
                annotation = ast.dump(stmt.annotation)
                if name == CACHE_KEY_EXCLUDE_ATTR and stmt.value is not None:
                    excluded |= _string_elements(stmt.value)
                elif "ClassVar" not in annotation and not name.startswith("_"):
                    fields.append(name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == CACHE_KEY_EXCLUDE_ATTR
                    ):
                        excluded |= _string_elements(stmt.value)
            elif isinstance(stmt, ast.FunctionDef) and any(
                frag in stmt.name for frag in KEY_METHOD_FRAGMENTS
            ):
                methods.append(stmt)
        if not fields or not methods:
            return
        for method in methods:
            referenced: Set[str] = set()
            generic = False
            for sub in ast.walk(method):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    referenced.add(sub.attr)
                elif isinstance(sub, ast.Call):
                    chain = _attr_chain(sub.func)
                    if chain and chain.split(".")[-1] in {
                        "fields",
                        "asdict",
                        "astuple",
                    }:
                        generic = True
            if generic:
                continue
            missing = sorted(set(fields) - referenced - excluded)
            if missing:
                yield ctx.finding(
                    self.rule_id,
                    method,
                    f"{cls.name}.{method.name} omits field(s) "
                    f"{', '.join(missing)}; reference them or add them to "
                    f"{CACHE_KEY_EXCLUDE_ATTR}",
                )


#: Functions allowed to construct ``np.random`` machinery directly: the
#: deterministic derivation site (``rng_for``) and the state-replay
#: site the stream banks use to resume a captured generator
#: (``rng_from_state``).  Both live in ``repro._util``; R002 skips call
#: sites inside them and the deep analyzer's R104 shares this set, so
#: the two layers always agree on what "sanctioned" means.
SANCTIONED_RNG_FUNCS = frozenset({"rng_for", "rng_from_state"})


class UnseededRandomness(Rule):
    """R002: randomness outside sanctioned sites; wall-clock in sim code."""

    rule_id = "R002"
    title = "unseeded randomness / wall-clock time"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        has_random_import = any(
            isinstance(node, ast.Import)
            and any(alias.name == "random" for alias in node.names)
            for node in ast.walk(ctx.tree)
        )
        for node, func_stack in _iter_functions(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "import from the stdlib random module; derive generators "
                    "via repro._util.rng_for instead",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            if SANCTIONED_RNG_FUNCS.intersection(func_stack):
                continue  # inside a sanctioned construction site
            if chain.startswith(("np.random.", "numpy.random.")):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"direct call to {chain}; all generators must come from "
                    "repro._util.rng_for so runs replay bit-identically",
                )
            elif has_random_import and chain.startswith("random."):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"call to stdlib {chain}; use repro._util.rng_for",
                )
            elif ctx.is_sim_path:
                yield from self._check_wall_clock(ctx, node, chain)

    def _check_wall_clock(
        self, ctx: FileContext, node: ast.Call, chain: str
    ) -> Iterator[Finding]:
        parts = chain.split(".")
        if parts[0] == "time" and parts[-1] in _WALL_CLOCK_TIME_FUNCS:
            yield ctx.finding(
                self.rule_id,
                node,
                f"wall-clock read {chain} in simulation code; simulated "
                "time must come from the engine",
            )
        elif parts[-1] in _WALL_CLOCK_DATE_FUNCS and any(
            p in {"datetime", "date", "Date"} for p in parts[:-1]
        ):
            yield ctx.finding(
                self.rule_id,
                node,
                f"wall-clock read {chain} in simulation code; simulated "
                "time must come from the engine",
            )


def _is_unordered_iterable(
    node: ast.AST, set_bound_names: Set[str]
) -> bool:
    """Whether an iterable expression has hash/insertion-dependent order."""
    if isinstance(node, (ast.Set, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {
            "set",
            "frozenset",
            "dict",
        }:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "values",
            "items",
            "keys",
        }:
            return True
    if isinstance(node, ast.Name) and node.id in set_bound_names:
        return True
    return False


class OrderDependentAccumulation(Rule):
    """R003: dict/set iteration feeding numeric accumulation in sim code."""

    rule_id = "R003"
    title = "order-dependent accumulation"
    sim_paths_only = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        set_names = self._set_bound_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_unordered_iterable(
                node.iter, set_names
            ):
                if any(
                    isinstance(sub, ast.AugAssign)
                    for stmt in node.body
                    for sub in ast.walk(stmt)
                ):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "accumulation over dict/set iteration depends on "
                        "hash/insertion order; iterate sorted(...) instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_sum(ctx, node, set_names)

    def _check_sum(
        self, ctx: FileContext, node: ast.Call, set_names: Set[str]
    ) -> Iterator[Finding]:
        chain = _attr_chain(node.func)
        is_sum = isinstance(node.func, ast.Name) and node.func.id == "sum"
        is_fsum = chain is not None and chain.split(".")[-1] == "fsum"
        if not (is_sum or is_fsum) or not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            if arg.generators and _is_unordered_iterable(
                arg.generators[0].iter, set_names
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "sum over dict/set iteration depends on hash/insertion "
                    "order; iterate sorted(...) instead",
                )

    @staticmethod
    def _set_bound_names(tree: ast.AST) -> Set[str]:
        """Names assigned from set constructors/literals anywhere in file."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            value = None
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if (
                target is not None
                and isinstance(target, ast.Name)
                and _is_unordered_iterable(value, set())
            ):
                names.add(target.id)
        return names


class SwallowedException(Rule):
    """R004: broad excepts must re-raise or log what they caught."""

    rule_id = "R004"
    title = "swallowed broad exception"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles(node):
                continue
            label = "bare except" if node.type is None else "except Exception"
            yield ctx.finding(
                self.rule_id,
                node,
                f"{label} neither re-raises nor logs; narrow the exception "
                "types or record what was swallowed",
            )

    @staticmethod
    def _is_broad(type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(
                SwallowedException._is_broad(elt) for elt in type_node.elts
            )
        chain = _attr_chain(type_node)
        return chain is not None and chain.split(".")[-1] in {
            "Exception",
            "BaseException",
        }

    @staticmethod
    def _handles(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Raise):
                    return True
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _LOGGING_ATTRS
                ):
                    return True
        return False


class SimHygiene(Rule):
    """R005: mutable defaults and float ``==`` in simulation code."""

    rule_id = "R005"
    title = "mutable default / float equality"
    sim_paths_only = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(ctx, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_float_eq(ctx, node)

    def _check_defaults(self, ctx: FileContext, func) -> Iterator[Finding]:
        defaults = list(func.args.defaults) + [
            d for d in func.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call) and isinstance(
                default.func, ast.Name
            ):
                mutable = mutable or default.func.id in {"list", "dict", "set"}
            if mutable:
                yield ctx.finding(
                    self.rule_id,
                    default,
                    f"mutable default argument in {func.name}(); the object "
                    "is shared across calls — default to None or use a "
                    "dataclass field factory",
                )

    def _check_float_eq(
        self, ctx: FileContext, node: ast.Compare
    ) -> Iterator[Finding]:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left] + list(node.comparators)
        if any(
            isinstance(o, ast.Constant) and isinstance(o.value, float)
            for o in operands
        ):
            yield ctx.finding(
                self.rule_id,
                node,
                "exact equality against a float literal; use an ordered "
                "comparison or math.isclose/np.isclose",
            )


#: Every shipped rule, in id order.
ALL_RULES: Tuple[type, ...] = (
    CacheKeyCompleteness,
    UnseededRandomness,
    OrderDependentAccumulation,
    SwallowedException,
    SimHygiene,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every rule (rules are stateless but cheap)."""
    return [rule() for rule in ALL_RULES]


def rules_by_id(*ids: str) -> List[Rule]:
    """Instantiate a subset of rules by id (library use in tests)."""
    table: Dict[str, type] = {rule.rule_id: rule for rule in ALL_RULES}
    try:
        return [table[i]() for i in ids]
    except KeyError as exc:
        raise ValueError(f"unknown rule id {exc.args[0]!r}") from exc
