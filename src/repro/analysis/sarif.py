"""SARIF 2.1.0 output for lint findings (``repro lint --format sarif``).

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests to annotate findings inline on pull requests.  The
emitted log is one ``run`` of one ``tool``:

* ``tool.driver.rules`` carries every known rule id with its title, so
  viewers can group findings by rule without a side-channel.
* Each finding becomes one ``result`` with ``ruleId``, a text
  ``message`` and one ``physicalLocation``; the call ``chain`` and
  ``lockset`` of the whole-program rules ride along as result
  ``properties`` (SARIF's designated extension point), keeping the
  core schema untouched.

The ``--format json`` payload is a separate, stable contract (see
``Finding.to_dict``); SARIF is additive and may grow properties over
time without breaking it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.linter import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/paper-repro/large-pages-numa"


def _known_rules() -> Dict[str, str]:
    """rule id -> short title, for ``tool.driver.rules``."""
    from repro.analysis.deep import ALL_DEEP_RULES
    from repro.analysis.rules import default_rules

    rules: Dict[str, str] = {}
    for rule in default_rules():
        rules[rule.rule_id] = rule.title
    for rule_cls in ALL_DEEP_RULES:
        rules[rule_cls.rule_id] = rule_cls.title
    # Harness pseudo-rules for unreadable / unparsable files.
    rules.setdefault("E000", "unreadable file")
    rules.setdefault("E001", "syntax error")
    return rules


def _uri(path: str) -> str:
    """Forward-slash relative-style URI for a finding path."""
    return path.replace("\\", "/").lstrip("/")


def to_sarif(findings: Sequence[Finding]) -> Dict[str, object]:
    """Build the SARIF 2.1.0 log object for a list of findings."""
    known = _known_rules()
    used = sorted({f.rule for f in findings} | set(known))
    rules: List[Dict[str, object]] = []
    index: Dict[str, int] = {}
    for rule_id in used:
        index[rule_id] = len(rules)
        descriptor: Dict[str, object] = {"id": rule_id}
        title = known.get(rule_id)
        if title:
            descriptor["shortDescription"] = {"text": title}
        rules.append(descriptor)
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "ruleIndex": index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(finding.path)},
                        "region": {
                            # SARIF requires lines/columns >= 1; the
                            # harness uses 0 for whole-file findings.
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
        }
        properties: Dict[str, object] = {}
        if finding.chain:
            properties["chain"] = list(finding.chain)
        if finding.lockset:
            properties["lockset"] = list(finding.lockset)
        if properties:
            result["properties"] = properties
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(findings: Sequence[Finding]) -> str:
    """Serialised SARIF log (what ``--format sarif`` prints)."""
    return json.dumps(to_sarif(findings), indent=2)
