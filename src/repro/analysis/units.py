"""Units-of-measure inference over the project AST (rules R102/R103).

Quantities in this codebase are dimensioned — byte addresses, 4KB
granules, 2MB/1GB chunks, node ids, thread ids, IBS sample counts — and
two shipped bugs were unit confusions.  This pass infers a unit for
expressions from three sources, in priority order:

1. **Annotations**: ``Annotated[int, "bytes"]`` literals, or the
   aliases exported by :mod:`repro.units` (``Bytes``, ``Pages4K``, ...)
   on parameters, returns, variables and class attributes.
2. **Conversion constants**: multiplying/dividing/shifting by
   ``PAGE_4K``, ``GRANULES_PER_2M``, ``SHIFT_2M`` etc. converts between
   the page-size units and bytes.
3. **Naming conventions** (fallback): ``*_bytes`` is bytes,
   ``n_granules``/``*_frames`` is pages4k, ``*_node``/``node_id`` is a
   node id, ``tid``/``thread_id`` a thread id, ``n_samples`` a sample
   count.

Only expressions whose units are *both known and different* are
reported, so unannotated code stays silent.  Mismatches within the
page/byte family (pages4k vs pages2m vs bytes, ...) are *missing
conversions* (R103, the ×512 / ×``PAGE_4K`` class of bug); any other
pair (node vs tid, samples vs bytes, ...) is a plain unit mismatch
(R102).

Known limits: inference is intraprocedural plus a project-wide
signature table; values flowing through untyped containers, ``*args``
or numpy fancy indexing lose their unit; multiplying two dimensioned
quantities yields no unit (only conversion constants transform units).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.callgraph import Project, FunctionInfo

# ----------------------------------------------------------------------
# Vocabulary
# ----------------------------------------------------------------------
BYTES = "bytes"
PAGES_4K = "pages4k"
PAGES_2M = "pages2m"
PAGES_1G = "pages1g"
NODE = "node"
TID = "tid"
SAMPLES = "samples"

#: The page/byte family: mismatches inside it are missing conversions
#: (R103); mismatches with or between anything else are R102.
PAGE_FAMILY = frozenset({BYTES, PAGES_4K, PAGES_2M, PAGES_1G})

KNOWN_UNITS = PAGE_FAMILY | {NODE, TID, SAMPLES}

#: Annotation alias name -> unit (the AST analyzer sees names, not
#: resolved types; keep in sync with :mod:`repro.units`).
ALIAS_UNITS = {
    "Bytes": BYTES,
    "Pages4K": PAGES_4K,
    "Pages2M": PAGES_2M,
    "Pages1G": PAGES_1G,
    "NodeId": NODE,
    "ThreadId": TID,
    "Samples": SAMPLES,
    "BytesArray": BYTES,
    "Pages4KArray": PAGES_4K,
    "NodeArray": NODE,
    "ThreadArray": TID,
    "SamplesArray": SAMPLES,
}

#: Conversion-constant names: name -> (from_unit, to_unit) meaning
#: ``x[from] * NAME -> to`` and ``x[to] / NAME -> from``.  Standalone
#: (non-multiplicative) uses read as the *to* unit: bare ``PAGE_4K`` is
#: "the bytes in one 4KB page", bare ``GRANULES_PER_2M`` is "the 4KB
#: pages in one 2MB page".
CONVERTERS = {
    "PAGE_4K": (PAGES_4K, BYTES),
    "PAGE_2M": (PAGES_2M, BYTES),
    "PAGE_1G": (PAGES_1G, BYTES),
    "SIZE_4K": (PAGES_4K, BYTES),
    "SIZE_2M": (PAGES_2M, BYTES),
    "SIZE_1G": (PAGES_1G, BYTES),
    "GRANULES_PER_2M": (PAGES_2M, PAGES_4K),
    "GRANULES_PER_1G": (PAGES_1G, PAGES_4K),
    "CHUNKS_2M_PER_1G": (PAGES_1G, PAGES_2M),
}

#: Shift-amount names: ``x[pages4k] >> NAME`` -> unit, and ``<<`` back.
SHIFTS = {
    "SHIFT_2M": (PAGES_4K, PAGES_2M),
    "SHIFT_1G": (PAGES_4K, PAGES_1G),
}

#: The factor to suggest in an R103 message for a unit pair.
SUGGESTED_FACTORS = {
    frozenset({PAGES_4K, BYTES}): "PAGE_4K",
    frozenset({PAGES_2M, BYTES}): "PAGE_2M",
    frozenset({PAGES_1G, BYTES}): "PAGE_1G",
    frozenset({PAGES_2M, PAGES_4K}): "GRANULES_PER_2M (512)",
    frozenset({PAGES_1G, PAGES_4K}): "GRANULES_PER_1G",
    frozenset({PAGES_1G, PAGES_2M}): "CHUNKS_2M_PER_1G",
}

#: Calls that pass their first argument's unit through unchanged.
_PASSTHROUGH_CALLS = frozenset(
    {
        "int",
        "float",
        "abs",
        "round",
        "min",
        "max",
        "sorted",
        "asarray",
        "ascontiguousarray",
        "array",
        "unique",
        "copy",
        "astype",
    }
)


def naming_fallback(name: str) -> Optional[str]:
    """Unit implied by an identifier name, or None.

    Deliberately conservative: only patterns that are unambiguous in
    this codebase participate (``faults_2m`` is a *count of fault
    events*, not 2MB pages, so bare ``_2m``/``_4k`` suffixes do not
    match), and ``x_of_y`` names are mappings *indexed by* ``y``
    (``chunk_of_granule``), so they never take ``y``'s unit.
    """
    if "_of_" in name:
        return None
    if name.endswith("_bytes") or name.startswith("bytes_") or name == "nbytes":
        return BYTES
    if (
        name in ("granule", "granules", "n_granules", "frames", "n_frames")
        or name.endswith("_granule")
        or name.endswith("_granules")
        or name.endswith("_frames")
    ):
        return PAGES_4K
    if name == "n_chunks_2m" or name.endswith("chunks_2m"):
        return PAGES_2M
    if name == "n_chunks_1g" or name.endswith("chunks_1g"):
        return PAGES_1G
    if name in ("node", "node_id", "n_nodes") or name.endswith("_node"):
        return NODE
    if name in ("tid", "thread", "thread_id") or name.endswith("_tid"):
        return TID
    if name in ("samples", "n_samples") or name.endswith("_samples"):
        return SAMPLES
    return None


def unit_from_annotation(node: Optional[ast.AST]) -> Optional[str]:
    """Unit named by an annotation AST, or None.

    Recognises ``Annotated[<base>, "<unit>"]`` (dotted or not), the
    :mod:`repro.units` alias names, and string annotations containing
    either spelling (``from __future__ import annotations`` turns every
    annotation into a string constant).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name) and node.id in ALIAS_UNITS:
        return ALIAS_UNITS[node.id]
    if isinstance(node, ast.Attribute) and node.attr in ALIAS_UNITS:
        return ALIAS_UNITS[node.attr]
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None
        )
        if base_name == "Annotated":
            inner = node.slice
            if isinstance(inner, ast.Tuple) and len(inner.elts) >= 2:
                marker = inner.elts[1]
                if (
                    isinstance(marker, ast.Constant)
                    and isinstance(marker.value, str)
                    and marker.value in KNOWN_UNITS
                ):
                    return marker.value
        else:
            # Optional[Bytes], "Optional[Pages4K]" etc.
            return unit_from_annotation(node.slice)
    return None


@dataclass(frozen=True)
class UnitEvent:
    """One detected mismatch, before rule classification."""

    kind: str  # "arith" | "compare" | "argument" | "return" | "assign"
    left: str
    right: str
    node: ast.AST
    detail: str

    @property
    def is_conversion(self) -> bool:
        """Whether the pair is a page/byte-family missing conversion."""
        return self.left in PAGE_FAMILY and self.right in PAGE_FAMILY

    def suggestion(self) -> str:
        """The conversion factor to name in an R103 message."""
        factor = SUGGESTED_FACTORS.get(frozenset({self.left, self.right}))
        return f"; convert with {factor}" if factor else ""


@dataclass
class Signature:
    """Unit view of one function signature."""

    param_units: Dict[str, Optional[str]]
    param_order: Tuple[str, ...]
    return_unit: Optional[str]
    is_method: bool


class UnitChecker:
    """Infers units across one project and yields mismatch events."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.signatures: Dict[str, Signature] = {}
        self.attr_units: Dict[str, Optional[str]] = {}
        self._build_signatures()
        self._build_attr_units()

    # ------------------------------------------------------------------
    # Symbol-table construction
    # ------------------------------------------------------------------
    def _build_signatures(self) -> None:
        for qual, info in self.project.functions.items():
            node = info.node
            args = node.args
            ordered = (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
            units: Dict[str, Optional[str]] = {}
            for arg in ordered:
                unit = unit_from_annotation(arg.annotation)
                if unit is None:
                    unit = naming_fallback(arg.arg)
                units[arg.arg] = unit
            self.signatures[qual] = Signature(
                param_units=units,
                param_order=tuple(a.arg for a in ordered),
                return_unit=unit_from_annotation(node.returns),
                is_method=info.class_name is not None,
            )

    def _build_attr_units(self) -> None:
        """``attr name -> unit`` from annotated class attributes.

        Collected project-wide by attribute *name*: an annotated
        ``replica_bytes: Bytes`` anywhere dimensions every
        ``x.replica_bytes`` read.  Conflicting annotations for the same
        name poison the entry (no unit).
        """
        for cls in self.project.classes.values():
            for stmt in ast.walk(cls):
                target = None
                if isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name):
                        target = stmt.target.id
                    elif (
                        isinstance(stmt.target, ast.Attribute)
                        and isinstance(stmt.target.value, ast.Name)
                        and stmt.target.value.id == "self"
                    ):
                        target = stmt.target.attr
                if target is None:
                    continue
                unit = unit_from_annotation(stmt.annotation)
                if unit is None:
                    continue
                if self.attr_units.get(target, unit) != unit:
                    self.attr_units[target] = None  # conflicting: poison
                else:
                    self.attr_units[target] = unit

    def attr_unit(self, name: str) -> Optional[str]:
        """Unit of an attribute name: annotation first, then naming."""
        if name in self.attr_units:
            return self.attr_units[name]
        return naming_fallback(name)

    # ------------------------------------------------------------------
    # Per-function checking
    # ------------------------------------------------------------------
    def check(self) -> Iterator[Tuple[FunctionInfo, UnitEvent]]:
        """Yield every mismatch event across the project."""
        for info in self.project.functions.values():
            checker = _FunctionUnits(self, info)
            for event in checker.run():
                yield info, event

    # Call resolution reuse: unambiguous candidates only ---------------
    def call_signature(
        self, info: FunctionInfo, call: ast.Call
    ) -> Optional[Tuple[str, Signature]]:
        """The signature to check a call against, if unambiguous.

        Name-based method candidates are used only when every candidate
        agrees (same param order prefix units), otherwise skipped.
        """
        candidates = self.project.resolve_call(info, call)
        if not candidates:
            return None
        if len(candidates) == 1:
            qual = candidates[0]
            sig = self.signatures.get(qual)
            return (qual, sig) if sig is not None else None
        sigs = [self.signatures[c] for c in candidates if c in self.signatures]
        if not sigs:
            return None
        first = sigs[0]
        for sig in sigs[1:]:
            if sig.param_order != first.param_order or sig.param_units != (
                first.param_units
            ):
                return None
        return candidates[0], first


class _FunctionUnits:
    """Unit inference within one function body."""

    def __init__(self, checker: UnitChecker, info: FunctionInfo) -> None:
        self.checker = checker
        self.info = info
        self.env: Dict[str, Optional[str]] = {}
        sig = checker.signatures[info.qualname]
        for name, unit in sig.param_units.items():
            if unit is not None:
                self.env[name] = unit
        self.return_unit = sig.return_unit
        self.events: List[UnitEvent] = []

    def run(self) -> List[UnitEvent]:
        for node in self.info.walk_body():
            self._visit(node)
        return self.events

    # ------------------------------------------------------------------
    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            self._check_assign(node)
        elif isinstance(node, ast.AnnAssign):
            self._check_annassign(node)
        elif isinstance(node, ast.AugAssign):
            self._check_augassign(node)
        elif isinstance(node, ast.BinOp):
            self._check_binop(node)
        elif isinstance(node, ast.Compare):
            self._check_compare(node)
        elif isinstance(node, ast.Call):
            self._check_call(node)
        elif isinstance(node, ast.Return) and node.value is not None:
            self._check_return(node)

    def _emit(
        self, kind: str, left: str, right: str, node: ast.AST, detail: str
    ) -> None:
        self.events.append(UnitEvent(kind, left, right, node, detail))

    # ------------------------------------------------------------------
    def _check_assign(self, node: ast.Assign) -> None:
        value_unit = self.unit_of(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                declared = self.env.get(target.id) or naming_fallback(target.id)
                if (
                    declared is not None
                    and value_unit is not None
                    and declared != value_unit
                ):
                    self._emit(
                        "assign",
                        declared,
                        value_unit,
                        node,
                        f"assigning {value_unit} to {target.id} ({declared})",
                    )
                self.env[target.id] = value_unit or declared
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                declared = self._target_unit(target)
                if (
                    declared is not None
                    and value_unit is not None
                    and declared != value_unit
                ):
                    self._emit(
                        "assign",
                        declared,
                        value_unit,
                        node,
                        f"assigning {value_unit} to a {declared} location",
                    )

    def _check_annassign(self, node: ast.AnnAssign) -> None:
        declared = unit_from_annotation(node.annotation)
        if isinstance(node.target, ast.Name) and declared is not None:
            self.env[node.target.id] = declared
        if node.value is None or declared is None:
            return
        value_unit = self.unit_of(node.value)
        if value_unit is not None and value_unit != declared:
            self._emit(
                "assign",
                declared,
                value_unit,
                node,
                f"assigning {value_unit} to an annotated {declared} target",
            )

    def _check_augassign(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        target_unit = self._target_unit(node.target)
        value_unit = self.unit_of(node.value)
        if (
            target_unit is not None
            and value_unit is not None
            and target_unit != value_unit
        ):
            self._emit(
                "arith",
                target_unit,
                value_unit,
                node,
                f"augmented {target_unit} target by a {value_unit} value",
            )

    def _check_binop(self, node: ast.BinOp) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        left = self.unit_of(node.left)
        right = self.unit_of(node.right)
        if left is not None and right is not None and left != right:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            self._emit(
                "arith",
                left,
                right,
                node,
                f"{left} {op} {right}",
            )

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        units = [self.unit_of(o) for o in operands]
        known = [(u, o) for u, o in zip(units, operands) if u is not None]
        for (u1, _), (u2, _) in zip(known, known[1:]):
            if u1 != u2:
                self._emit(
                    "compare",
                    u1,
                    u2,
                    node,
                    f"comparing {u1} with {u2}",
                )

    def _check_call(self, node: ast.Call) -> None:
        resolved = self.checker.call_signature(self.info, node)
        if resolved is None:
            return
        qual, sig = resolved
        params = list(sig.param_order)
        if sig.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        for param, arg in zip(params, node.args):
            self._check_argument(qual, sig, param, arg, node)
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in sig.param_units:
                self._check_argument(qual, sig, keyword.arg, keyword.value, node)

    def _check_argument(
        self,
        qual: str,
        sig: Signature,
        param: str,
        arg: ast.AST,
        call: ast.Call,
    ) -> None:
        expected = sig.param_units.get(param)
        if expected is None:
            return
        actual = self.unit_of(arg)
        if actual is not None and actual != expected:
            short = qual.rsplit(".", 2)
            self._emit(
                "argument",
                expected,
                actual,
                arg,
                f"argument {param!r} of {'.'.join(short[-2:])}() expects "
                f"{expected}, got {actual}",
            )

    def _check_return(self, node: ast.Return) -> None:
        if self.return_unit is None:
            return
        actual = self.unit_of(node.value)
        if actual is not None and actual != self.return_unit:
            self._emit(
                "return",
                self.return_unit,
                actual,
                node,
                f"function returns {self.return_unit}, got {actual}",
            )

    # ------------------------------------------------------------------
    # Expression unit evaluation
    # ------------------------------------------------------------------
    def _target_unit(self, target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return self.env.get(target.id) or naming_fallback(target.id)
        if isinstance(target, ast.Attribute):
            return self.checker.attr_unit(target.attr)
        if isinstance(target, ast.Subscript):
            return self._target_unit(target.value)
        return None

    def _converter_for(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """The (from, to) pair when ``node`` is a conversion constant."""
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Call):
            # int(PageSize.SIZE_2M) and friends.
            func = node.func
            fname = func.id if isinstance(func, ast.Name) else None
            if fname in ("int", "float") and node.args:
                return self._converter_for(node.args[0])
        if name is not None and name in CONVERTERS:
            return CONVERTERS[name]
        return None

    def _shift_units(self, amount: ast.AST) -> Optional[Tuple[str, str]]:
        name = None
        if isinstance(amount, ast.Name):
            name = amount.id
        elif isinstance(amount, ast.Attribute):
            name = amount.attr
        elif (
            isinstance(amount, ast.BinOp)
            and isinstance(amount.op, ast.Sub)
        ):
            # SHIFT_1G - SHIFT_2M: 2MB chunks <-> 1GB chunks.
            hi = self._shift_units(amount.left)
            lo = self._shift_units(amount.right)
            if hi == SHIFTS["SHIFT_1G"] and lo == SHIFTS["SHIFT_2M"]:
                return (PAGES_2M, PAGES_1G)
            return None
        if name is not None and name in SHIFTS:
            return SHIFTS[name]
        return None

    def unit_of(self, node: ast.AST) -> Optional[str]:
        """Best-effort unit of an expression (None = dimensionless/unknown)."""
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            converter = self._converter_for(node)
            if converter is not None:
                return converter[1]
            return naming_fallback(node.id)
        if isinstance(node, ast.Attribute):
            converter = self._converter_for(node)
            if converter is not None:
                return converter[1]
            return self.checker.attr_unit(node.attr)
        if isinstance(node, ast.Subscript):
            return self.unit_of(node.value)
        if isinstance(node, ast.Starred):
            return self.unit_of(node.value)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.IfExp):
            body = self.unit_of(node.body)
            orelse = self.unit_of(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.BinOp):
            return self._binop_unit(node)
        if isinstance(node, ast.Call):
            return self._call_unit(node)
        return None

    def _binop_unit(self, node: ast.BinOp) -> Optional[str]:
        left, right = node.left, node.right
        if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv)):
            for value, factor in ((left, right), (right, left)):
                converter = self._converter_for(factor)
                if converter is None:
                    continue
                src, dst = converter
                value_unit = self.unit_of(value)
                if isinstance(node.op, ast.Mult):
                    # count[src] * factor -> dst (dimensionless counts
                    # are assumed to be in the source unit).
                    if value_unit in (src, None):
                        return dst
                    return None
                if value is left:  # value / factor
                    if value_unit in (dst, None):
                        return src
                    return None
                return None
            return None
        if isinstance(node.op, (ast.RShift, ast.LShift)):
            pair = self._shift_units(node.right)
            if pair is None:
                return None
            fine, coarse = pair
            value_unit = self.unit_of(node.left)
            if isinstance(node.op, ast.RShift):
                return coarse if value_unit in (fine, None) else None
            return fine if value_unit in (coarse, None) else None
        if isinstance(node.op, (ast.Add, ast.Sub)):
            lu, ru = self.unit_of(left), self.unit_of(right)
            if lu == ru:
                return lu
            if lu is None:
                return ru
            if ru is None:
                return lu
            return None  # mismatch reported separately
        if isinstance(node.op, ast.Mod):
            # x % ALIGN keeps x's unit (an in-page offset); x % n_nodes
            # (round-robin interleave) produces an index in the divisor's
            # dimension, so a disagreeing divisor makes the result unknown.
            lu, ru = self.unit_of(left), self.unit_of(right)
            return lu if ru in (None, lu) else None
        return None

    def _call_unit(self, node: ast.Call) -> Optional[str]:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _PASSTHROUGH_CALLS:
            if name == "astype" and isinstance(func, ast.Attribute):
                return self.unit_of(func.value)
            if node.args:
                return self.unit_of(node.args[0])
            return None
        if name == "len":
            return None
        resolved = self.checker.call_signature(self.info, node)
        if resolved is not None:
            return resolved[1].return_unit
        return None
