"""Command-line interface: regenerate paper artifacts or run one benchmark.

Examples::

    repro list
    repro figure1 --quick --jobs 4
    repro table2 --scale 0.5
    repro run CG.D --machine B --policy carrefour-lp --quick
    repro policies
    repro trace SSCA.20 --policy carrefour-2m+replication --quick
    repro cache stats
    repro cache clear
    repro lint src/repro --format json
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from dataclasses import replace
from typing import List, Optional

from repro.analysis.linter import Finding, format_findings, lint_paths
from repro.experiments.cache import CACHE_ENABLE_ENV, ResultCache
from repro.experiments.experiments import EXPERIMENTS, run_experiment
from repro.experiments.parallel import BACKEND_ENV, JOBS_ENV
from repro.experiments.runner import RunSettings, run_benchmark
from repro.sim.config import SimConfig
from repro.workloads.registry import available_workloads


def _settings_from_args(args: argparse.Namespace) -> RunSettings:
    if args.quick:
        settings = RunSettings.quick(seed=args.seed)
    else:
        settings = RunSettings(config=SimConfig(seed=args.seed), seed=args.seed)
    if args.scale is not None:
        settings = RunSettings(
            config=replace(settings.config, scale=args.scale), seed=args.seed
        )
    return settings


def _apply_execution_flags(args: argparse.Namespace) -> None:
    """Propagate --jobs/--fresh to the runner layer via environment.

    The environment is the natural carrier: it reaches the in-process
    parallel dispatcher and every pool worker alike.
    """
    if getattr(args, "jobs", None) is not None:
        os.environ[JOBS_ENV] = str(args.jobs)
    if getattr(args, "jobs_backend", None) is not None:
        os.environ[BACKEND_ENV] = args.jobs_backend
    if getattr(args, "fresh", False):
        os.environ[CACHE_ENABLE_ENV] = "0"


def _add_run_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--quick", action="store_true", help="reduced scale")
    cmd.add_argument("--scale", type=float, default=None)
    cmd.add_argument("--seed", type=int, default=0)
    cmd.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent runs"
        " (default: REPRO_JOBS or cpu_count-1; 1 = serial)",
    )
    cmd.add_argument(
        "--jobs-backend",
        choices=["serial", "thread", "process", "auto"],
        default=None,
        metavar="BACKEND",
        help="parallel executor: 'process' (pool of workers), 'thread'"
        " (in-process shards that share stream banks), 'serial'"
        " (plain loop), or 'auto' (default: REPRO_JOBS_BACKEND or"
        " auto; auto picks process on multi-core boxes and serial on"
        " single-core ones)",
    )
    cmd.add_argument(
        "--fresh",
        action="store_true",
        help="ignore the persistent result cache (recompute everything)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Large Pages May Be Harmful on NUMA Systems'"
            " (USENIX ATC'14)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and benchmarks")

    cache_cmd = sub.add_parser("cache", help="inspect the persistent result cache")
    cache_cmd.add_argument(
        "action", choices=["stats", "clear"], help="show stats or delete entries"
    )

    lint_cmd = sub.add_parser(
        "lint",
        help="run the determinism linter (R001-R005; --deep adds R101-R113)",
    )
    lint_cmd.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed"
        " repro package source)",
    )
    lint_cmd.add_argument(
        "--format",
        dest="lint_format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (json for CI consumption, sarif for"
        " GitHub code scanning)",
    )
    lint_cmd.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program rules R101-R113 (call-graph"
        " effect inference, units-of-measure checking, the"
        " concurrency-safety pass and the decision-flow contract"
        " analyzer)",
    )
    lint_cmd.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print a deep rule's rationale plus its inferred model:"
        " thread entry points and locksets for R105-R108, the decision"
        " kernel (decisions, handlers, policy roots) for R109-R113"
        " (implies --deep)",
    )
    lint_cmd.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of known findings; exit 0 unless *new*"
        " findings appear",
    )
    lint_cmd.add_argument(
        "--baseline-update",
        action="store_true",
        help="regenerate the --baseline file from the current findings"
        " and exit 0",
    )

    for name in EXPERIMENTS:
        exp = sub.add_parser(name, help=f"regenerate {name}")
        _add_run_options(exp)

    run_cmd = sub.add_parser("run", help="run one benchmark/policy combo")
    run_cmd.add_argument("workload")
    run_cmd.add_argument("--machine", default="A", choices=["A", "B"])
    run_cmd.add_argument("--policy", default="thp")
    run_cmd.add_argument("--backing-1g", action="store_true")
    _add_run_options(run_cmd)

    prof_cmd = sub.add_parser(
        "profile",
        help="run one benchmark uncached with the per-phase engine profiler",
    )
    prof_cmd.add_argument("workload")
    prof_cmd.add_argument("--machine", default="A", choices=["A", "B"])
    prof_cmd.add_argument("--policy", default="thp")
    prof_cmd.add_argument("--backing-1g", action="store_true")
    prof_cmd.add_argument("--quick", action="store_true", help="reduced scale")
    prof_cmd.add_argument("--scale", type=float, default=None)
    prof_cmd.add_argument("--seed", type=int, default=0)
    prof_cmd.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the machine-readable profile to PATH",
    )

    sub.add_parser(
        "policies",
        help="list the policy registry with one-line descriptions",
    )

    scen_cmd = sub.add_parser(
        "scenario",
        help="run a multi-tenant colocation scenario on one shared host",
    )
    scen_cmd.add_argument(
        "--arrival",
        default="poisson",
        help="arrival generator (see repro.scenarios.registry;"
        " poisson / fixed-trace / closed-loop)",
    )
    scen_cmd.add_argument("--machine", default="B", choices=["A", "B"])
    scen_cmd.add_argument(
        "--workloads",
        default="SSCA.20",
        metavar="W1,W2,...",
        help="comma-separated workload pool (assigned round-robin)",
    )
    scen_cmd.add_argument(
        "--policies",
        default="thp",
        metavar="P1,P2,...",
        help="comma-separated policy pool (assigned round-robin)",
    )
    scen_cmd.add_argument(
        "--rate",
        type=float,
        default=0.05,
        help="expected arrivals per host epoch (poisson)",
    )
    scen_cmd.add_argument(
        "--max-tenants", type=int, default=4, help="total tenant budget"
    )
    scen_cmd.add_argument(
        "--target-active",
        type=int,
        default=2,
        help="tenants kept alive by the closed-loop generator",
    )
    scen_cmd.add_argument(
        "--tenant-epochs",
        type=int,
        default=None,
        help="per-tenant epoch cap (default: each workload's own length)",
    )
    scen_cmd.add_argument(
        "--trace",
        default=None,
        metavar="E:W:P,...",
        help="fixed-trace arrival schedule as epoch:workload:policy"
        " triples, e.g. 0:SSCA.20:carrefour-lp,4:Kmeans:thp"
        " (implies --arrival fixed-trace)",
    )
    scen_cmd.add_argument("--max-host-epochs", type=int, default=2000)
    scen_cmd.add_argument(
        "--pressure",
        type=float,
        default=0.0,
        help="fraction of each node's memory pinned before any tenant"
        " arrives, in [0, 1)",
    )
    scen_cmd.add_argument("--quick", action="store_true", help="reduced scale")
    scen_cmd.add_argument("--scale", type=float, default=None)
    scen_cmd.add_argument("--seed", type=int, default=0)
    scen_cmd.add_argument(
        "--fresh",
        action="store_true",
        help="ignore the persistent result cache (recompute everything)",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="run one benchmark uncached with the decision trace enabled",
    )
    trace_cmd.add_argument("workload")
    trace_cmd.add_argument("--machine", default="A", choices=["A", "B"])
    trace_cmd.add_argument("--policy", default="thp")
    trace_cmd.add_argument("--backing-1g", action="store_true")
    trace_cmd.add_argument("--quick", action="store_true", help="reduced scale")
    trace_cmd.add_argument("--scale", type=float, default=None)
    trace_cmd.add_argument("--seed", type=int, default=0)
    trace_cmd.add_argument(
        "--jsonl",
        dest="jsonl_path",
        default=None,
        metavar="PATH",
        help="also write the decision records as JSON lines to PATH",
    )
    return parser


def _lint_main(args: argparse.Namespace) -> int:
    """Run the determinism linter.

    Exit codes: 0 clean (or no findings beyond the baseline), 1 when
    reportable findings exist, 2 on usage errors (bad flags, malformed
    baseline), 3 when the baseline file is missing or was written by an
    unknown schema version (regenerate with --baseline-update).
    """
    import time

    from repro.analysis.baseline import (
        BaselineError,
        BaselineMissingError,
        BaselineSchemaError,
        filter_new,
        load_baseline,
        write_baseline,
    )

    fmt = args.lint_format
    if args.baseline_update and not args.baseline:
        print("error: --baseline-update requires --baseline", file=sys.stderr)
        return 2
    explain = getattr(args, "explain", None)
    if explain is not None:
        from repro.analysis.deep import RULE_RATIONALE

        if explain not in RULE_RATIONALE:
            known = ", ".join(sorted(RULE_RATIONALE))
            print(
                f"error: unknown deep rule {explain!r} (known: {known})",
                file=sys.stderr,
            )
            return 2
        args.deep = True
    if args.paths:
        targets = [pathlib.Path(p) for p in args.paths]
    else:
        import repro

        targets = [pathlib.Path(repro.__file__).parent]
    findings = lint_paths(targets)
    if args.deep:
        from repro.analysis.callgraph import Project
        from repro.analysis.deep import deep_lint_project, explain_rule

        t0 = time.perf_counter()
        project = Project.from_paths(targets)
        findings = findings + deep_lint_project(project)
        findings.sort(key=Finding.sort_key)
        elapsed = time.perf_counter() - t0
        print(f"deep analysis: {elapsed:.2f}s", file=sys.stderr)
        if explain is not None:
            print(explain_rule(explain, project))
            for finding in findings:
                if finding.rule != explain:
                    continue
                print()
                print(finding.format_text())
                if finding.chain:
                    print(f"  entry chain: {' -> '.join(finding.chain)}")
                if finding.lockset:
                    print(f"  lockset: {', '.join(finding.lockset)}")
    if args.baseline_update:
        write_baseline(pathlib.Path(args.baseline), findings)
        print(
            f"wrote baseline with {len(findings)} finding(s) to "
            f"{args.baseline}",
            file=sys.stderr,
        )
        return 0
    if args.baseline:
        try:
            baseline = load_baseline(pathlib.Path(args.baseline))
        except (BaselineMissingError, BaselineSchemaError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 3
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings = filter_new(findings, baseline)
    output = format_findings(findings, fmt)
    if output:
        print(output)
    elif fmt == "text":
        print("no findings")
    return 1 if findings else 0


def _profile_main(args: argparse.Namespace) -> int:
    """Run one benchmark with the per-phase profiler and report timings."""
    import json

    from repro.sim.profile import run_profiled

    settings = _settings_from_args(args)
    result, timer = run_profiled(
        args.workload,
        args.machine,
        args.policy,
        settings,
        backing_1g=args.backing_1g,
    )
    print(result.describe())
    print(f"  simulated runtime={result.runtime_s:.3f}s")
    print(timer.render())
    if args.json_path:
        payload = {
            "run": f"{args.workload}@{args.machine}/{args.policy}",
            "scale": settings.config.scale,
            "seed": settings.seed,
            "simulated_runtime_s": result.runtime_s,
            "profile": timer.summary(),
        }
        pathlib.Path(args.json_path).write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        print(f"wrote {args.json_path}")
    return 0


def _policies_main() -> int:
    """List the policy registry with its documented descriptions."""
    from repro.experiments.configs import POLICIES, policy_descriptions

    descriptions = policy_descriptions()
    width = max(len(name) for name in POLICIES)
    print("policies:")
    for name in POLICIES:
        print(f"  {name:<{width}}  {descriptions[name]}")
    print(
        "\ncompose with '+', e.g. carrefour-2m+replication"
        " (first member wins decision conflicts)"
    )
    return 0


def _trace_main(args: argparse.Namespace) -> int:
    """Run one benchmark with decision tracing and report the tally."""
    from repro.sim.trace import run_traced

    settings = _settings_from_args(args)
    result, trace = run_traced(
        args.workload,
        args.machine,
        args.policy,
        settings,
        backing_1g=args.backing_1g,
    )
    print(result.describe())
    print(f"  simulated runtime={result.runtime_s:.3f}s")
    print(trace.render())
    if args.jsonl_path:
        trace.write_jsonl(args.jsonl_path)
        print(f"wrote {args.jsonl_path}")
    return 0


def _scenario_main(args: argparse.Namespace) -> int:
    """Run one colocation scenario and print its tenant timeline."""
    from repro.experiments.scenario_runner import run_scenario
    from repro.scenarios import ScenarioConfig

    settings = _settings_from_args(args)
    trace = ()
    arrival = args.arrival
    if args.trace:
        trace = tuple(
            (int(epoch), workload, policy)
            for epoch, workload, policy in (
                entry.split(":") for entry in args.trace.split(",")
            )
        )
        arrival = "fixed-trace"
    scenario = ScenarioConfig(
        arrival=arrival,
        machine=args.machine,
        workloads=tuple(
            w.strip() for w in args.workloads.split(",") if w.strip()
        ),
        policies=tuple(
            p.strip() for p in args.policies.split(",") if p.strip()
        ),
        arrival_rate=args.rate,
        trace=trace,
        max_tenants=args.max_tenants,
        target_active=args.target_active,
        max_host_epochs=args.max_host_epochs,
        tenant_epochs=args.tenant_epochs,
        pressure=args.pressure,
        seed=args.seed,
    )
    result = run_scenario(
        scenario, settings.config, use_cache=not args.fresh
    )
    print(
        f"scenario {scenario.arrival} on {result.machine}: "
        f"{len(result.tenants)} tenant(s) over {result.host_epochs} host"
        f" epoch(s), pressure {scenario.pressure:.0%}"
        f" ({result.pressure_bytes >> 20} MiB pinned)"
    )
    for record in result.tenants:
        runtime = (
            f"{record.result.runtime_s:.3f}s"
            if record.result is not None
            else "-"
        )
        exit_epoch = record.exit_epoch if record.exit_epoch is not None else "-"
        print(
            f"  tenant {record.tenant_id}: {record.workload}/{record.policy}"
            f" epochs {record.arrival_epoch}..{exit_epoch}"
            f" [{record.status}] runtime={runtime}"
        )
    print(
        f"  completed={result.n_completed} oom-killed={result.n_killed}"
        f" truncated={len(result.by_status('truncated'))}"
    )
    return 0


def _cache_main(action: str) -> int:
    store = ResultCache.default()
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
        return 0
    print(store.stats().describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("benchmarks:")
        for name in available_workloads():
            print(f"  {name}")
        return 0

    if args.command == "cache":
        return _cache_main(args.action)

    if args.command == "lint":
        return _lint_main(args)

    if args.command == "profile":
        return _profile_main(args)

    if args.command == "policies":
        return _policies_main()

    if args.command == "trace":
        return _trace_main(args)

    if args.command == "scenario":
        return _scenario_main(args)

    _apply_execution_flags(args)

    if args.command == "run":
        settings = _settings_from_args(args)
        result = run_benchmark(
            args.workload,
            args.machine,
            args.policy,
            settings,
            backing_1g=args.backing_1g,
        )
        m = result.metrics()
        print(result.describe())
        print(
            f"  runtime={m.runtime_s:.3f}s fault={m.fault_time_total_s * 1e3:.0f}ms"
            f" (max {m.max_fault_pct:.1f}%) L2walk={m.pct_l2_walk:.1f}%"
        )
        if m.pamup_pct is not None:
            print(
                f"  PAMUP={m.pamup_pct:.1f}% NHP={m.n_hot_pages} PSP={m.psp_pct:.0f}%"
            )
        print(f"  pages: {m.final_page_counts}")
        return 0

    settings = _settings_from_args(args)
    report = run_experiment(args.command, settings)
    print(report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
