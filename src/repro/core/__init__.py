"""The paper's contribution: Carrefour and its large-page extensions.

* :mod:`repro.core.metrics` — sample tables and metric helpers.
* :mod:`repro.core.carrefour` — the Carrefour placement engine
  (migrate single-node pages, interleave shared pages) with its global
  enable thresholds; at 2MB granularity this is Carrefour-2M.
* :mod:`repro.core.lar_estimator` — what-if LAR estimation from IBS
  samples, with and without splitting large pages.
* :mod:`repro.core.reactive` — the reactive component: split shared
  large pages when only splitting recovers locality; always split and
  interleave hot pages.
* :mod:`repro.core.conservative` — the conservative component:
  re-enable 2MB allocation/promotion when TLB or page-fault pressure
  warrants it.
* :mod:`repro.core.carrefour_lp` — Algorithm 1, composing all of the
  above into the Carrefour-LP policy (plus the reactive-only and
  conservative-only variants evaluated in Figure 4).
"""

from repro.core.metrics import PageSampleTable, sample_lar
from repro.core.carrefour import CarrefourConfig, CarrefourEngine, CarrefourPolicy
from repro.core.lar_estimator import LarEstimate, estimate_lar_after_carrefour
from repro.core.conservative import ConservativeComponent, ConservativeConfig
from repro.core.reactive import ReactiveComponent, ReactiveConfig
from repro.core.carrefour_lp import CarrefourLpPolicy

__all__ = [
    "PageSampleTable",
    "sample_lar",
    "CarrefourConfig",
    "CarrefourEngine",
    "CarrefourPolicy",
    "LarEstimate",
    "estimate_lar_after_carrefour",
    "ConservativeComponent",
    "ConservativeConfig",
    "ReactiveComponent",
    "ReactiveConfig",
    "CarrefourLpPolicy",
]
