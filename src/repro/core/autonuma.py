"""A model of Linux AutoNUMA (NUMA balancing) as a baseline policy.

Mainline Linux's answer to NUMA placement is *NUMA balancing*: a
per-task scanner periodically write-protects windows of the address
space; the resulting *hint faults* reveal which node touches each page,
and a page that faults from the same remote node twice in a row (the
two-stage filter) is migrated there.

This is the natural comparison point for Carrefour-LP because NUMA
balancing shares Carrefour's blind spots — and adds its own:

* it migrates whole huge pages and never splits them, so the hot-page
  effect and page-level false sharing are out of reach;
* pages genuinely shared by several nodes *ping-pong*: each interval
  they hop to the most recent faulting node instead of being
  interleaved once;
* hint faults cost real time on every sampled access (scan overhead),
  unlike IBS sampling which is interrupt-driven and sparse.

The model drives the same decision rule from the simulated access
stream: sampled accesses stand in for hint faults, a per-page
(last_node, streak) table implements the two-stage filter, and
migrations are charged through the usual cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional, TYPE_CHECKING, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.counters import CounterBank
from repro.hardware.ibs import IbsSamples
from repro.core.metrics import PageSampleTable
from repro.sim.decisions import ChargeCompute, Decision, MigratePage, Note, Outcome
from repro.sim.policy import PlacementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class AutoNumaConfig:
    """Tunables of the NUMA-balancing model.

    ``hint_fault_cost_s`` is the handler cost of one hint fault
    (protection fault + bookkeeping); the scanner effectively converts
    the sampled accesses of each interval into hint faults.
    ``migrate_streak`` is the two-stage filter: a page moves only after
    this many consecutive faults from the same remote node.
    """

    hint_fault_cost_s: float = 1.2e-6
    migrate_streak: int = 2
    max_migration_bytes_per_interval: int = 256 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.hint_fault_cost_s < 0:
            raise ConfigurationError("hint_fault_cost_s must be non-negative")
        if self.migrate_streak < 1:
            raise ConfigurationError("migrate_streak must be >= 1")
        if self.max_migration_bytes_per_interval < 0:
            raise ConfigurationError("migration budget must be non-negative")


class AutoNumaPolicy(PlacementPolicy):
    """Linux NUMA balancing: hint-fault-driven migrate-to-accessor.

    ``thp=True`` models mainline defaults (NUMA balancing and THP both
    on); ``thp=False`` isolates the balancing behaviour on 4KB pages.
    """

    interval_s = 1.0

    def __init__(
        self,
        thp: bool = True,
        config: Optional[AutoNumaConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.thp = thp
        self.config = config or AutoNumaConfig()
        self.name = name or ("autonuma" if thp else "autonuma-4k")
        #: page id -> (last faulting node, consecutive-fault streak)
        self._streaks: Dict[int, Tuple[int, int]] = {}

    def setup(self, sim: "Simulation") -> None:
        if self.thp:
            sim.thp.enable_alloc()
            sim.thp.enable_promotion()
        else:
            sim.thp.disable_alloc()
            sim.thp.disable_promotion()

    def decide(
        self, sim: "Simulation", samples: IbsSamples, window: CounterBank
    ) -> Generator[Decision, Outcome, None]:
        # Every sampled access is a hint fault the scanner provoked.
        yield ChargeCompute(len(samples) * self.config.hint_fault_cost_s)
        if len(samples) == 0:
            return
        table = PageSampleTable.from_samples(
            samples, sim.asp, sim.machine.n_nodes, granularity="backing"
        )
        dominant = table.dominant_nodes()
        budget = self.config.max_migration_bytes_per_interval
        order = np.argsort(-table.totals)
        for idx in order:
            if budget <= 0:
                yield Note("migration budget exhausted")
                break
            page_id = int(table.ids[idx])
            if not sim.asp.backing_is_live(page_id):
                self._streaks.pop(page_id, None)
                continue
            node = int(dominant[idx])
            last, streak = self._streaks.get(page_id, (-1, 0))
            streak = streak + 1 if node == last else 1
            self._streaks[page_id] = (node, streak)
            if streak < self.config.migrate_streak:
                continue
            outcome = yield MigratePage(page_id, node)
            if not outcome.applied:
                continue
            budget -= outcome.bytes_moved
