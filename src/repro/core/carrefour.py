"""The Carrefour placement engine [Dashti et al., ASPLOS'13].

Carrefour gathers per-page access samples and chooses a host node per
page: pages sampled from a single node migrate to that node; pages
sampled from several nodes are *interleaved* (migrated to a random
node).  Global hardware-counter thresholds gate the whole mechanism so
it only acts when a NUMA problem exists (low LAR or high controller
imbalance on a memory-intensive application).

Run over 2MB-backed memory this is the paper's **Carrefour-2M**; the
same engine at 4KB granularity is the original Carrefour.  The engine
is deliberately size-agnostic: it acts on whatever backing pages the
address space currently has, which is what lets Carrefour-LP reuse it
after splitting.

The engine is a *decider*: :meth:`CarrefourEngine.decide_placement`
yields typed :mod:`repro.sim.decisions` and rate-limits its migration
budget on the :class:`~repro.sim.decisions.Outcome` the executor sends
back — it never touches the address space itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Set, TYPE_CHECKING

import numpy as np

from repro._util import rng_for
from repro.errors import ConfigurationError
from repro.hardware.counters import CounterBank
from repro.hardware.ibs import IbsSamples
from repro.core.metrics import PageSampleTable
from repro.sim.decisions import (
    ChargeCompute,
    Decision,
    MigratePage,
    Note,
    Outcome,
    ReplicatePage,
)
from repro.sim.policy import PlacementPolicy
from repro.vm.address_space import AddressSpace

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class CarrefourConfig:
    """Thresholds and budgets for the Carrefour engine.

    The enable thresholds follow the Carrefour paper: act only on
    memory-intensive applications (MAPTU above a floor) that show a
    NUMA problem (LAR below ``lar_threshold_pct`` or imbalance above
    ``imbalance_threshold_pct``).  The migration budget rate-limits how
    much memory moves per 1-second interval, modelling the kernel's
    bounded migration throughput.
    """

    min_maptu: float = 50.0
    lar_threshold_pct: float = 80.0
    imbalance_threshold_pct: float = 35.0
    min_samples_per_page: int = 1
    max_migration_bytes_per_interval: int = 512 * 1024 * 1024
    #: Daemon compute cost per processed sample (decision-making).
    compute_s_per_sample: float = 2e-7
    #: Carrefour's third mechanism [Dashti'13]: replicate read-mostly
    #: shared pages onto every node instead of interleaving them.
    replication_enabled: bool = True
    #: Samples a page needs, all of them loads, before it is considered
    #: safely read-only.
    replication_min_samples: int = 6
    #: Leave replication off when free memory is scarce (fraction of
    #: total DRAM that must remain free).
    replication_min_free_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.min_samples_per_page < 1:
            raise ConfigurationError("min_samples_per_page must be >= 1")
        if self.max_migration_bytes_per_interval < 0:
            raise ConfigurationError("migration budget must be non-negative")


class CarrefourEngine:
    """Stateful Carrefour decider over an address space."""

    def __init__(self, config: Optional[CarrefourConfig] = None, seed: int = 0) -> None:
        self.config = config or CarrefourConfig()
        self._rng = rng_for(seed, "carrefour")
        #: Pages already interleaved; not re-randomised every interval
        #: (avoids ping-pong).
        self._interleaved: Set[int] = set()

    def should_engage(self, window: CounterBank) -> bool:
        """Global enable decision from the interval's hardware counters."""
        cfg = self.config
        if window.maptu() < cfg.min_maptu:
            return False
        return (
            window.lar() < cfg.lar_threshold_pct
            or window.imbalance() > cfg.imbalance_threshold_pct
        )

    def decide_placement(
        self,
        table: PageSampleTable,
        address_space: AddressSpace,
        n_nodes: int,
    ) -> Generator[Decision, Outcome, None]:
        """Yield the migrate/interleave decision for every sampled page."""
        cfg = self.config
        yield ChargeCompute(table.n_samples * cfg.compute_s_per_sample)
        if table.ids.size == 0:
            return
        totals = table.totals
        eligible = totals >= cfg.min_samples_per_page
        # Hottest pages first: under a finite budget, moving them pays most.
        order = np.argsort(-totals)
        order = order[eligible[order]]
        single = table.single_node_mask()
        dominant = table.dominant_nodes()
        read_only = table.read_only_mask()
        replication_ok = cfg.replication_enabled and self._memory_headroom(
            address_space
        )
        replication_candidates: list = []
        budget = cfg.max_migration_bytes_per_interval
        for idx in order:
            if budget <= 0:
                yield Note("migration budget exhausted")
                break
            page_id = int(table.ids[idx])
            if not address_space.backing_is_live(page_id):
                # Sampled before a split/collapse changed the backing.
                continue
            if single[idx]:
                target = int(dominant[idx])
                self._interleaved.discard(page_id)
            else:
                # Shared page.  Read-mostly pages with enough evidence
                # are *candidates* for replication, but balance comes
                # first: they are interleaved now (one cheap migration)
                # and upgraded to per-node replicas with whatever budget
                # remains after this pass — otherwise a single interval
                # of expensive copies would leave the hot node standing.
                if (
                    replication_ok
                    and read_only[idx]
                    and totals[idx] >= cfg.replication_min_samples
                ):
                    replication_candidates.append(page_id)
                if page_id in self._interleaved:
                    continue
                target = int(self._rng.integers(0, n_nodes))
                self._interleaved.add(page_id)
            outcome = yield MigratePage(page_id, target)
            if not outcome.applied:
                continue
            budget -= outcome.bytes_moved

        # Second pass: spend leftover budget upgrading read-mostly
        # shared pages to replicas (hottest first, as ordered above).
        for page_id in replication_candidates:
            if budget <= 0:
                yield Note("replication deferred (budget)")
                break
            if not address_space.backing_is_live(page_id):
                continue
            outcome = yield ReplicatePage(page_id)
            if outcome.applied:
                budget -= outcome.bytes_moved
                self._interleaved.discard(page_id)

    def _memory_headroom(self, address_space: AddressSpace) -> bool:
        """Whether free memory permits replication (Carrefour's gate)."""
        phys = address_space.phys
        total = phys.total_free_bytes + phys.total_used_bytes
        if total <= 0:
            return False
        return (
            phys.total_free_bytes / total
            > self.config.replication_min_free_fraction
        )

    def forget_page(self, page_id: int) -> None:
        """Drop interleave history for a page (e.g. after splitting it)."""
        self._interleaved.discard(page_id)


class CarrefourPolicy(PlacementPolicy):
    """Pure Carrefour as a placement policy.

    ``thp=True`` gives the paper's Carrefour-2M (Linux THP plus
    Carrefour migration/interleaving of whatever pages exist, including
    2MB ones); ``thp=False`` gives the original Carrefour on 4KB pages.
    """

    interval_s = 1.0

    def __init__(
        self,
        thp: bool,
        config: Optional[CarrefourConfig] = None,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        self.thp = thp
        self.engine = CarrefourEngine(config, seed=seed)
        self.name = name or ("carrefour-2m" if thp else "carrefour-4k")

    def setup(self, sim: "Simulation") -> None:
        if self.thp:
            sim.thp.enable_alloc()
            sim.thp.enable_promotion()
        else:
            sim.thp.disable_alloc()
            sim.thp.disable_promotion()

    def decide(
        self, sim: "Simulation", samples: IbsSamples, window: CounterBank
    ) -> Generator[Decision, Outcome, None]:
        if not self.engine.should_engage(window):
            yield Note("carrefour disabled (thresholds)")
            return
        table = PageSampleTable.from_samples(
            samples, sim.asp, sim.machine.n_nodes, granularity="backing"
        )
        yield from self.engine.decide_placement(
            table, sim.asp, sim.machine.n_nodes
        )
