"""Carrefour-LP: Algorithm 1 of the paper.

The policy composes three pieces, run once per monitoring interval
(1 second of simulated time):

1. the **conservative** component re-enables 2MB allocation/promotion
   from hardware counters (lines 4-9);
2. the **reactive** component estimates what-if LARs from IBS samples,
   splits shared large pages and disables 2MB allocation when only
   splitting helps, and always splits + interleaves hot pages
   (lines 10-19);
3. the **Carrefour** engine migrates/interleaves pages at whatever
   granularity now exists (line 20).

The two evaluated ablations are expressed by flags: ``reactive-only``
(Carrefour-2M + reactive, starts with THP on) and ``conservative-only``
(original 4KB Carrefour + conservative, starts with THP off) — exactly
the configurations of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, TYPE_CHECKING

from repro.hardware.counters import CounterBank
from repro.hardware.ibs import IbsSamples
from repro.core.carrefour import CarrefourConfig, CarrefourEngine
from repro.core.conservative import (
    ConservativeComponent,
    ConservativeConfig,
    ConservativeDecision,
)
from repro.core.metrics import PageSampleTable
from repro.core.reactive import ReactiveComponent, ReactiveConfig, ReactiveDecision
from repro.sim.decisions import Decision, Note, Outcome
from repro.sim.policy import PlacementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass
class LpIntervalLog:
    """Record of one Carrefour-LP interval (introspection for tests)."""

    time_s: float
    conservative: Optional[ConservativeDecision]
    reactive: Optional[ReactiveDecision]
    carrefour_engaged: bool


class CarrefourLpPolicy(PlacementPolicy):
    """Large-page extensions to Carrefour (Algorithm 1)."""

    interval_s = 1.0

    def __init__(
        self,
        conservative: bool = True,
        reactive: bool = True,
        carrefour_config: Optional[CarrefourConfig] = None,
        reactive_config: ReactiveConfig = ReactiveConfig(),
        conservative_config: ConservativeConfig = ConservativeConfig(),
        seed: int = 0,
        name: Optional[str] = None,
        lwp: bool = False,
    ) -> None:
        self.with_conservative = conservative
        self.with_reactive = reactive
        #: Lightweight Profiling (the paper's proposed fix, Section 4.1):
        #: LWP buffers samples in a ring and interrupts only when it is
        #: full, so many more samples can be collected per interval at a
        #: fraction of the per-sample cost.  Denser samples shrink the
        #: reactive component's LAR misestimation on sub-pages.
        self.lwp = lwp
        self.engine = CarrefourEngine(carrefour_config, seed=seed)
        self.conservative = (
            ConservativeComponent(conservative_config) if conservative else None
        )
        self.reactive = (
            ReactiveComponent(reactive_config, seed=seed) if reactive else None
        )
        if name:
            self.name = name
        elif conservative and reactive:
            self.name = "carrefour-lp-lwp" if lwp else "carrefour-lp"
        elif reactive:
            self.name = "reactive-only"
        else:
            self.name = "conservative-only"
        self.interval_log: List[LpIntervalLog] = []

    def setup(self, sim: "Simulation") -> None:
        # Algorithm 1 line 1: start with 2MB allocation and promotion
        # enabled — "it is more practical and involves less overhead to
        # enable large pages in the beginning and disable them later".
        # The conservative-only ablation instead starts from 4KB pages
        # (it models retrofitting THP onto the original Carrefour).
        if self.with_reactive:
            sim.thp.enable_alloc()
            sim.thp.enable_promotion()
        else:
            sim.thp.disable_alloc()
            sim.thp.disable_promotion()
        if self.lwp:
            # Ring-buffered sampling: ~8x the sample density at ~1/5 of
            # the per-sample interrupt cost.
            sim.ibs.rate = min(1.0, sim.ibs.rate * 8.0)
            sim.ibs.cost_cycles_per_sample /= 5.0

    def decide(
        self, sim: "Simulation", samples: IbsSamples, window: CounterBank
    ) -> Generator[Decision, Outcome, None]:
        cons_decision = None
        react_decision = None

        # The components run in algorithm order *within one generator*:
        # the executor applies each yielded decision before the next
        # line runs, so the reactive component sees the THP state the
        # conservative one just set, and the Carrefour table is built
        # only after the reactive splits happened — exactly the old
        # self-mutating sequence.
        if self.conservative is not None:
            cons_decision = yield from self.conservative.decide(sim, window)

        if self.reactive is not None:
            react_decision = yield from self.reactive.decide(sim, samples)

        engaged = self.engine.should_engage(window)
        if engaged:
            table = PageSampleTable.from_samples(
                samples, sim.asp, sim.machine.n_nodes, granularity="backing"
            )
            yield from self.engine.decide_placement(
                table, sim.asp, sim.machine.n_nodes
            )
        else:
            yield Note("carrefour disabled (thresholds)")

        self.interval_log.append(
            LpIntervalLog(
                time_s=sim.sim_time_s,
                conservative=cons_decision,
                reactive=react_decision,
                carrefour_engaged=engaged,
            )
        )
