"""The conservative component of Carrefour-LP (paper Section 3.2.2).

Its job is to *re-enable* large pages once monitoring shows they would
help, using two criteria (Algorithm 1, lines 4-9):

* if the fraction of L2 cache misses caused by page-table walks
  exceeds 5%, enable both 2MB allocation and 2MB promotion — the
  application is TLB-bound and memory-intensive enough that walk
  misses dominate;
* otherwise, if the *maximum* per-core share of time spent in the
  page-fault handler exceeds 5%, enable 2MB allocation only ("there is
  little benefit in promoting the pages on which we had already paid
  the cost of page faults").

The maximum (not average) per-core fault share is used because
page-table lock contention is set by the slowest core holding the lock.

The component is a decider: it yields THP-toggle decisions for the
executor instead of flipping ``sim.thp`` itself, and returns its
:class:`ConservativeDecision` as the generator's return value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.hardware.counters import CounterBank
from repro.sim.decisions import (
    ClearCollapseBlocks,
    Decision,
    Outcome,
    ToggleThpAlloc,
    ToggleThpPromotion,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class ConservativeConfig:
    """Thresholds of the conservative component (both 5% in the paper)."""

    walk_l2_threshold_pct: float = 5.0
    fault_time_threshold_pct: float = 5.0

    def __post_init__(self) -> None:
        if self.walk_l2_threshold_pct < 0 or self.fault_time_threshold_pct < 0:
            raise ConfigurationError("thresholds must be non-negative")


@dataclass
class ConservativeDecision:
    """What the component decided this interval (for logging)."""

    enabled_alloc: bool = False
    enabled_promotion: bool = False
    walk_l2_pct: float = 0.0
    max_fault_pct: float = 0.0


class ConservativeComponent:
    """Re-enables THP when counters show large pages would pay off."""

    def __init__(self, config: ConservativeConfig = ConservativeConfig()) -> None:
        self.config = config

    def decide(
        self, sim: "Simulation", window: CounterBank
    ) -> Generator[Decision, Outcome, ConservativeDecision]:
        """Algorithm 1 lines 4-9 for one monitoring interval."""
        decision = ConservativeDecision(
            walk_l2_pct=window.pct_l2_misses_from_walks(),
            max_fault_pct=window.max_fault_time_fraction(),
        )
        if decision.walk_l2_pct > self.config.walk_l2_threshold_pct:
            yield ToggleThpAlloc(True)
            yield ToggleThpPromotion(True)
            # Lift any MADV_NOHUGEPAGE marks left by earlier splits so
            # khugepaged can actually re-create the large pages.
            yield ClearCollapseBlocks()
            decision.enabled_alloc = True
            decision.enabled_promotion = True
        elif decision.max_fault_pct > self.config.fault_time_threshold_pct:
            yield ToggleThpAlloc(True)
            decision.enabled_alloc = True
        return decision
