"""What-if LAR estimation from IBS samples (paper Section 3.2.1).

"Estimating the LAR for various what-if scenarios (e.g., if a page
were migrated or if large pages were split into regular-sized) is
trivial with IBS samples": the samples carry data addresses and the
accessing node, so we can predict the LAR under the Carrefour-2M
placement rule — single-node pages migrated local, shared pages
interleaved to a random node — both at the current backing granularity
and in the hypothetical where every large page is split into 4KB
pages.

The estimate inherits the samples' statistical error.  In particular,
a 4KB sub-page that happened to collect a single sample looks
"single-node" and is predicted fully local; with sparse sampling this
systematically *over*-estimates the post-split LAR, which is exactly
the failure mode the paper reports for SSCA (predicted 59%, actual
25%) and the reason the conservative component exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.ibs import IbsSamples
from repro.core.metrics import PageSampleTable, sample_lar
from repro.vm.address_space import AddressSpace


@dataclass(frozen=True)
class LarEstimate:
    """Current and predicted LARs for one monitoring interval, percent."""

    current: float
    with_carrefour: float
    with_carrefour_and_split: float
    n_samples: int

    @property
    def carrefour_gain(self) -> float:
        """Predicted LAR improvement from Carrefour placement alone."""
        return self.with_carrefour - self.current

    @property
    def split_gain(self) -> float:
        """Predicted LAR improvement from Carrefour plus splitting."""
        return self.with_carrefour_and_split - self.current


def _placement_lar(table: PageSampleTable, n_nodes: int) -> float:
    """LAR predicted under the Carrefour placement rule for a table.

    Single-node pages migrate to that node: all their sampled accesses
    become local.  Shared pages are interleaved to a random node: each
    access is local with probability 1/n_nodes.
    """
    if table.n_samples == 0:
        return 100.0
    totals = table.totals
    single = table.single_node_mask()
    local = float(totals[single].sum())
    local += float(totals[~single].sum()) / n_nodes
    return 100.0 * local / table.n_samples


def estimate_lar_after_carrefour(
    samples: IbsSamples, address_space: AddressSpace, n_nodes: int
) -> LarEstimate:
    """Full what-if estimate from one interval's samples."""
    if n_nodes <= 0:
        raise ConfigurationError("n_nodes must be positive")
    current = sample_lar(samples)
    backing = PageSampleTable.from_samples(
        samples, address_space, n_nodes, granularity="backing"
    )
    split = PageSampleTable.from_samples(
        samples, address_space, n_nodes, granularity="4k"
    )
    return LarEstimate(
        current=current,
        with_carrefour=_placement_lar(backing, n_nodes),
        with_carrefour_and_split=_placement_lar(split, n_nodes),
        n_samples=int(len(samples)),
    )
