"""Sample tables and metric helpers shared by the Carrefour family.

Everything the policies know comes from IBS samples.  A
:class:`PageSampleTable` groups a batch of samples by *backing page*
(at the page sizes currently in use, or — for what-if estimates — at
4KB granularity regardless of backing) and exposes the per-page,
per-node access counts that drive every placement decision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.ibs import IbsSamples
from repro.units import Samples, SamplesArray
from repro.vm.address_space import AddressSpace


@dataclass
class PageSampleTable:
    """Per-page sample statistics from one monitoring interval.

    Attributes
    ----------
    ids:
        Backing-page ids (or granule ids in 4KB mode), one per page.
    node_counts:
        ``(n_pages, n_nodes)`` samples per page per *accessing* node.
    thread_counts:
        ``(n_pages,)`` number of distinct accessing threads per page.
    n_samples:
        Total samples in the table.
    """

    ids: np.ndarray
    node_counts: SamplesArray
    thread_counts: np.ndarray
    n_samples: Samples
    #: Sampled stores per page (replication eligibility).
    write_counts: SamplesArray = None

    @classmethod
    def from_samples(
        cls,
        samples: IbsSamples,
        address_space: AddressSpace,
        n_nodes: int,
        granularity: str = "backing",
    ) -> "PageSampleTable":
        """Group a sample batch by page.

        ``granularity='backing'`` groups by the page sizes currently in
        use; ``granularity='4k'`` groups by 4KB granule regardless of
        backing (the "what if we split everything" view).
        """
        if granularity not in ("backing", "4k"):
            raise ConfigurationError(f"unknown granularity {granularity!r}")
        if len(samples) == 0:
            return cls(
                ids=np.empty(0, dtype=np.int64),
                node_counts=np.empty((0, n_nodes)),
                thread_counts=np.empty(0, dtype=np.int64),
                n_samples=0,
                write_counts=np.empty(0),
            )
        if granularity == "backing":
            keys, _ = address_space.backing_info(samples.granule)
        else:
            keys = np.asarray(samples.granule, dtype=np.int64)
        ids, inverse = np.unique(keys, return_inverse=True)
        node_counts = np.zeros((ids.size, n_nodes))
        np.add.at(
            node_counts, (inverse, samples.accessing_node.astype(np.int64)), 1.0
        )
        write_counts = np.zeros(ids.size)
        np.add.at(write_counts, inverse, samples.is_write.astype(np.float64))
        # Distinct accessing threads per page, via a packed
        # (page, thread) pair key.  The multiplier must exceed every
        # thread id or pairs from different pages would collide and
        # corrupt the distinct-thread counts, so it widens with the
        # data instead of assuming int16 thread ids.
        threads = samples.thread.astype(np.int64)
        if threads.size and int(threads.min()) < 0:
            raise ConfigurationError("thread ids must be non-negative")
        multiplier = max(65536, int(threads.max()) + 1 if threads.size else 0)
        pair = inverse.astype(np.int64) * multiplier + threads
        unique_pairs = np.unique(pair)
        thread_counts = np.bincount(
            (unique_pairs // multiplier).astype(np.int64), minlength=ids.size
        )
        return cls(
            ids=ids,
            node_counts=node_counts,
            thread_counts=thread_counts,
            n_samples=int(len(samples)),
            write_counts=write_counts,
        )

    @property
    def totals(self) -> SamplesArray:
        """Total samples per page."""
        return self.node_counts.sum(axis=1)

    @property
    def nodes_touching(self) -> np.ndarray:
        """Number of distinct accessing nodes per page."""
        return (self.node_counts > 0).sum(axis=1)

    def single_node_mask(self) -> np.ndarray:
        """Pages whose samples all came from one node."""
        return self.nodes_touching == 1

    def shared_mask(self) -> np.ndarray:
        """Pages sampled from at least two nodes."""
        return self.nodes_touching >= 2

    def hot_mask(self, threshold_pct: float) -> np.ndarray:
        """Pages receiving more than ``threshold_pct`` percent of samples."""
        if self.n_samples == 0:
            return np.zeros(0, dtype=bool)
        return self.totals > self.n_samples * threshold_pct / 100.0

    def read_only_mask(self) -> np.ndarray:
        """Pages with no sampled store (replication candidates)."""
        if self.write_counts is None:
            return np.ones(self.ids.shape, dtype=bool)
        return self.write_counts == 0

    def dominant_nodes(self) -> np.ndarray:
        """Most frequent accessing node per page."""
        if self.ids.size == 0:
            return np.empty(0, dtype=np.int64)
        return np.argmax(self.node_counts, axis=1)


def sample_lar(samples: IbsSamples) -> float:
    """Current local access ratio estimated from samples, percent."""
    if len(samples) == 0:
        return 100.0
    local = np.count_nonzero(samples.accessing_node == samples.home_node)
    return 100.0 * local / len(samples)


def sample_imbalance(samples: IbsSamples, n_nodes: int) -> float:
    """Controller imbalance estimated from samples, percent of mean."""
    if len(samples) == 0:
        return 0.0
    per_node = np.bincount(
        samples.home_node.astype(np.int64), minlength=n_nodes
    ).astype(np.float64)
    mean = per_node.mean()
    if mean <= 0:
        return 0.0
    return 100.0 * per_node.std() / mean
