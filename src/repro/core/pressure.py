"""Memory-pressure response: per-tenant THP throttling and reclaim.

On a loaded NUMA server the frame allocator is shared, so one tenant's
appetite is every tenant's problem: promotion-hungry THP allocations
fragment the pool and demand faults start failing long before *this*
process is at fault.  Linux reacts per-process — kswapd reclaims cold
pages and THP defers to ``madvise`` when compaction keeps failing —
and :class:`MemoryPressurePolicy` models that reaction as a decider:

* below the low free-memory watermark it disables THP allocation
  (:class:`~repro.sim.decisions.ToggleThpAlloc`), stopping this tenant
  from burning contiguous blocks, and yields a
  :class:`~repro.sim.decisions.ReclaimPages` batch of its own coldest
  mapped granules, returning frames to the shared pool;
* once free memory recovers past the high watermark it re-enables THP
  allocation.

Reclaimed pages are not gone — the next access demand-faults them back
in, so over-eager reclaim shows up as fault time, exactly the thrashing
trade-off real watermark tuning faces.  Everything here is a pure
decider (R110): the executor applies the decisions and accounts their
cost.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

import numpy as np

from repro.hardware.counters import CounterBank
from repro.hardware.ibs import IbsSamples
from repro.sim.decisions import (
    Decision,
    Note,
    Outcome,
    ReclaimPages,
    ToggleThpAlloc,
)
from repro.sim.policy import PlacementPolicy
from repro.vm.layout import PAGE_4K

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class MemoryPressurePolicy(PlacementPolicy):
    """Watermark-driven THP throttling + cold-page reclaim."""

    interval_s = 1.0

    def __init__(
        self,
        thp: bool = True,
        low_watermark: float = 0.10,
        high_watermark: float = 0.25,
        batch_granules: int = 4096,
        name: Optional[str] = None,
    ) -> None:
        if not 0.0 <= low_watermark < high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 <= low < high <= 1"
            )
        if batch_granules <= 0:
            raise ValueError("batch_granules must be positive")
        self.thp = thp
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        self.batch_granules = batch_granules
        self.name = name or "pressure-reclaim"
        self._thp_suppressed = False

    def setup(self, sim: "Simulation") -> None:
        if self.thp:
            sim.thp.enable_alloc()
            sim.thp.enable_promotion()
        else:
            sim.thp.disable_alloc()
            sim.thp.disable_promotion()

    def wants_ibs(self) -> bool:
        # Watermarks come from the allocator, victims from the mapping
        # arrays; no sampling needed.
        return False

    @staticmethod
    def _free_fraction(sim: "Simulation") -> float:
        total = sum(
            node.buddy.total_frames * PAGE_4K for node in sim.phys.nodes
        )
        return sim.phys.total_free_bytes / total

    def _victims(self, sim: "Simulation") -> np.ndarray:
        """Highest-address mapped, unreplicated 4KB granules.

        The tail of the address space is the deterministic stand-in for
        "coldest": workload access patterns concentrate on low regions,
        and determinism matters more here than LRU fidelity.
        """
        mapped = np.flatnonzero(
            (sim.asp.node4k >= 0) & ~sim.asp.replicated_4k
        )
        return mapped[-self.batch_granules:]

    def decide(
        self, sim: "Simulation", samples: IbsSamples, window: CounterBank
    ) -> Generator[Decision, Outcome, None]:
        free = self._free_fraction(sim)
        if free < self.low_watermark:
            if not self._thp_suppressed:
                outcome = yield ToggleThpAlloc(False)
                if outcome.applied:
                    self._thp_suppressed = True
            victims = self._victims(sim)
            if victims.size:
                outcome = yield ReclaimPages(victims)
                if outcome.applied:
                    yield Note(
                        f"pressure reclaim: {outcome.count} pages "
                        f"(free fraction {free:.3f})"
                    )
        elif free > self.high_watermark and self._thp_suppressed:
            outcome = yield ToggleThpAlloc(True)
            if outcome.applied:
                self._thp_suppressed = False
