"""Page-table replication as a placement policy (Mitosis-style).

Large pages shrink the data-TLB problem but leave another NUMA blind
spot: the page tables themselves live on one node, so every TLB-miss
walk from any other node crosses the interconnect once per radix level.
Mitosis [Achermann et al., ASPLOS'20] eliminates that cost by keeping a
per-node replica of the page tables and pointing each core's CR3 at the
local copy.

:class:`PtReplicationPolicy` models both sides of that trade:

* ``pt-remote`` turns on page-table NUMA modelling
  (:attr:`~repro.sim.engine.PageTableState.numa_enabled`) and does
  nothing else — threads off the home node pay
  ``hops x hop_latency_cycles x walk_levels`` extra cycles per TLB miss,
  the cost component every other policy here implicitly ignores;
* ``replication`` additionally yields one
  :class:`~repro.sim.decisions.ReplicatePageTables` decision on its
  first interval, removing the penalty at the price of copying the
  table pages to every other node (charged like replication traffic
  through the usual migration cost model).

Because the decision is a typed one, it composes with any other decider
— ``carrefour-2m+replication`` runs Carrefour's data placement and
Mitosis's table placement in one stack.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from repro.hardware.counters import CounterBank
from repro.hardware.ibs import IbsSamples
from repro.sim.decisions import Decision, Outcome, ReplicatePageTables
from repro.sim.policy import PlacementPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class PtReplicationPolicy(PlacementPolicy):
    """Model remote page-table walks; optionally replicate the tables."""

    interval_s = 1.0

    def __init__(self, replicate: bool = True, name: Optional[str] = None) -> None:
        self.replicate = replicate
        self.name = name or ("replication" if replicate else "pt-remote")
        self._done = False

    def setup(self, sim: "Simulation") -> None:
        sim.page_tables.numa_enabled = True

    def wants_ibs(self) -> bool:
        # The decision needs no samples; keep the IBS engine off so the
        # policy's only costs are the walks and the copy itself.
        return False

    def decide(
        self, sim: "Simulation", samples: IbsSamples, window: CounterBank
    ) -> Generator[Decision, Outcome, None]:
        if not self.replicate or self._done:
            return
        outcome = yield ReplicatePageTables()
        if outcome.applied:
            self._done = True
