"""The reactive component of Carrefour-LP (paper Section 3.2.1).

Every monitoring interval it predicts, from the IBS samples, the LAR
that Carrefour's migrate/interleave rule would achieve (a) at the
current page sizes and (b) if all large pages were additionally split
into 4KB pages (Algorithm 1, lines 10-18):

* if Carrefour alone is predicted to improve the LAR by more than 15%,
  splitting is not needed (``SPLIT_PAGES = False``);
* otherwise, if splitting is predicted to buy at least a further 5%,
  ``SPLIT_PAGES = True``;
* when splitting is on (or 2MB allocation is already disabled), all
  *shared* large pages are demoted to 4KB and 2MB allocation is
  disabled.

Independently of the LAR estimates, *hot* large pages — more than 6%
of sampled accesses, i.e. over half of a node's fair share on an
8-node machine — are always split and their constituent 4KB pages
interleaved across nodes (line 19): a single page hotter than that
cannot be balanced by migration no matter where it goes.

The component is a decider: splits, interleaves and THP toggles are
yielded as typed :mod:`repro.sim.decisions` for the executor, and the
:class:`ReactiveDecision` log record is the generator's return value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, TYPE_CHECKING

import numpy as np

from repro._util import rng_for
from repro.errors import ConfigurationError
from repro.hardware.ibs import IbsSamples
from repro.core.lar_estimator import LarEstimate, estimate_lar_after_carrefour
from repro.core.metrics import PageSampleTable
from repro.sim.decisions import (
    ChargeCompute,
    Decision,
    InterleaveRegion,
    Outcome,
    Split1G,
    Split2M,
    ToggleThpAlloc,
    ToggleThpPromotion,
)
from repro.vm.layout import PageSize

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class ReactiveConfig:
    """Thresholds of the reactive component.

    ``carrefour_gain_threshold_pct`` (15%) decides "we can fix it by
    moving pages"; ``split_gain_threshold_pct`` (5%) is the minimum
    predicted benefit that justifies splitting; ``hot_page_pct`` (6%)
    defines a hot page, following footnote 3 of the paper.
    """

    carrefour_gain_threshold_pct: float = 15.0
    split_gain_threshold_pct: float = 5.0
    hot_page_pct: float = 6.0
    compute_s_per_sample: float = 3e-7
    #: After performing shared-page splits, skip further split rounds
    #: for this many intervals.  The LAR estimate is optimistic when
    #: samples are sparse (paper Section 4.1); the cooldown gives the
    #: conservative component and khugepaged time to undo a bad split
    #: instead of thrashing every second (paper Section 4.3 notes the
    #: full algorithm's robustness to transient states).
    split_cooldown_intervals: int = 2
    #: When the cooldown expires, the measured LAR is compared against
    #: the LAR at split time; if splitting did not deliver its promised
    #: gain (a misestimate, as the paper observed on SSCA), further
    #: shared-page splitting is suppressed for this many intervals.
    misprediction_backoff_intervals: int = 6

    def __post_init__(self) -> None:
        if self.split_gain_threshold_pct < 0 or self.carrefour_gain_threshold_pct < 0:
            raise ConfigurationError("gain thresholds must be non-negative")
        if not 0 < self.hot_page_pct <= 100:
            raise ConfigurationError("hot_page_pct must be in (0, 100]")


@dataclass
class ReactiveDecision:
    """Outcome of one reactive step (for logging and tests)."""

    estimate: Optional[LarEstimate] = None
    split_pages: bool = False
    shared_pages_split: int = 0
    hot_pages_split: int = 0
    granules_interleaved: int = 0
    notes: List[str] = field(default_factory=list)


class ReactiveComponent:
    """Splits large pages when placement alone cannot fix NUMA issues."""

    def __init__(
        self, config: ReactiveConfig = ReactiveConfig(), seed: int = 0
    ) -> None:
        self.config = config
        self.split_pages = False
        self._rng = rng_for(seed, "reactive")
        self._cooldown = 0
        self._backoff = 0
        self._lar_at_split: Optional[float] = None

    def decide(
        self, sim: "Simulation", samples: IbsSamples
    ) -> Generator[Decision, Outcome, ReactiveDecision]:
        """Algorithm 1 lines 10-19 for one monitoring interval."""
        decision = ReactiveDecision(split_pages=self.split_pages)
        yield ChargeCompute(len(samples) * self.config.compute_s_per_sample)
        if len(samples) == 0:
            decision.notes.append("no samples")
            return decision

        estimate = estimate_lar_after_carrefour(
            samples, sim.asp, sim.machine.n_nodes
        )
        decision.estimate = estimate
        if estimate.carrefour_gain > self.config.carrefour_gain_threshold_pct:
            self.split_pages = False
        elif estimate.split_gain > self.config.split_gain_threshold_pct:
            self.split_pages = True
        decision.split_pages = self.split_pages

        table = PageSampleTable.from_samples(
            samples, sim.asp, sim.machine.n_nodes, granularity="backing"
        )
        large = np.array(
            [
                sim.asp.backing_id_kind(int(pid)) is not PageSize.SIZE_4K
                for pid in table.ids
            ],
            dtype=bool,
        )

        if self._cooldown > 0:
            self._cooldown -= 1
            decision.notes.append("split cooldown")
            if self._cooldown == 0 and self._lar_at_split is not None:
                # Post-split validation: did splitting deliver?
                gain = estimate.current - self._lar_at_split
                if gain < self.config.split_gain_threshold_pct:
                    self.split_pages = False
                    decision.split_pages = False
                    self._backoff = self.config.misprediction_backoff_intervals
                    decision.notes.append(
                        f"split misprediction (gain {gain:+.1f}%), backing off"
                    )
                self._lar_at_split = None
        elif self._backoff > 0:
            self._backoff -= 1
            decision.notes.append("split backoff")
        elif self.split_pages or not sim.thp.alloc_enabled:
            shared_large = large & table.shared_mask()
            for pid in table.ids[shared_large]:
                pid = int(pid)
                if not sim.asp.backing_is_live(pid):
                    continue
                if pid >= (1 << 41):  # 1GB id space
                    yield Split1G(pid)
                else:
                    yield Split2M(pid)
                decision.shared_pages_split += 1
            # Disabling 2MB allocation also parks khugepaged: in Linux,
            # setting THP enabled=never stops both paths.
            yield ToggleThpAlloc(False)
            yield ToggleThpPromotion(False)
            if decision.shared_pages_split:
                self._cooldown = self.config.split_cooldown_intervals
                self._lar_at_split = estimate.current

        # Hot large pages are split and interleaved regardless.
        hot_large = large & table.hot_mask(self.config.hot_page_pct)
        for pid in table.ids[hot_large]:
            pid = int(pid)
            if not sim.asp.backing_is_live(pid):
                continue  # already split above
            granules = sim.asp.granules_of_backing(pid)
            if pid >= (1 << 41):
                yield Split1G(pid)
            else:
                yield Split2M(pid)
            decision.hot_pages_split += 1
            # Interleave the constituent 4KB pages round-robin across
            # nodes, starting at a random offset.
            start = int(self._rng.integers(0, sim.machine.n_nodes))
            targets = (start + np.arange(granules.size)) % sim.machine.n_nodes
            yield InterleaveRegion(granules, targets, page_id=pid)
            decision.granules_interleaved += int(granules.size)
        if decision.hot_pages_split:
            decision.notes.append(
                f"split+interleaved {decision.hot_pages_split} hot pages"
            )
        return decision
