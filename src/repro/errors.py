"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine, workload or policy was configured inconsistently."""


class AllocationError(ReproError):
    """The physical frame allocator could not satisfy a request."""


class MappingError(ReproError):
    """An address-space operation violated a mapping invariant."""


class SimulationError(ReproError):
    """The simulation engine reached an invalid state."""


class UnknownWorkloadError(ReproError, KeyError):
    """A benchmark name was not found in the workload registry."""


class UnknownPolicyError(ReproError, KeyError):
    """A policy name was not found in the policy registry."""
