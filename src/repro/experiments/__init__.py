"""Experiment drivers that regenerate every table and figure.

Each experiment in :data:`repro.experiments.experiments.EXPERIMENTS`
returns a :class:`repro.experiments.reporting.Report` whose rows mirror
the corresponding paper artifact (Figures 1-5, Tables 1-3, the
Section 4.2 overhead assessment and the Section 4.4 very-large-page
study).
"""

from repro.experiments.cache import ResultCache, cache_enabled, run_fingerprint
from repro.experiments.configs import POLICIES, make_policy
from repro.experiments.parallel import (
    GridRunner,
    RunSpec,
    backend_choice,
    prefetch,
    resolve_jobs,
)
from repro.experiments.runner import RunSettings, improvement, run_benchmark
from repro.experiments.reporting import Report
from repro.experiments.experiments import EXPERIMENTS, run_experiment

__all__ = [
    "POLICIES",
    "make_policy",
    "RunSettings",
    "run_benchmark",
    "improvement",
    "Report",
    "EXPERIMENTS",
    "run_experiment",
    "GridRunner",
    "RunSpec",
    "prefetch",
    "backend_choice",
    "resolve_jobs",
    "ResultCache",
    "cache_enabled",
    "run_fingerprint",
]
