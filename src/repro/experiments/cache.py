"""Persistent on-disk cache for simulation results.

Simulations are deterministic functions of (workload, machine, policy,
backing, seed, complete :class:`~repro.sim.config.SimConfig`), so their
results can be reused across processes and sessions.  Entries are
pickled :class:`~repro.sim.results.SimulationResult` objects stored
under ``~/.cache/repro`` (override with ``REPRO_CACHE_DIR``), keyed by
a SHA-256 fingerprint of the *full* run identity plus a package version
stamp — bumping :data:`repro.__version__` invalidates every entry, so
model changes can never resurrect stale numbers.

Writes are atomic (tmp file + :func:`os.replace`) so a crashed or
concurrent run can never leave a torn entry; unreadable entries are
treated as misses and deleted, never raised.

Set ``REPRO_CACHE=0`` (or ``off``/``false``/``no``) to disable the
persistent layer entirely; the in-process memo in
:mod:`repro.experiments.runner` is unaffected.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import logging
import os
import pathlib
import pickle
import tempfile
from dataclasses import dataclass
from typing import Optional

logger = logging.getLogger(__name__)

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.results import SimulationResult

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable disabling the persistent cache ("0"/"off"/...).
CACHE_ENABLE_ENV = "REPRO_CACHE"

_DISABLE_VALUES = {"0", "off", "false", "no"}


def version_stamp() -> str:
    """The package version folded into every cache key.

    Imported lazily so this module does not cycle with ``repro``'s
    package ``__init__`` (which imports the runner, which imports us).
    """
    from repro import __version__

    return __version__


def cache_enabled() -> bool:
    """Whether the persistent layer is enabled (``REPRO_CACHE`` env)."""
    return os.environ.get(CACHE_ENABLE_ENV, "1").strip().lower() not in _DISABLE_VALUES


def cache_root() -> pathlib.Path:
    """The cache directory (``REPRO_CACHE_DIR`` or ``~/.cache/repro``)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg).expanduser() if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


def _canonical(obj: object) -> object:
    """Reduce a value to primitives with a stable, unambiguous encoding.

    Dataclasses may name fields that cannot influence results (e.g.
    ``SimConfig.check_invariants``) in a ``_CACHE_KEY_EXCLUDE`` class
    attribute; those are left out of the encoding so toggling them
    neither misses the cache nor resurrects different numbers.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        excluded = getattr(type(obj), "_CACHE_KEY_EXCLUDE", frozenset())
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.name not in excluded
        }
        return {"__class__": type(obj).__name__, **fields}
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, np.ndarray):
        return [obj.dtype.str, obj.shape, obj.tolist()]
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {repr(k): _canonical(v) for k, v in sorted(obj.items(), key=repr)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def run_fingerprint(
    workload: str,
    machine: str,
    policy: str,
    backing_1g: bool,
    config: SimConfig,
    seed: int,
    stamp: Optional[str] = None,
) -> str:
    """SHA-256 hex key for one run, covering the *complete* config.

    Every :class:`SimConfig` field participates — including
    ``max_epochs``, ``khugepaged_batch``, ``ibs_cost_cycles`` and
    ``track_access_stats``, which the old tuple key omitted — plus the
    nested hardware cost models and a package version stamp.
    """
    identity = {
        "stamp": stamp if stamp is not None else version_stamp(),
        "workload": workload,
        "machine": machine,
        "policy": policy,
        "backing_1g": bool(backing_1g),
        "seed": int(seed),
        "config": _canonical(config),
    }
    text = repr(_canonical(identity))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def scenario_fingerprint(
    scenario: object,
    config: SimConfig,
    stamp: Optional[str] = None,
) -> str:
    """SHA-256 hex key for one multi-tenant scenario run.

    Same contract as :func:`run_fingerprint` but keyed on the complete
    :class:`~repro.scenarios.config.ScenarioConfig` (any dataclass
    canonicalises) plus the base :class:`SimConfig` every tenant's
    per-tenant config derives from.  The ``kind`` marker keeps scenario
    keys disjoint from single-run keys even under identical field
    values.
    """
    identity = {
        "stamp": stamp if stamp is not None else version_stamp(),
        "kind": "scenario",
        "scenario": _canonical(scenario),
        "config": _canonical(config),
    }
    text = repr(_canonical(identity))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def normalized_config(config: SimConfig) -> SimConfig:
    """The config with every ``_CACHE_KEY_EXCLUDE`` field at its default.

    Used for in-process memo keys: two configs that differ only in
    result-neutral fields (e.g. ``check_invariants``) must share one
    memo entry, exactly as they share one on-disk fingerprint.
    """
    excluded = getattr(type(config), "_CACHE_KEY_EXCLUDE", frozenset())
    overrides = {
        f.name: f.default
        for f in dataclasses.fields(config)
        if f.name in excluded and f.default is not dataclasses.MISSING
    }
    if not overrides:
        return config
    return dataclasses.replace(config, **overrides)


@dataclass(frozen=True)
class CacheStats:
    """Summary of the persistent cache contents."""

    root: str
    n_entries: int
    total_bytes: int
    enabled: bool

    def describe(self) -> str:
        """Human-readable one-paragraph summary."""
        from repro._util import human_bytes

        state = "enabled" if self.enabled else "disabled (REPRO_CACHE)"
        return (
            f"cache root: {self.root} [{state}]\n"
            f"entries:    {self.n_entries}\n"
            f"size:       {human_bytes(self.total_bytes)}"
        )


class ResultCache:
    """Pickle-per-entry result store with atomic writes.

    One file per fingerprint: ``<root>/<hex>.pkl``.  The class never
    raises on a bad entry — corruption, version skew in the pickle
    stream, or a vanished file all read as a miss (and the offending
    file is removed so it cannot mask future problems).
    """

    SUFFIX = ".pkl"

    def __init__(self, root: Optional[pathlib.Path] = None) -> None:
        self.root = pathlib.Path(root) if root is not None else cache_root()

    @classmethod
    def default(cls) -> "ResultCache":
        """The cache at the environment-selected location."""
        return cls()

    def path_for(self, key: str) -> pathlib.Path:
        """Entry path for a fingerprint key."""
        return self.root / f"{key}{self.SUFFIX}"

    def get(
        self, key: str, expect: type = SimulationResult
    ) -> Optional[SimulationResult]:
        """Load a cached result, or ``None`` on miss/corruption.

        ``expect`` is the result type the caller will unpickle — the
        scenario runner stores :class:`ScenarioResult` objects in the
        same store, and a type mismatch (a fingerprint collision or a
        stale entry from another caller) must read as a miss, never as
        a wrongly-typed hit.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, pickle.UnpicklingError,
                EOFError, AttributeError, ImportError, IndexError) as exc:
            # Torn write from an old crash, disk corruption, or an
            # incompatible pickle stream: drop the entry and re-run.
            logger.debug("dropping unreadable cache entry %s: %r", path, exc)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(result, expect):
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store a result atomically; silently skips on I/O failure."""
        path = self.path_for(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=".tmp-", suffix=self.SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache dir must not break the run.
            pass

    def entries(self) -> list:
        """Paths of all live entries."""
        if not self.root.is_dir():
            return []
        return sorted(
            p
            for p in self.root.iterdir()
            if p.suffix == self.SUFFIX and not p.name.startswith(".tmp-")
        )

    def stats(self) -> CacheStats:
        """Entry count and total size of the store."""
        entries = self.entries()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheStats(
            root=str(self.root),
            n_entries=len(entries),
            total_bytes=total,
            enabled=cache_enabled(),
        )

    def clear(self) -> int:
        """Delete every entry (and stale tmp files); returns the count."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.iterdir():
            if path.suffix != self.SUFFIX:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            if not path.name.startswith(".tmp-"):
                removed += 1
        return removed
