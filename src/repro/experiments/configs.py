"""Policy registry: the placement configurations the paper evaluates."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import UnknownPolicyError
from repro.core.autonuma import AutoNumaPolicy
from repro.core.carrefour import CarrefourPolicy
from repro.core.carrefour_lp import CarrefourLpPolicy
from repro.sim.policy import LinuxPolicy, PlacementPolicy

#: Factories for every policy configuration in the evaluation:
#:
#: ``linux-4k``
#:     Default Linux with THP off — the paper's baseline ("Linux").
#: ``thp``
#:     Linux with transparent huge pages ("THP").
#: ``carrefour-4k``
#:     The original Carrefour on 4KB pages.
#: ``carrefour-2m``
#:     Carrefour run in the THP kernel ("Carrefour-2M").
#: ``carrefour-lp``
#:     Algorithm 1: Carrefour-2M + reactive + conservative.
#: ``reactive-only``
#:     Carrefour-2M plus the reactive component (Figure 4 ablation).
#: ``conservative-only``
#:     4KB Carrefour plus the conservative component (Figure 4 ablation).
#: ``carrefour-lp-lwp``
#:     Carrefour-LP with LWP-style ring-buffered sampling — the fix the
#:     paper proposes for the reactive component's LAR misestimation
#:     (Section 4.1/4.3), implemented here as an extension experiment.
#: ``autonuma`` / ``autonuma-4k``
#:     Linux NUMA balancing (hint-fault migrate-to-accessor) with THP
#:     on/off — the mainline alternative, which cannot split pages.
POLICIES: Dict[str, Callable[[int], PlacementPolicy]] = {
    "linux-4k": lambda seed: LinuxPolicy(thp=False),
    "thp": lambda seed: LinuxPolicy(thp=True),
    "carrefour-4k": lambda seed: CarrefourPolicy(thp=False, seed=seed),
    "carrefour-2m": lambda seed: CarrefourPolicy(thp=True, seed=seed),
    "carrefour-lp": lambda seed: CarrefourLpPolicy(seed=seed),
    "reactive-only": lambda seed: CarrefourLpPolicy(conservative=False, seed=seed),
    "conservative-only": lambda seed: CarrefourLpPolicy(reactive=False, seed=seed),
    "carrefour-lp-lwp": lambda seed: CarrefourLpPolicy(seed=seed, lwp=True),
    "autonuma": lambda seed: AutoNumaPolicy(thp=True),
    "autonuma-4k": lambda seed: AutoNumaPolicy(thp=False),
    "interleave-4k": lambda seed: LinuxPolicy(thp=False, interleave=True),
    "interleave-thp": lambda seed: LinuxPolicy(thp=True, interleave=True),
}


def make_policy(name: str, seed: int = 0) -> PlacementPolicy:
    """Instantiate a policy configuration by name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise UnknownPolicyError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
    return factory(seed)
