"""Policy registry: the placement configurations the paper evaluates."""

from __future__ import annotations

import difflib
import re
from pathlib import Path
from typing import Callable, Dict, List

from repro.errors import ConfigurationError, UnknownPolicyError
from repro.core.autonuma import AutoNumaPolicy
from repro.core.carrefour import CarrefourPolicy
from repro.core.carrefour_lp import CarrefourLpPolicy
from repro.core.pressure import MemoryPressurePolicy
from repro.core.pt_replication import PtReplicationPolicy
from repro.sim.policy import LinuxPolicy, PlacementPolicy, PolicyStack

#: Factories for every policy configuration in the evaluation:
#:
#: ``linux-4k``
#:     Default Linux with THP off — the paper's baseline ("Linux").
#: ``thp``
#:     Linux with transparent huge pages ("THP").
#: ``carrefour-4k``
#:     The original Carrefour on 4KB pages.
#: ``carrefour-2m``
#:     Carrefour run in the THP kernel ("Carrefour-2M").
#: ``carrefour-lp``
#:     Algorithm 1: Carrefour-2M + reactive + conservative.
#: ``reactive-only``
#:     Carrefour-2M plus the reactive component (Figure 4 ablation).
#: ``conservative-only``
#:     4KB Carrefour plus the conservative component (Figure 4 ablation).
#: ``carrefour-lp-lwp``
#:     Carrefour-LP with LWP-style ring-buffered sampling — the fix the
#:     paper proposes for the reactive component's LAR misestimation
#:     (Section 4.1/4.3), implemented here as an extension experiment.
#: ``autonuma`` / ``autonuma-4k``
#:     Linux NUMA balancing (hint-fault migrate-to-accessor) with THP
#:     on/off — the mainline alternative, which cannot split pages.
#: ``interleave-4k`` / ``interleave-thp``
#:     numactl-style round-robin allocation with THP off/on — the
#:     manual remedy that trades locality for balance.
#: ``pt-remote``
#:     THP plus page-table NUMA modelling: remote threads pay
#:     interconnect hops on every TLB-miss walk level (the cost the
#:     other configs implicitly ignore).
#: ``replication``
#:     Mitosis-style page-table replication: same walk modelling, but
#:     the tables are copied to every node on the first interval, making
#:     all walks local again (extension experiment).
#: ``pressure-reclaim``
#:     THP plus watermark-driven memory-pressure response: below the
#:     low free-memory watermark the tenant disables THP allocation and
#:     reclaims batches of its coldest pages back to the (shared)
#:     allocator, re-enabling THP once free memory recovers — the
#:     kswapd-style behaviour colocation scenarios exercise.
POLICIES: Dict[str, Callable[[int], PlacementPolicy]] = {
    "linux-4k": lambda seed: LinuxPolicy(thp=False),
    "thp": lambda seed: LinuxPolicy(thp=True),
    "carrefour-4k": lambda seed: CarrefourPolicy(thp=False, seed=seed),
    "carrefour-2m": lambda seed: CarrefourPolicy(thp=True, seed=seed),
    "carrefour-lp": lambda seed: CarrefourLpPolicy(seed=seed),
    "reactive-only": lambda seed: CarrefourLpPolicy(conservative=False, seed=seed),
    "conservative-only": lambda seed: CarrefourLpPolicy(reactive=False, seed=seed),
    "carrefour-lp-lwp": lambda seed: CarrefourLpPolicy(seed=seed, lwp=True),
    "autonuma": lambda seed: AutoNumaPolicy(thp=True),
    "autonuma-4k": lambda seed: AutoNumaPolicy(thp=False),
    "interleave-4k": lambda seed: LinuxPolicy(thp=False, interleave=True),
    "interleave-thp": lambda seed: LinuxPolicy(thp=True, interleave=True),
    "pt-remote": lambda seed: PtReplicationPolicy(replicate=False),
    "replication": lambda seed: PtReplicationPolicy(replicate=True),
    "pressure-reclaim": lambda seed: MemoryPressurePolicy(thp=True),
}


def _make_single(name: str, seed: int) -> PlacementPolicy:
    try:
        factory = POLICIES[name]
    except KeyError:
        close = difflib.get_close_matches(name, POLICIES, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise UnknownPolicyError(
            f"unknown policy {name!r}{hint}; available: {sorted(POLICIES)}"
        ) from None
    return factory(seed)


def make_policy(name: str, seed: int = 0) -> PlacementPolicy:
    """Instantiate a policy configuration by name.

    ``"a+b"`` composes registry entries into a :class:`PolicyStack`
    running both deciders each interval (e.g.
    ``"carrefour-2m+replication"``); decision conflicts between members
    are resolved first-member-wins by the executor.
    """
    if "+" not in name:
        return _make_single(name, seed)
    parts = [part.strip() for part in name.split("+")]
    if any(not part for part in parts):
        raise ConfigurationError(f"empty member in policy stack {name!r}")
    if len(set(parts)) != len(parts):
        raise ConfigurationError(f"duplicate member in policy stack {name!r}")
    members = [_make_single(part, seed) for part in parts]
    return PolicyStack(members, name=name)


def policy_descriptions() -> Dict[str, str]:
    """One-line description per registry entry, from the docs above.

    Parsed out of this module's ``#:`` block so ``repro policies`` and
    the documentation can never drift apart.
    """
    lines = Path(__file__).read_text(encoding="utf-8").splitlines()
    docs: Dict[str, List[str]] = {}
    current: List[str] = []
    started = False
    for line in lines:
        if not line.startswith("#:"):
            if started:
                break
            continue
        text = line[2:].strip()
        if text.startswith("``"):
            started = True
            names = re.findall(r"``([^`]+)``", text)
            current = [n for n in names if n in POLICIES]
            for n in current:
                docs[n] = []
        elif started and current and text:
            for n in current:
                docs[n].append(text)
    return {
        name: " ".join(docs.get(name, [])) or "(undocumented)"
        for name in POLICIES
    }
