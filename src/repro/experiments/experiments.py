"""One driver per paper artifact (Figures 1-5, Tables 1-3, §4.2, §4.4).

Every driver takes :class:`repro.experiments.runner.RunSettings` and
returns a :class:`repro.experiments.reporting.Report` whose rows mirror
the paper's layout.  Absolute numbers are not expected to match the
authors' hardware; the shape — who wins, roughly by how much, which
metric moves in which direction — is the reproduction target (see
``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.experiments.parallel import RunSpec, prefetch
from repro.experiments.reporting import Report
from repro.experiments.runner import RunSettings, improvement, run_benchmark
from repro.workloads.registry import AFFECTED_SET, FIGURE1_ORDER, UNAFFECTED_SET

MACHINES = ("A", "B")


def _fmt(v: float) -> str:
    return f"{v:+.1f}"


def _grid(
    workloads: Iterable[str],
    machines: Iterable[str],
    policies: Iterable[str],
    backing_1g: bool = False,
) -> List[RunSpec]:
    """Cross-product run grid for a figure/table batch."""
    return [
        RunSpec(wl, machine, policy, backing_1g)
        for wl in workloads
        for machine in machines
        for policy in policies
    ]


def figure1(settings: Optional[RunSettings] = None) -> Report:
    """Figure 1: THP performance improvement over Linux, both machines."""
    settings = settings or RunSettings()
    prefetch(_grid(FIGURE1_ORDER, MACHINES, ["thp", "linux-4k"]), settings)
    rows = []
    data: Dict[str, Dict[str, float]] = {m: {} for m in MACHINES}
    for wl in FIGURE1_ORDER:
        row = [wl]
        for machine in MACHINES:
            imp = improvement(wl, machine, "thp", "linux-4k", settings)
            data[machine][wl] = imp
            row.append(_fmt(imp))
        rows.append(row)
    return Report(
        experiment_id="figure1",
        title="THP improvement over default Linux (%, per machine)",
        headers=["benchmark", "machine A", "machine B"],
        rows=rows,
        data=data,
        notes=[
            "Paper: gains up to +109% (WC on B), losses down to -43% (CG.D on B);"
            " CG, UA and SPECjbb are hurt by THP."
        ],
    )


_TABLE1_CASES = [
    ("CG.D", "B"),
    ("UA.C", "B"),
    ("WC", "B"),
    ("SSCA.20", "A"),
    ("SPECjbb", "A"),
]


def table1(settings: Optional[RunSettings] = None) -> Report:
    """Table 1: detailed Linux-vs-THP profile of five applications."""
    settings = settings or RunSettings()
    prefetch(
        [
            RunSpec(wl, machine, policy)
            for wl, machine in _TABLE1_CASES
            for policy in ("linux-4k", "thp")
        ],
        settings,
    )
    rows = []
    data = {}
    for wl, machine in _TABLE1_CASES:
        linux = run_benchmark(wl, machine, "linux-4k", settings).metrics()
        thp = run_benchmark(wl, machine, "thp", settings).metrics()
        imp = thp.improvement_over(linux)
        rows.append(
            [
                f"{wl} ({machine})",
                _fmt(imp),
                f"{linux.fault_time_total_s * 1e3:.0f}ms ({linux.max_fault_pct:.1f}%)",
                f"{thp.fault_time_total_s * 1e3:.0f}ms ({thp.max_fault_pct:.1f}%)",
                f"{linux.pct_l2_walk:.0f}",
                f"{thp.pct_l2_walk:.0f}",
                f"{linux.lar_pct:.0f}",
                f"{thp.lar_pct:.0f}",
                f"{linux.imbalance_pct:.0f}",
                f"{thp.imbalance_pct:.0f}",
            ]
        )
        data[f"{wl}@{machine}"] = {"linux": linux, "thp": thp, "improvement": imp}
    return Report(
        experiment_id="table1",
        title="Detailed analysis (Linux vs THP)",
        headers=[
            "benchmark",
            "perf +%",
            "fault Linux",
            "fault THP",
            "L2walk% Linux",
            "L2walk% THP",
            "LAR Linux",
            "LAR THP",
            "imb Linux",
            "imb THP",
        ],
        rows=rows,
        data=data,
        notes=[
            "Paper: WC's fault time halves under THP; SSCA's walk-induced L2"
            " misses drop 15%->2%; CG.D's imbalance jumps 1%->59%; UA.C's LAR"
            " falls 88%->66%."
        ],
    )


def _policy_figure(
    experiment_id: str,
    title: str,
    workloads: List[str],
    policies: List[str],
    baseline: str,
    settings: Optional[RunSettings],
    notes: List[str],
) -> Report:
    settings = settings or RunSettings()
    prefetch(_grid(workloads, MACHINES, list(policies) + [baseline]), settings)
    rows = []
    data: Dict[str, Dict[str, Dict[str, float]]] = {m: {} for m in MACHINES}
    for wl in workloads:
        row = [wl]
        for machine in MACHINES:
            per_policy = {}
            for policy in policies:
                imp = improvement(wl, machine, policy, baseline, settings)
                per_policy[policy] = imp
                row.append(_fmt(imp))
            data[machine][wl] = per_policy
        rows.append(row)
    headers = ["benchmark"]
    for machine in MACHINES:
        headers.extend(f"{p} ({machine})" for p in policies)
    return Report(
        experiment_id=experiment_id,
        title=title,
        headers=headers,
        rows=rows,
        data=data,
        notes=notes,
    )


def figure2(settings: Optional[RunSettings] = None) -> Report:
    """Figure 2: Carrefour-2M vs THP on the NUMA-affected applications."""
    return _policy_figure(
        "figure2",
        "THP and Carrefour-2M improvement over Linux (%, affected apps)",
        AFFECTED_SET,
        ["thp", "carrefour-2m"],
        "linux-4k",
        settings,
        [
            "Paper: Carrefour-2M fixes SPECjbb and SSCA but fails on CG.D"
            " (hot pages) and UA (false sharing)."
        ],
    )


def figure3(settings: Optional[RunSettings] = None) -> Report:
    """Figure 3: Carrefour-LP vs THP on the NUMA-affected applications."""
    return _policy_figure(
        "figure3",
        "THP and Carrefour-LP improvement over Linux (%, affected apps)",
        AFFECTED_SET,
        ["thp", "carrefour-lp"],
        "linux-4k",
        settings,
        [
            "Paper: Carrefour-LP restores CG.D/UA.B/UA.C, improves SSCA and"
            " SPECjbb, and does not significantly hurt the rest."
        ],
    )


def figure4(settings: Optional[RunSettings] = None) -> Report:
    """Figure 4: component breakdown, improvement over Linux *with THP*."""
    return _policy_figure(
        "figure4",
        "Carrefour-2M / conservative / reactive / Carrefour-LP over THP (%)",
        AFFECTED_SET,
        ["carrefour-2m", "conservative-only", "reactive-only", "carrefour-lp"],
        "thp",
        settings,
        [
            "Paper: enabling both components (Carrefour-LP) is always the best"
            " or close; conservative-only starts from 4KB pages and misses"
            " early THP benefit; reactive-only can mis-split (SSCA)."
        ],
    )


_TABLE2_WORKLOADS = ["SPECjbb", "CG.D", "UA.B"]
_TABLE2_POLICIES = ["linux-4k", "thp", "carrefour-2m"]


def table2(settings: Optional[RunSettings] = None) -> Report:
    """Table 2: PAMUP / NHP / PSP / imbalance / LAR on machine A."""
    settings = settings or RunSettings()
    prefetch(_grid(_TABLE2_WORKLOADS, ["A"], _TABLE2_POLICIES), settings)
    rows = []
    data = {}
    for wl in _TABLE2_WORKLOADS:
        per_policy = {}
        for policy in _TABLE2_POLICIES:
            m = run_benchmark(wl, "A", policy, settings).metrics()
            per_policy[policy] = m
            rows.append(
                [
                    wl,
                    policy,
                    f"{m.pamup_pct:.1f}",
                    str(m.n_hot_pages),
                    f"{m.psp_pct:.0f}",
                    f"{m.imbalance_pct:.0f}",
                    f"{m.lar_pct:.0f}",
                ]
            )
        data[wl] = per_policy
    return Report(
        experiment_id="table2",
        title="Hot-page and sharing metrics, machine A",
        headers=["benchmark", "policy", "PAMUP%", "NHP", "PSP%", "imb%", "LAR%"],
        rows=rows,
        data=data,
        notes=[
            "Paper: CG.D gains 3 hot pages under THP (PAMUP 0%->8%) that"
            " Carrefour-2M cannot balance; UA.B's PSP explodes 16%->70%"
            " so Carrefour-2M interleaves and LAR stays low."
        ],
    )


_TABLE3_CASES = [("CG.D", "B"), ("UA.B", "A"), ("UA.C", "B")]
_TABLE3_POLICIES = ["linux-4k", "thp", "carrefour-2m", "carrefour-lp"]


def table3(settings: Optional[RunSettings] = None) -> Report:
    """Table 3: LAR and imbalance across the four policies."""
    settings = settings or RunSettings()
    prefetch(
        [
            RunSpec(wl, machine, policy)
            for wl, machine in _TABLE3_CASES
            for policy in _TABLE3_POLICIES
        ],
        settings,
    )
    rows = []
    data = {}
    for wl, machine in _TABLE3_CASES:
        lar_row = [f"{wl} ({machine})"]
        imb_row = [""]
        per_policy = {}
        for policy in _TABLE3_POLICIES:
            result = run_benchmark(wl, machine, policy, settings)
            # Steady-state profile: the paper's runs are long relative
            # to the daemon's convergence, so their whole-run numbers
            # are effectively steady-state.
            entry = {
                "lar": result.steady_lar(),
                "imbalance": result.steady_imbalance(),
            }
            per_policy[policy] = entry
            lar_row.append(f"LAR {entry['lar']:.0f}")
            imb_row.append(f"imb {entry['imbalance']:.0f}")
        rows.append(lar_row)
        rows.append(imb_row)
        data[f"{wl}@{machine}"] = per_policy
    return Report(
        experiment_id="table3",
        title="NUMA metrics under each policy (steady state)",
        headers=["benchmark"] + _TABLE3_POLICIES,
        rows=rows,
        data=data,
        notes=[
            "Paper: Carrefour-LP restores UA's LAR (~60% -> ~85%) by"
            " splitting and CG.D's balance (imb 59-69% -> 3%).",
            "Metrics are steady-state (first 30% of epochs skipped) to"
            " exclude the daemon's convergence transient.",
        ],
    )


def figure5(settings: Optional[RunSettings] = None) -> Report:
    """Figure 5: THP and Carrefour-LP on the unaffected applications."""
    return _policy_figure(
        "figure5",
        "THP and Carrefour-LP improvement over Linux (%, unaffected apps)",
        UNAFFECTED_SET,
        ["thp", "carrefour-lp"],
        "linux-4k",
        settings,
        [
            "Paper: Carrefour-LP's overhead does not significantly hurt these"
            " apps; EP.C, SP.B and pca improve a lot because they had NUMA"
            " issues to begin with."
        ],
    )


def overhead(settings: Optional[RunSettings] = None) -> Report:
    """Section 4.2: Carrefour-LP overhead vs reactive / Carrefour-2M / Linux."""
    settings = settings or RunSettings()
    prefetch(
        _grid(
            FIGURE1_ORDER,
            MACHINES,
            ["carrefour-lp", "reactive-only", "carrefour-2m", "linux-4k"],
        ),
        settings,
    )
    rows = []
    data: Dict[str, Dict[str, Dict[str, float]]] = {m: {} for m in MACHINES}
    for wl in FIGURE1_ORDER:
        row = [wl]
        for machine in MACHINES:
            lp = run_benchmark(wl, machine, "carrefour-lp", settings)
            entries = {}
            for other in ("reactive-only", "carrefour-2m", "linux-4k"):
                base = run_benchmark(wl, machine, other, settings)
                # Overhead: how much *slower* LP is than the alternative
                # (positive = LP costs time; negative = LP is faster).
                entries[other] = (
                    (lp.runtime_s / base.runtime_s) - 1.0
                ) * 100.0
            data[machine][wl] = entries
            row.extend(f"{entries[o]:+.1f}" for o in ("reactive-only", "carrefour-2m", "linux-4k"))
        rows.append(row)
    headers = ["benchmark"]
    for machine in MACHINES:
        headers.extend(
            f"vs {o} ({machine})" for o in ("reactive", "carr-2m", "linux-4k")
        )
    return Report(
        experiment_id="overhead",
        title="Carrefour-LP runtime overhead (%; positive = LP slower)",
        headers=headers,
        rows=rows,
        data=data,
        notes=[
            "Paper: overhead vs the reactive approach is 1-2% (3.2% worst);"
            " vs Carrefour-2M below 2% on average; vs Linux-4K below 3%"
            " except FT, IS and LU where 2MB-page migration costs show."
        ],
    )


_VERYLARGE_WORKLOADS = ["SSCA.20", "streamcluster"]


def verylarge(settings: Optional[RunSettings] = None) -> Report:
    """Section 4.4: 1GB pages on SSCA and streamcluster (machine B)."""
    settings = settings or RunSettings()
    prefetch(
        [
            spec
            for wl in _VERYLARGE_WORKLOADS
            for spec in (
                RunSpec(wl, "B", "linux-4k"),
                RunSpec(wl, "B", "thp"),
                RunSpec(wl, "B", "linux-4k", backing_1g=True),
                RunSpec(wl, "B", "carrefour-lp", backing_1g=True),
            )
        ],
        settings,
    )
    rows = []
    data = {}
    for wl in _VERYLARGE_WORKLOADS:
        base = run_benchmark(wl, "B", "linux-4k", settings)
        thp = run_benchmark(wl, "B", "thp", settings)
        huge1g = run_benchmark(wl, "B", "linux-4k", settings, backing_1g=True)
        lp1g = run_benchmark(wl, "B", "carrefour-lp", settings, backing_1g=True)
        stats1g = huge1g.hot_stats
        entries = {
            "thp": thp.improvement_over(base),
            "1g": huge1g.improvement_over(base),
            "lp-on-1g": lp1g.improvement_over(base),
            "slowdown-1g": huge1g.runtime_s / base.runtime_s,
        }
        data[wl] = entries
        rows.append(
            [
                wl,
                _fmt(entries["thp"]),
                _fmt(entries["1g"]),
                _fmt(entries["lp-on-1g"]),
                f"x{entries['slowdown-1g']:.2f}",
                f"{stats1g.n_hot_pages if stats1g else 0}",
                f"{stats1g.psp_pct:.0f}%" if stats1g else "-",
            ]
        )
    return Report(
        experiment_id="verylarge",
        title="1GB pages on machine B (improvement over Linux-4K, %)",
        headers=[
            "benchmark",
            "thp(2M)",
            "1GB pages",
            "LP on 1GB",
            "1GB slowdown",
            "hot 1G pages",
            "PSP(1G)",
        ],
        rows=rows,
        data=data,
        notes=[
            "Paper: with 1GB pages SSCA degrades 34% and streamcluster ~4x;"
            " hot-page and false-sharing effects appear immediately and"
            " splitting (Carrefour-LP) is the only remedy."
        ],
    )


def _extension(name: str) -> Callable[[Optional[RunSettings]], Report]:
    def driver(settings: Optional[RunSettings] = None) -> Report:
        from repro.experiments import extensions

        return getattr(extensions, name)(settings)

    driver.__doc__ = f"Extension experiment: see repro.experiments.extensions.{name}."
    return driver


EXPERIMENTS: Dict[str, Callable[[Optional[RunSettings]], Report]] = {
    "figure1": figure1,
    "table1": table1,
    "figure2": figure2,
    "table2": table2,
    "figure3": figure3,
    "figure4": figure4,
    "table3": table3,
    "figure5": figure5,
    "overhead": overhead,
    "verylarge": verylarge,
    # Extensions beyond the paper (see repro.experiments.extensions).
    "lwp": _extension("lwp"),
    "autonuma": _extension("autonuma"),
    "ablation-hot": _extension("ablation_hot_threshold"),
    "ablation-budget": _extension("ablation_migration_budget"),
}


def _validate_driver(settings: Optional[RunSettings] = None) -> Report:
    """Claim-by-claim validation (see repro.experiments.validation)."""
    from repro.experiments.validation import validate

    return validate(settings)


EXPERIMENTS["validate"] = _validate_driver


def run_experiment(name: str, settings: Optional[RunSettings] = None) -> Report:
    """Run one named experiment and return its report."""
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return driver(settings)
