"""Extension experiments beyond the paper's artifacts.

Two studies the paper motivates but could not run:

* **LWP sampling** (Section 4.1/4.3): the reactive component sometimes
  splits pages it should not because sparse IBS samples make the
  post-split LAR estimate optimistic; the authors propose AMD's
  Lightweight Profiling (ring-buffered, cheap samples) as the fix.  We
  implement it (``carrefour-lp-lwp``) and measure whether denser
  sampling closes the gap to Carrefour-2M on the misestimated
  applications.

* **Design-choice ablations** called out in DESIGN.md: the 6% hot-page
  threshold (what happens when hot pages are never split, or split too
  eagerly?) and Carrefour's migration budget (how fast can placement
  converge?).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.core.carrefour import CarrefourConfig, CarrefourPolicy
from repro.core.carrefour_lp import CarrefourLpPolicy
from repro.core.reactive import ReactiveConfig
from repro.experiments.reporting import Report
from repro.experiments.runner import RunSettings, run_benchmark
from repro.hardware.machines import machine_by_name
from repro.sim.engine import Simulation
from repro.workloads.registry import get_workload

_LWP_CASES = [("SSCA.20", "A"), ("pca", "B")]
_LWP_POLICIES = ["thp", "carrefour-2m", "carrefour-lp", "carrefour-lp-lwp"]


def lwp(settings: Optional[RunSettings] = None) -> Report:
    """LWP-grade sampling vs plain IBS for Carrefour-LP."""
    settings = settings or RunSettings()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for workload, machine in _LWP_CASES:
        base = run_benchmark(workload, machine, "linux-4k", settings)
        entries = {}
        row = [f"{workload} ({machine})"]
        for policy in _LWP_POLICIES:
            result = run_benchmark(workload, machine, policy, settings)
            entries[policy] = result.improvement_over(base)
            row.append(f"{entries[policy]:+.1f}")
        data[f"{workload}@{machine}"] = entries
        rows.append(row)
    return Report(
        experiment_id="lwp",
        title="Carrefour-LP with LWP-style sampling (improvement over Linux, %)",
        headers=["benchmark"] + _LWP_POLICIES,
        rows=rows,
        data=data,
        notes=[
            "Paper Section 4.1: sparse IBS samples make the reactive split"
            " estimate optimistic (SSCA: predicted 59%, actual 25%); denser,"
            " cheaper LWP samples were the proposed fix."
        ],
    )


_AUTONUMA_CASES = [("CG.D", "B"), ("UA.B", "A"), ("SPECjbb", "A"), ("pca", "B")]
_AUTONUMA_POLICIES = [
    "thp",
    "interleave-thp",
    "autonuma",
    "carrefour-2m",
    "carrefour-lp",
]


def autonuma(settings: Optional[RunSettings] = None) -> Report:
    """The standard remedies vs the Carrefour family.

    Compares mainline Linux's two answers — static numactl interleaving
    (balance at the price of locality) and AutoNUMA / NUMA balancing
    (migrate-to-accessor, never splits or interleaves) — against
    Carrefour-2M and Carrefour-LP.  AutoNUMA shares THP's failure modes
    on the hot-page and false-sharing workloads; static interleaving
    fixes balance-only problems (pca) but sacrifices every partitioned
    workload's locality.
    """
    settings = settings or RunSettings()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for workload, machine in _AUTONUMA_CASES:
        base = run_benchmark(workload, machine, "linux-4k", settings)
        entries = {}
        row = [f"{workload} ({machine})"]
        for policy in _AUTONUMA_POLICIES:
            result = run_benchmark(workload, machine, policy, settings)
            entries[policy] = result.improvement_over(base)
            row.append(f"{entries[policy]:+.1f}")
        data[f"{workload}@{machine}"] = entries
        rows.append(row)
    return Report(
        experiment_id="autonuma",
        title="Linux NUMA balancing vs Carrefour (improvement over Linux, %)",
        headers=["benchmark"] + _AUTONUMA_POLICIES,
        rows=rows,
        data=data,
        notes=[
            "AutoNUMA cannot split large pages: CG's hot pages and UA's"
            " falsely shared pages stay broken; only migrate-to-accessor"
            " cases (master-initialised data) benefit."
        ],
    )


def _run_custom(workload: str, machine: str, policy, settings: RunSettings):
    topo = machine_by_name(machine)
    instance = get_workload(workload).instantiate(
        topo, settings.config.scale, settings.seed
    )
    return Simulation(topo, instance, policy, settings.config).run()


def ablation_hot_threshold(settings: Optional[RunSettings] = None) -> Report:
    """Sweep the reactive component's hot-page threshold on CG.D."""
    settings = settings or RunSettings()
    base = run_benchmark("CG.D", "B", "linux-4k", settings)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for threshold in (3.0, 6.0, 12.0, 100.0):
        # Disable the shared-page split path (gain threshold set out of
        # reach) so the sweep isolates Algorithm 1's line 19: split and
        # interleave pages hotter than the threshold.
        policy = CarrefourLpPolicy(
            reactive_config=ReactiveConfig(
                hot_page_pct=threshold,
                split_gain_threshold_pct=1000.0,
                carrefour_gain_threshold_pct=1000.0,
            ),
            seed=settings.seed,
            name=f"lp-hot-{threshold:g}",
        )
        result = _run_custom("CG.D", "B", policy, settings)
        m = result.metrics()
        entry = {
            "improvement": result.improvement_over(base),
            "imbalance": m.imbalance_pct,
            "splits": float(m.pages_split_2m),
        }
        data[f"{threshold:g}"] = entry
        label = f"{threshold:g}%" if threshold <= 50 else "off"
        rows.append(
            [
                label,
                f"{entry['improvement']:+.1f}",
                f"{entry['imbalance']:.0f}",
                f"{entry['splits']:.0f}",
            ]
        )
    return Report(
        experiment_id="ablation-hot",
        title="Hot-page threshold ablation on CG.D@B (vs Linux, %)",
        headers=["threshold", "improvement", "imbalance %", "2M splits"],
        rows=rows,
        data=data,
        notes=[
            "The paper uses 6% (half of a node's fair share on 8 nodes)."
            " Disabling hot-page splitting ('off') leaves CG's imbalance"
            " unfixable — the hot-page effect in isolation."
        ],
    )


def ablation_migration_budget(settings: Optional[RunSettings] = None) -> Report:
    """Sweep Carrefour-2M's per-interval migration budget on pca."""
    settings = settings or RunSettings()
    base = run_benchmark("pca", "B", "linux-4k", settings)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for budget_mb in (32, 128, 512, 4096):
        policy = CarrefourPolicy(
            thp=True,
            config=CarrefourConfig(
                max_migration_bytes_per_interval=budget_mb * 1024 * 1024
            ),
            seed=settings.seed,
            name=f"carrefour-2m-{budget_mb}mb",
        )
        result = _run_custom("pca", "B", policy, settings)
        m = result.metrics()
        entry = {
            "improvement": result.improvement_over(base),
            "imbalance": m.imbalance_pct,
            "migrated_mb": (m.pages_migrated_2m * 2.0) + m.pages_migrated_4k / 256.0,
        }
        data[str(budget_mb)] = entry
        rows.append(
            [
                f"{budget_mb}MB/s",
                f"{entry['improvement']:+.1f}",
                f"{entry['imbalance']:.0f}",
                f"{entry['migrated_mb']:.0f}",
            ]
        )
    return Report(
        experiment_id="ablation-budget",
        title="Migration-budget ablation: Carrefour-2M on pca@B (vs Linux, %)",
        headers=["budget", "improvement", "imbalance %", "migrated MB"],
        rows=rows,
        data=data,
        notes=[
            "A starved budget cannot fix the master-initialised matrix in"
            " time; an unbounded one converges within one interval."
        ],
    )
