"""The paper's published numbers, as structured data.

Everything the paper reports numerically is transcribed here so the
validation harness (:mod:`repro.experiments.validation`) can compare
measured values against it claim by claim, and so ``EXPERIMENTS.md``
can be regenerated mechanically.

Sources:

* Table 1 — detailed analysis of five applications (exact values).
* Table 2 — PAMUP / NHP / PSP / imbalance / LAR on machine A (exact).
* Table 3 — LAR and imbalance for CG.D(B), UA.B(A), UA.C(B) (exact).
* Figures 1-5 — bar charts; only the values the paper calls out
  numerically (off-scale labels and prose) are exact, the rest are
  approximate bar readings and are marked as such.
* Section 4.4 — 1GB-page results (prose: SSCA -34%, streamcluster ~4x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

# ----------------------------------------------------------------------
# Table 1: Linux (4KB) vs THP (2MB) profiles.
# fault_ms: time spent in page fault handler; fault_pct: % of total time;
# l2walk: % L2 misses due to page-table walks; lar/imbalance in %.
# ----------------------------------------------------------------------
TABLE1 = {
    "CG.D@B": {
        "perf_improvement": -43.0,
        "fault_ms": {"linux": 2182.0, "thp": 445.0},
        "fault_pct": {"linux": 0.1, "thp": 0.0},
        "l2walk": {"linux": 0.0, "thp": 0.0},
        "lar": {"linux": 40.0, "thp": 36.0},
        "imbalance": {"linux": 1.0, "thp": 59.0},
    },
    "UA.C@B": {
        "perf_improvement": -15.0,
        "fault_ms": {"linux": 102.0, "thp": 53.0},
        "fault_pct": {"linux": 0.2, "thp": 0.1},
        "l2walk": {"linux": 0.0, "thp": 0.0},
        "lar": {"linux": 88.0, "thp": 66.0},
        "imbalance": {"linux": 14.0, "thp": 12.0},
    },
    "WC@B": {
        "perf_improvement": 109.0,
        "fault_ms": {"linux": 8731.0, "thp": 3682.0},
        "fault_pct": {"linux": 37.6, "thp": 32.3},
        "l2walk": {"linux": 10.0, "thp": 1.0},
        "lar": {"linux": 50.0, "thp": 55.0},
        "imbalance": {"linux": 147.0, "thp": 136.0},
    },
    "SSCA.20@A": {
        "perf_improvement": 17.0,
        "fault_ms": {"linux": 90.0, "thp": 147.0},
        "fault_pct": {"linux": 0.0, "thp": 0.1},
        "l2walk": {"linux": 15.0, "thp": 2.0},
        "lar": {"linux": 25.0, "thp": 26.0},
        "imbalance": {"linux": 8.0, "thp": 52.0},
    },
    "SPECjbb@A": {
        "perf_improvement": -6.0,
        "fault_ms": {"linux": 8369.0, "thp": 5905.0},
        "fault_pct": {"linux": 2.1, "thp": 1.5},
        "l2walk": {"linux": 7.0, "thp": 0.0},
        "lar": {"linux": 12.0, "thp": 15.0},
        "imbalance": {"linux": 16.0, "thp": 39.0},
    },
}

# ----------------------------------------------------------------------
# Table 2: hot-page and sharing metrics on machine A (24 cores).
# ----------------------------------------------------------------------
TABLE2 = {
    "SPECjbb": {
        "pamup": {"linux-4k": 2.0, "thp": 6.0, "carrefour-2m": 6.0},
        "nhp": {"linux-4k": 0, "thp": 0, "carrefour-2m": 0},
        "psp": {"linux-4k": 10.0, "thp": 36.0, "carrefour-2m": 36.0},
        "imbalance": {"linux-4k": 16.0, "thp": 39.0, "carrefour-2m": 19.0},
        "lar": {"linux-4k": 26.0, "thp": 28.0, "carrefour-2m": 27.0},
    },
    "CG.D": {
        "pamup": {"linux-4k": 0.0, "thp": 8.0, "carrefour-2m": 8.0},
        "nhp": {"linux-4k": 0, "thp": 3, "carrefour-2m": 3},
        "psp": {"linux-4k": 18.0, "thp": 34.0, "carrefour-2m": 34.0},
        "imbalance": {"linux-4k": 0.0, "thp": 20.0, "carrefour-2m": 20.0},
        "lar": {"linux-4k": 45.0, "thp": 45.0, "carrefour-2m": 45.0},
    },
    "UA.B": {
        "pamup": {"linux-4k": 6.0, "thp": 6.0, "carrefour-2m": 6.0},
        "nhp": {"linux-4k": 0, "thp": 0, "carrefour-2m": 0},
        "psp": {"linux-4k": 16.0, "thp": 70.0, "carrefour-2m": 70.0},
        "imbalance": {"linux-4k": 9.0, "thp": 15.0, "carrefour-2m": 17.0},
        "lar": {"linux-4k": 90.0, "thp": 61.0, "carrefour-2m": 58.0},
    },
}

# ----------------------------------------------------------------------
# Table 3: LAR and imbalance under all four policies.
# ----------------------------------------------------------------------
TABLE3 = {
    "CG.D@B": {
        "lar": {"linux-4k": 40, "thp": 36, "carrefour-2m": 38, "carrefour-lp": 39},
        "imbalance": {"linux-4k": 1, "thp": 59, "carrefour-2m": 69, "carrefour-lp": 3},
    },
    "UA.B@A": {
        "lar": {"linux-4k": 90, "thp": 61, "carrefour-2m": 58, "carrefour-lp": 85},
        "imbalance": {"linux-4k": 9, "thp": 15, "carrefour-2m": 17, "carrefour-lp": 10},
    },
    "UA.C@B": {
        "lar": {"linux-4k": 88, "thp": 66, "carrefour-2m": 68, "carrefour-lp": 82},
        "imbalance": {"linux-4k": 14, "thp": 12, "carrefour-2m": 9, "carrefour-lp": 14},
    },
}

# ----------------------------------------------------------------------
# Figures: values the paper states numerically (off-scale labels and
# prose); everything else in the figures is an approximate bar reading.
# ----------------------------------------------------------------------
FIGURE1_CALLOUTS = {
    ("CG.D", "B"): -43.0,
    ("WC", "B"): 109.0,
    ("WR", "B"): 70.0,
    ("wrmem", "B"): 51.0,
    ("SSCA.20", "A"): 17.0,
    ("SPECjbb", "A"): -6.0,
    ("UA.C", "B"): -15.0,
}

#: Section 4.4 results (prose).
VERYLARGE = {
    "SSCA.20": {"degradation_pct": -34.0},
    "streamcluster": {"slowdown_factor": 4.0},
}

#: Section 4.2 overhead statements.
OVERHEAD = {
    "vs_reactive_typical_pct": 2.0,
    "vs_reactive_worst_pct": 3.2,
    "vs_carrefour2m_average_pct": 2.0,
    "vs_carrefour2m_worst_pct": 3.7,
    "vs_linux_typical_pct": 3.0,
}


@dataclass(frozen=True)
class Claim:
    """One falsifiable claim from the paper.

    ``claim_id`` ties the claim to a section/table/figure; the actual
    check lives in :mod:`repro.experiments.validation`.
    """

    claim_id: str
    source: str
    statement: str
    paper_value: Optional[str] = None


CLAIMS = [
    Claim(
        "thp-not-universal",
        "Figure 1",
        "THP improves some applications and degrades others: there is no"
        " 'one size fits all'.",
        "from +109% (WC@B) to -43% (CG.D@B)",
    ),
    Claim(
        "cg-imbalance",
        "Table 1",
        "With CG and 4KB pages the memory-controller load is almost"
        " perfectly balanced; with 2MB pages it becomes badly imbalanced.",
        "imbalance 1% -> 59% on machine B",
    ),
    Claim(
        "ua-lar-drop",
        "Table 1",
        "UA's local access ratio decreases when large pages are used.",
        "LAR 88% -> 66% (UA.C on B)",
    ),
    Claim(
        "wc-fault-bound",
        "Table 1",
        "WC spends a large share of its time in the page-fault handler at"
        " 4KB, and THP cuts the handler time dramatically.",
        "8731ms (37.6%) -> 3682ms",
    ),
    Claim(
        "ssca-tlb-bound",
        "Table 1",
        "SSCA's share of L2 misses caused by page-table walks collapses"
        " under THP.",
        "15% -> 2% on machine A",
    ),
    Claim(
        "specjbb-masked",
        "Table 1",
        "SPECjbb's TLB benefit under THP is masked by rising controller"
        " imbalance.",
        "walks 7% -> 0%, imbalance 16% -> 39%",
    ),
    Claim(
        "cg-hot-pages",
        "Table 2",
        "Large pages coalesce CG's hot regions into a small number of hot"
        " pages — fewer than NUMA nodes — which migration cannot balance.",
        "NHP 0 -> 3, PAMUP 0% -> 8%",
    ),
    Claim(
        "ua-false-sharing",
        "Table 2",
        "UA's share of accesses to pages used by several threads explodes"
        " under THP (page-level false sharing).",
        "PSP 16% -> 70%",
    ),
    Claim(
        "carrefour2m-partial",
        "Figure 2",
        "Carrefour-2M fixes SPECjbb's imbalance but fails on CG (hot"
        " pages) and UA (false sharing).",
        "SPECjbb imbalance 39% -> 19%; CG/UA unrecovered",
    ),
    Claim(
        "lp-restores",
        "Figure 3 / Table 3",
        "Carrefour-LP restores the performance of CG.D, UA.B and UA.C and"
        " their NUMA metrics (CG balance, UA locality).",
        "CG imbalance -> 3%; UA.B LAR -> 85%",
    ),
    Claim(
        "conservative-too-late",
        "Figure 4",
        "The conservative component alone enables large pages too late"
        " for allocation-intensive startup phases.",
        "e.g. WC under conservative-only",
    ),
    Claim(
        "reactive-missplit",
        "Figure 4 / Section 4.1",
        "The reactive component alone sometimes splits pages based on a"
        " misestimated LAR (sparse samples), losing THP's benefit on"
        " SSCA; the conservative component re-creates the pages.",
        "predicted split-LAR 59% vs actual 25%",
    ),
    Claim(
        "lp-harmless",
        "Figure 5",
        "Carrefour-LP does not significantly hurt applications without"
        " THP-induced NUMA issues, and helps those with pre-existing"
        " NUMA problems (EP, SP, pca).",
    ),
    Claim(
        "verylarge-pervasive",
        "Section 4.4",
        "With 1GB pages, hot-page and false-sharing effects appear"
        " immediately and performance drops dramatically.",
        "SSCA -34%; streamcluster ~4x",
    ),
]
