"""Parallel fan-out of independent simulation runs.

Simulations are deterministic and share no state, so a batch of
(workload, machine, policy, backing) combinations is embarrassingly
parallel.  :class:`GridRunner` collects the full grid for an
experiment batch, deduplicates it (figures share their Linux/THP
baselines), answers what it can from the two cache layers, and fans
the misses out over a :class:`concurrent.futures.ProcessPoolExecutor`.

Three backends exist (``REPRO_JOBS_BACKEND`` or the ``backend``
argument): ``process`` fans misses out over a
``ProcessPoolExecutor``; ``thread`` shards them over an in-process
``ThreadPoolExecutor`` — the engine's hot sections (stream-bank
fetches, vectorized translation, binning) are numpy calls that release
the GIL, and threaded workers share the process-wide stream banks, so
a grid's policy pairs overlap even where a process pool cannot be
built; ``serial`` runs the misses in a plain in-process loop.  The
default (``auto``) picks ``process`` on multi-core boxes and
``serial`` on single-core ones — benchmarking showed the thread
backend is a net *slowdown* at ``cpu_count == 1`` (executor and lock
churn with no cores to overlap on; BENCH_runner.json once recorded
``speedup_parallel: 0.68``), so single-core parallelism now requires
an explicit ``--jobs-backend thread``.  :func:`backend_choice` returns
the resolved backend together with a human-readable reason, which the
benchmarks record as ``backend_reason``.

Worker count resolution, in priority order: explicit ``jobs``
argument, the ``REPRO_JOBS`` environment variable, then
``os.cpu_count() - 1`` (at least 1; at least 2 for the thread
backend; always 1 for serial).  ``jobs=1`` — and any platform where a
process pool cannot be built (no ``fork``, sandboxed semaphores) —
degrades to an in-process serial loop with identical results, since
every run is deterministic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments import runner as _runner
from repro.experiments.cache import ResultCache, cache_enabled
from repro.experiments.runner import RunSettings
from repro.sim.results import SimulationResult

#: Environment variable selecting the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable selecting the executor backend
#: (``thread`` | ``process`` | ``auto``).
BACKEND_ENV = "REPRO_JOBS_BACKEND"

_BACKENDS = ("serial", "thread", "process", "auto")


@dataclass(frozen=True)
class RunSpec:
    """One deduplicable unit of work: a single simulation run."""

    workload: str
    machine: str = "A"
    policy: str = "thp"
    backing_1g: bool = False

    def describe(self) -> str:
        """Short label for logs and progress lines."""
        suffix = "+1g" if self.backing_1g else ""
        return f"{self.workload}@{self.machine}/{self.policy}{suffix}"


def backend_choice(backend: Optional[str] = None) -> Tuple[str, str]:
    """Resolved executor backend plus the reason it was chosen.

    Resolution order: explicit arg > ``REPRO_JOBS_BACKEND`` > auto.
    ``auto`` resolves to ``process`` on multi-core machines and to
    ``serial`` on single-core ones: with one core neither pool backend
    can overlap anything, and the thread backend's executor/lock churn
    makes it an outright slowdown there — anyone who wants single-core
    sharding (e.g. to exercise the locking) must ask for ``thread``
    explicitly.  The reason string is what the benchmarks record as
    ``backend_reason``.
    """
    if backend is not None:
        source = "explicit"
    else:
        env = os.environ.get(BACKEND_ENV, "").strip().lower()
        if env:
            backend, source = env, f"env {BACKEND_ENV}"
        else:
            backend, source = "auto", "default"
    backend = backend.lower()
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown jobs backend {backend!r}; expected one of {_BACKENDS}"
        )
    if backend != "auto":
        return backend, f"{source}: {backend}"
    cpus = os.cpu_count() or 1
    if cpus > 1:
        return "process", f"{source}: auto, cpu_count={cpus} -> process"
    return (
        "serial",
        f"{source}: auto, cpu_count=1 -> serial "
        "(pool backends pessimize on one core)",
    )


def resolve_backend(backend: Optional[str] = None) -> str:
    """Executor backend name alone (see :func:`backend_choice`)."""
    return backend_choice(backend)[0]


def resolve_jobs(jobs: Optional[int] = None, backend: Optional[str] = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > cpu_count - 1.

    The serial backend always resolves to 1 — that is its meaning, and
    it is what ``auto`` picks on single-core boxes (see
    :func:`backend_choice`).  The process backend is clamped to
    ``os.cpu_count()``: its workers
    are CPU-bound, so oversubscribing cores only adds scheduler churn
    (and benchmark numbers taken that way report meaningless
    "parallel" speedups).  The thread backend instead floors at 2 —
    its workers overlap in the GIL-released numpy sections and share
    stream banks, so two-way sharding is productive even on a
    single-core box (where the process clamp would silently degrade to
    a serial loop).
    """
    resolved_backend = resolve_backend(backend)
    if resolved_backend == "serial":
        return 1
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    cpus = os.cpu_count() or 1
    if resolved_backend == "thread":
        if jobs is None:
            jobs = max(2, cpus - 1)
        return max(1, min(int(jobs), max(2, cpus)))
    if jobs is None:
        jobs = cpus - 1
    return max(1, min(int(jobs), cpus))


def _pool_execute(
    spec: RunSpec, settings: RunSettings
) -> Tuple[RunSpec, SimulationResult]:
    """Worker-side entry point: run one spec, uncached."""
    result = _runner.execute_run(
        spec.workload, spec.machine, spec.policy, settings, spec.backing_1g
    )
    return spec, result


class GridRunner:
    """Collects a run grid, then executes it cache-aware and in parallel.

    Usage::

        grid = GridRunner(settings)
        grid.add("CG.D", "B", "thp")
        grid.add_grid(["CG.D", "UA.B"], ["A", "B"], ["linux-4k", "thp"])
        results = grid.run(jobs=4)   # {RunSpec: SimulationResult}

    ``run`` leaves every result installed in the runner's in-process
    memo (and the persistent store), so subsequent
    :func:`repro.experiments.runner.run_benchmark` calls for the same
    settings are hits.
    """

    def __init__(
        self,
        settings: Optional[RunSettings] = None,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.settings = settings or RunSettings()
        self.jobs = jobs
        self.backend = backend
        self._specs: List[RunSpec] = []
        self._seen: set = set()

    # ------------------------------------------------------------------
    # Grid assembly
    # ------------------------------------------------------------------
    def add(
        self,
        workload: str,
        machine: str = "A",
        policy: str = "thp",
        backing_1g: bool = False,
    ) -> "GridRunner":
        """Queue one run; duplicates are dropped (shared baselines)."""
        spec = RunSpec(workload, machine, policy, backing_1g)
        if spec not in self._seen:
            self._seen.add(spec)
            self._specs.append(spec)
        return self

    def add_spec(self, spec: RunSpec) -> "GridRunner":
        """Queue one pre-built :class:`RunSpec`."""
        return self.add(spec.workload, spec.machine, spec.policy, spec.backing_1g)

    def add_grid(
        self,
        workloads: Sequence[str],
        machines: Sequence[str],
        policies: Sequence[str],
        backing_1g: bool = False,
    ) -> "GridRunner":
        """Queue the cross product workloads x machines x policies."""
        for wl in workloads:
            for machine in machines:
                for policy in policies:
                    self.add(wl, machine, policy, backing_1g)
        return self

    @property
    def specs(self) -> List[RunSpec]:
        """The deduplicated grid, in insertion order."""
        return list(self._specs)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _partition(
        self,
    ) -> Tuple[Dict[RunSpec, SimulationResult], List[RunSpec]]:
        """Split the grid into (cache hits, misses to execute)."""
        hits: Dict[RunSpec, SimulationResult] = {}
        misses: List[RunSpec] = []
        settings = self.settings
        store = ResultCache.default() if cache_enabled() else None
        for spec in self._specs:
            machine = _runner.canonical_machine(spec.machine)
            key = settings.cache_key(
                spec.workload, machine, spec.policy, spec.backing_1g
            )
            with _runner._MEMO_LOCK:
                memoised = _runner._CACHE.get(key)
            if memoised is not None:
                hits[spec] = memoised
                continue
            if store is not None:
                cached = store.get(
                    settings.fingerprint(
                        spec.workload, machine, spec.policy, spec.backing_1g
                    )
                )
                if cached is not None:
                    hits[spec] = cached
                    _runner.store_result(
                        spec.workload,
                        machine,
                        spec.policy,
                        settings,
                        spec.backing_1g,
                        cached,
                        persist=False,
                    )
                    continue
            misses.append(spec)
        return hits, misses

    def _run_serial(self, misses: List[RunSpec]) -> Dict[RunSpec, SimulationResult]:
        results = {}
        for spec in misses:
            _, result = _pool_execute(spec, self.settings)
            results[spec] = result
        return results

    def _run_threads(
        self, misses: List[RunSpec], jobs: int
    ) -> Dict[RunSpec, SimulationResult]:
        """In-process sharded execution over a thread pool.

        Runs are deterministic and share no mutable state beyond the
        process-wide memo layers (stream banks, the runner memo), all
        of which are lock- or GIL-safe; the numpy-heavy engine phases
        release the GIL, so shards genuinely overlap.  Sharing the
        process also means two policy runs of the same workload reuse
        one stream bank instead of generating streams twice.
        """
        import concurrent.futures

        results: Dict[RunSpec, SimulationResult] = {}
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(jobs, len(misses))
        ) as pool:
            futures = [
                pool.submit(_pool_execute, spec, self.settings) for spec in misses
            ]
            for future in concurrent.futures.as_completed(futures):
                spec, result = future.result()
                results[spec] = result
        return results

    def _run_pool(
        self, misses: List[RunSpec], jobs: int
    ) -> Dict[RunSpec, SimulationResult]:
        import concurrent.futures
        import multiprocessing

        # fork skips re-importing numpy/repro in every worker; the
        # default method elsewhere (spawn) works too, just slower.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context()
        results: Dict[RunSpec, SimulationResult] = {}
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(misses)), mp_context=ctx
        ) as pool:
            futures = [
                pool.submit(_pool_execute, spec, self.settings) for spec in misses
            ]
            for future in concurrent.futures.as_completed(futures):
                spec, result = future.result()
                results[spec] = result
        return results

    def run(
        self,
        jobs: Optional[int] = None,
        use_cache: bool = True,
        backend: Optional[str] = None,
    ) -> Dict[RunSpec, SimulationResult]:
        """Execute the grid; returns ``{spec: result}`` in grid order.

        Cached specs are answered without work.  Fresh results are
        installed into both cache layers so later ``run_benchmark``
        calls (the experiment drivers' inner loops) are pure hits.
        """
        if use_cache:
            hits, misses = self._partition()
        else:
            hits, misses = {}, list(self._specs)
        backend_name = resolve_backend(
            backend if backend is not None else self.backend
        )
        n_jobs = resolve_jobs(self.jobs if jobs is None else jobs, backend_name)
        if misses:
            if n_jobs <= 1 or len(misses) <= 1:
                fresh = self._run_serial(misses)
            elif backend_name == "thread":
                fresh = self._run_threads(misses, n_jobs)
            else:
                try:
                    fresh = self._run_pool(misses, n_jobs)
                except (OSError, ImportError, PermissionError, RuntimeError):
                    # No usable multiprocessing on this platform.
                    fresh = self._run_serial(misses)
            for spec, result in fresh.items():
                if use_cache:
                    _runner.store_result(
                        spec.workload,
                        _runner.canonical_machine(spec.machine),
                        spec.policy,
                        self.settings,
                        spec.backing_1g,
                        result,
                    )
                hits[spec] = result
        return {spec: hits[spec] for spec in self._specs}


def prefetch(
    specs: Iterable[RunSpec],
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[RunSpec, SimulationResult]:
    """Warm both cache layers for a batch of runs, in parallel.

    The experiment drivers call this with their full grid before their
    (serial, report-building) inner loops; with ``jobs`` resolving to 1
    it is a no-op and the driver's own ``run_benchmark`` calls do the
    work exactly as before.
    """
    grid = GridRunner(settings, jobs=jobs, backend=backend)
    for spec in specs:
        grid.add_spec(spec)
    if not grid.specs:
        return {}
    if resolve_jobs(jobs if jobs is not None else grid.jobs, backend) <= 1:
        return {}
    return grid.run()
