"""Parallel fan-out of independent simulation runs.

Simulations are deterministic and share no state, so a batch of
(workload, machine, policy, backing) combinations is embarrassingly
parallel.  :class:`GridRunner` collects the full grid for an
experiment batch, deduplicates it (figures share their Linux/THP
baselines), answers what it can from the two cache layers, and fans
the misses out over a :class:`concurrent.futures.ProcessPoolExecutor`.

Worker count resolution, in priority order: explicit ``jobs``
argument, the ``REPRO_JOBS`` environment variable, then
``os.cpu_count() - 1`` (at least 1).  ``jobs=1`` — and any platform
where a process pool cannot be built (no ``fork``, sandboxed
semaphores) — degrades to an in-process serial loop with identical
results, since every run is deterministic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments import runner as _runner
from repro.experiments.cache import ResultCache, cache_enabled
from repro.experiments.runner import RunSettings
from repro.sim.results import SimulationResult

#: Environment variable selecting the default worker count.
JOBS_ENV = "REPRO_JOBS"


@dataclass(frozen=True)
class RunSpec:
    """One deduplicable unit of work: a single simulation run."""

    workload: str
    machine: str = "A"
    policy: str = "thp"
    backing_1g: bool = False

    def describe(self) -> str:
        """Short label for logs and progress lines."""
        suffix = "+1g" if self.backing_1g else ""
        return f"{self.workload}@{self.machine}/{self.policy}{suffix}"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > cpu_count - 1.

    Clamped to ``os.cpu_count()``: simulation workers are CPU-bound, so
    oversubscribing cores only adds scheduler churn (and benchmark
    numbers taken that way report meaningless "parallel" speedups).
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None:
        jobs = (os.cpu_count() or 2) - 1
    return max(1, min(int(jobs), os.cpu_count() or 1))


def _pool_execute(
    spec: RunSpec, settings: RunSettings
) -> Tuple[RunSpec, SimulationResult]:
    """Worker-side entry point: run one spec, uncached."""
    result = _runner.execute_run(
        spec.workload, spec.machine, spec.policy, settings, spec.backing_1g
    )
    return spec, result


class GridRunner:
    """Collects a run grid, then executes it cache-aware and in parallel.

    Usage::

        grid = GridRunner(settings)
        grid.add("CG.D", "B", "thp")
        grid.add_grid(["CG.D", "UA.B"], ["A", "B"], ["linux-4k", "thp"])
        results = grid.run(jobs=4)   # {RunSpec: SimulationResult}

    ``run`` leaves every result installed in the runner's in-process
    memo (and the persistent store), so subsequent
    :func:`repro.experiments.runner.run_benchmark` calls for the same
    settings are hits.
    """

    def __init__(
        self, settings: Optional[RunSettings] = None, jobs: Optional[int] = None
    ) -> None:
        self.settings = settings or RunSettings()
        self.jobs = jobs
        self._specs: List[RunSpec] = []
        self._seen: set = set()

    # ------------------------------------------------------------------
    # Grid assembly
    # ------------------------------------------------------------------
    def add(
        self,
        workload: str,
        machine: str = "A",
        policy: str = "thp",
        backing_1g: bool = False,
    ) -> "GridRunner":
        """Queue one run; duplicates are dropped (shared baselines)."""
        spec = RunSpec(workload, machine, policy, backing_1g)
        if spec not in self._seen:
            self._seen.add(spec)
            self._specs.append(spec)
        return self

    def add_spec(self, spec: RunSpec) -> "GridRunner":
        """Queue one pre-built :class:`RunSpec`."""
        return self.add(spec.workload, spec.machine, spec.policy, spec.backing_1g)

    def add_grid(
        self,
        workloads: Sequence[str],
        machines: Sequence[str],
        policies: Sequence[str],
        backing_1g: bool = False,
    ) -> "GridRunner":
        """Queue the cross product workloads x machines x policies."""
        for wl in workloads:
            for machine in machines:
                for policy in policies:
                    self.add(wl, machine, policy, backing_1g)
        return self

    @property
    def specs(self) -> List[RunSpec]:
        """The deduplicated grid, in insertion order."""
        return list(self._specs)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _partition(
        self,
    ) -> Tuple[Dict[RunSpec, SimulationResult], List[RunSpec]]:
        """Split the grid into (cache hits, misses to execute)."""
        hits: Dict[RunSpec, SimulationResult] = {}
        misses: List[RunSpec] = []
        settings = self.settings
        store = ResultCache.default() if cache_enabled() else None
        for spec in self._specs:
            machine = _runner.canonical_machine(spec.machine)
            key = settings.cache_key(
                spec.workload, machine, spec.policy, spec.backing_1g
            )
            if key in _runner._CACHE:
                hits[spec] = _runner._CACHE[key]
                continue
            if store is not None:
                cached = store.get(
                    settings.fingerprint(
                        spec.workload, machine, spec.policy, spec.backing_1g
                    )
                )
                if cached is not None:
                    hits[spec] = cached
                    _runner.store_result(
                        spec.workload,
                        machine,
                        spec.policy,
                        settings,
                        spec.backing_1g,
                        cached,
                        persist=False,
                    )
                    continue
            misses.append(spec)
        return hits, misses

    def _run_serial(self, misses: List[RunSpec]) -> Dict[RunSpec, SimulationResult]:
        results = {}
        for spec in misses:
            _, result = _pool_execute(spec, self.settings)
            results[spec] = result
        return results

    def _run_pool(
        self, misses: List[RunSpec], jobs: int
    ) -> Dict[RunSpec, SimulationResult]:
        import concurrent.futures
        import multiprocessing

        # fork skips re-importing numpy/repro in every worker; the
        # default method elsewhere (spawn) works too, just slower.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context()
        results: Dict[RunSpec, SimulationResult] = {}
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(misses)), mp_context=ctx
        ) as pool:
            futures = [
                pool.submit(_pool_execute, spec, self.settings) for spec in misses
            ]
            for future in concurrent.futures.as_completed(futures):
                spec, result = future.result()
                results[spec] = result
        return results

    def run(
        self, jobs: Optional[int] = None, use_cache: bool = True
    ) -> Dict[RunSpec, SimulationResult]:
        """Execute the grid; returns ``{spec: result}`` in grid order.

        Cached specs are answered without work.  Fresh results are
        installed into both cache layers so later ``run_benchmark``
        calls (the experiment drivers' inner loops) are pure hits.
        """
        if use_cache:
            hits, misses = self._partition()
        else:
            hits, misses = {}, list(self._specs)
        n_jobs = resolve_jobs(self.jobs if jobs is None else jobs)
        if misses:
            if n_jobs <= 1 or len(misses) <= 1:
                fresh = self._run_serial(misses)
            else:
                try:
                    fresh = self._run_pool(misses, n_jobs)
                except (OSError, ImportError, PermissionError, RuntimeError):
                    # No usable multiprocessing on this platform.
                    fresh = self._run_serial(misses)
            for spec, result in fresh.items():
                if use_cache:
                    _runner.store_result(
                        spec.workload,
                        _runner.canonical_machine(spec.machine),
                        spec.policy,
                        self.settings,
                        spec.backing_1g,
                        result,
                    )
                hits[spec] = result
        return {spec: hits[spec] for spec in self._specs}


def prefetch(
    specs: Iterable[RunSpec],
    settings: Optional[RunSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[RunSpec, SimulationResult]:
    """Warm both cache layers for a batch of runs, in parallel.

    The experiment drivers call this with their full grid before their
    (serial, report-building) inner loops; with ``jobs`` resolving to 1
    it is a no-op and the driver's own ``run_benchmark`` calls do the
    work exactly as before.
    """
    grid = GridRunner(settings, jobs=jobs)
    for spec in specs:
        grid.add_spec(spec)
    if not grid.specs:
        return {}
    if resolve_jobs(jobs if jobs is not None else grid.jobs) <= 1:
        return {}
    return grid.run()
