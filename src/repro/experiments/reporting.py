"""Plain-text rendering of experiment reports (tables and bar charts)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError


@dataclass
class Report:
    """One regenerated paper artifact: a titled table plus commentary."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[str]]
    notes: List[str] = field(default_factory=list)
    #: Raw numeric payload for programmatic consumers (tests, benches).
    data: Dict = field(default_factory=dict)

    def render(self) -> str:
        """Monospace rendering of the report."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(format_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned monospace table."""
    if not headers:
        raise ConfigurationError("a table needs headers")
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt(cells) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_bars(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    limit: Optional[float] = None,
) -> str:
    """ASCII horizontal bar chart for figure-style data.

    Each label gets one bar per series; values are percentages and may
    be negative (bars extend left of the axis).
    """
    values = [v for vs in series.values() for v in vs]
    if not values:
        return "(no data)"
    span = limit if limit is not None else max(1.0, max(abs(v) for v in values))
    half = width // 2
    lines = []
    label_w = max(len(l) for l in labels)
    series_w = max(len(s) for s in series)
    for i, label in enumerate(labels):
        for s_name, vs in series.items():
            v = vs[i]
            n = min(half, max(-half, round(v / span * half)))
            if n >= 0:
                bar = " " * half + "|" + "#" * n + " " * (half - n)
            else:
                bar = " " * (half + n) + "#" * (-n) + "|" + " " * half
            lines.append(
                f"{label.rjust(label_w)} {s_name.rjust(series_w)} {bar} {v:+7.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
