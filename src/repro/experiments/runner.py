"""Run (benchmark, machine, policy) combinations and cache the results.

Many experiments share runs — Figures 1-5 all reference the same
Linux and THP baselines — so results are cached at two levels:

* an in-process memo (identity-preserving, so tests can assert
  ``a is b``), keyed by the *complete* run identity;
* the persistent on-disk store in
  :mod:`repro.experiments.cache`, shared across processes and
  sessions and keyed by a full-config fingerprint.

Batch drivers fan independent runs out over worker processes via
:mod:`repro.experiments.parallel`; both layers make that transparent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.experiments.cache import (
    ResultCache,
    cache_enabled,
    normalized_config,
    run_fingerprint,
)
from repro.hardware.machines import machine_by_name
from repro.hardware.topology import NumaTopology
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.results import SimulationResult
from repro.experiments.configs import make_policy
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class RunSettings:
    """Knobs shared by all runs of one experiment batch."""

    config: SimConfig = field(default_factory=SimConfig)
    seed: int = 0

    @classmethod
    def quick(cls, seed: int = 0) -> "RunSettings":
        """Reduced-cost settings for tests/benchmarks."""
        return cls(config=SimConfig.quick(seed=seed), seed=seed)

    def cache_key(
        self, workload: str, machine: str, policy: str, backing_1g: bool
    ) -> Tuple:
        """In-process memo key covering the complete run identity.

        The whole (hashable, frozen) :class:`SimConfig` participates, so
        configs differing in *any* field — including ``max_epochs``,
        ``khugepaged_batch``, ``ibs_cost_cycles`` or
        ``track_access_stats``, which an earlier tuple key dropped —
        can never collide.  Result-neutral fields named in the config's
        ``_CACHE_KEY_EXCLUDE`` (``check_invariants``) are normalised
        away so runs with and without checking share one entry.
        """
        return (
            workload,
            machine,
            policy,
            backing_1g,
            self.seed,
            normalized_config(self.config),
        )

    def fingerprint(
        self, workload: str, machine: str, policy: str, backing_1g: bool
    ) -> str:
        """Persistent-cache key (full-config hash + version stamp)."""
        return run_fingerprint(
            workload, machine, policy, backing_1g, self.config, self.seed
        )


_CACHE: Dict[Tuple, SimulationResult] = {}

#: Serialises every ``_CACHE`` access: the thread backend's shards and
#: any future ``repro serve`` worker share this memo, and an unguarded
#: dict write from two shards is a data race (R105).  The memo stores
#: finished, effectively-immutable results, so the critical sections
#: are pure dict operations — never simulation work or disk I/O.
_MEMO_LOCK = threading.Lock()

#: The memo deliberately hands back the *same* ``SimulationResult``
#: object for repeated identical runs (tests assert ``a is b``);
#: results are frozen once stored, so the reference escaping the memo
#: lock is safe (R107).
_CONCURRENCY_SAFE = ("runner.run_benchmark",)


def clear_cache() -> None:
    """Drop all in-process memoised run results."""
    with _MEMO_LOCK:
        _CACHE.clear()


def canonical_machine(machine: Union[str, NumaTopology]) -> str:
    """The topology name cache keys are filed under (``A`` -> ``machine-A``)."""
    if isinstance(machine, NumaTopology):
        return machine.name
    return machine_by_name(machine).name


def execute_run(
    workload: str,
    machine: Union[str, NumaTopology],
    policy: str,
    settings: RunSettings,
    backing_1g: bool = False,
) -> SimulationResult:
    """Run one simulation with no caching at either level.

    This is the raw unit of work the parallel pool workers execute;
    everything it touches (settings in, result out) is picklable.
    """
    topo = machine_by_name(machine) if isinstance(machine, str) else machine
    wl = get_workload(workload)
    instance = wl.instantiate(topo, settings.config.scale, settings.seed)
    if backing_1g:
        instance = instance.with_1g_backing()
    sim = Simulation(
        topo,
        instance,
        make_policy(policy, seed=settings.seed),
        config=settings.config,
    )
    return sim.run()


def store_result(
    workload: str,
    machine: str,
    policy: str,
    settings: RunSettings,
    backing_1g: bool,
    result: SimulationResult,
    persist: bool = True,
) -> None:
    """Install a finished run into the memo (and optionally on disk)."""
    key = settings.cache_key(workload, machine, policy, backing_1g)
    with _MEMO_LOCK:
        _CACHE[key] = result
    if persist and cache_enabled():
        ResultCache.default().put(
            settings.fingerprint(workload, machine, policy, backing_1g), result
        )


def run_benchmark(
    workload: str,
    machine: Union[str, NumaTopology] = "A",
    policy: str = "thp",
    settings: Optional[RunSettings] = None,
    backing_1g: bool = False,
    use_cache: bool = True,
) -> SimulationResult:
    """Run one benchmark under one policy on one machine.

    ``backing_1g`` backs the workload with 1GB hugetlbfs-style pages
    (Section 4.4); it composes with any policy.  With ``use_cache``
    (the default) the in-process memo is consulted first, then the
    persistent on-disk cache; ``use_cache=False`` bypasses and
    populates neither.
    """
    settings = settings or RunSettings()
    topo = machine_by_name(machine) if isinstance(machine, str) else machine
    if not use_cache:
        return execute_run(workload, topo, policy, settings, backing_1g)
    key = settings.cache_key(workload, topo.name, policy, backing_1g)
    with _MEMO_LOCK:
        cached = _CACHE.get(key)
    if cached is not None:
        return cached
    result = None
    if cache_enabled():
        result = ResultCache.default().get(
            settings.fingerprint(workload, topo.name, policy, backing_1g)
        )
    hit = result is not None
    if result is None:
        result = execute_run(workload, topo, policy, settings, backing_1g)
    store_result(
        workload, topo.name, policy, settings, backing_1g, result,
        persist=not hit,
    )
    return result


def improvement(
    workload: str,
    machine: Union[str, NumaTopology],
    policy: str,
    baseline: str = "linux-4k",
    settings: Optional[RunSettings] = None,
    backing_1g: bool = False,
    baseline_backing_1g: bool = False,
) -> float:
    """Percent performance improvement of ``policy`` over ``baseline``.

    Matches the paper's figures: positive means the policy runs faster
    than the baseline on the same workload and machine.
    """
    result = run_benchmark(
        workload, machine, policy, settings, backing_1g=backing_1g
    )
    base = run_benchmark(
        workload, machine, baseline, settings, backing_1g=baseline_backing_1g
    )
    return result.improvement_over(base)
