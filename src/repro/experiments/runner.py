"""Run (benchmark, machine, policy) combinations and cache the results.

Many experiments share runs — Figures 1-5 all reference the same
Linux and THP baselines — so results are memoised per settings key.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

from repro.hardware.machines import machine_by_name
from repro.hardware.topology import NumaTopology
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.results import SimulationResult
from repro.experiments.configs import make_policy
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class RunSettings:
    """Knobs shared by all runs of one experiment batch."""

    config: SimConfig = field(default_factory=SimConfig)
    seed: int = 0

    @classmethod
    def quick(cls, seed: int = 0) -> "RunSettings":
        """Reduced-cost settings for tests/benchmarks."""
        return cls(config=SimConfig.quick(seed=seed), seed=seed)

    def cache_key(
        self, workload: str, machine: str, policy: str, backing_1g: bool
    ) -> Tuple:
        cfg = self.config
        return (
            workload,
            machine,
            policy,
            backing_1g,
            cfg.scale,
            cfg.stream_length,
            cfg.ibs_rate,
            cfg.epoch_s,
            self.seed,
        )


_CACHE: Dict[Tuple, SimulationResult] = {}


def clear_cache() -> None:
    """Drop all memoised run results."""
    _CACHE.clear()


def run_benchmark(
    workload: str,
    machine: Union[str, NumaTopology] = "A",
    policy: str = "thp",
    settings: Optional[RunSettings] = None,
    backing_1g: bool = False,
    use_cache: bool = True,
) -> SimulationResult:
    """Run one benchmark under one policy on one machine.

    ``backing_1g`` backs the workload with 1GB hugetlbfs-style pages
    (Section 4.4); it composes with any policy.
    """
    settings = settings or RunSettings()
    topo = machine_by_name(machine) if isinstance(machine, str) else machine
    key = settings.cache_key(workload, topo.name, policy, backing_1g)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    wl = get_workload(workload)
    instance = wl.instantiate(topo, settings.config.scale, settings.seed)
    if backing_1g:
        instance = instance.with_1g_backing()
    sim = Simulation(
        topo,
        instance,
        make_policy(policy, seed=settings.seed),
        config=settings.config,
    )
    result = sim.run()
    if use_cache:
        _CACHE[key] = result
    return result


def improvement(
    workload: str,
    machine: Union[str, NumaTopology],
    policy: str,
    baseline: str = "linux-4k",
    settings: Optional[RunSettings] = None,
    backing_1g: bool = False,
    baseline_backing_1g: bool = False,
) -> float:
    """Percent performance improvement of ``policy`` over ``baseline``.

    Matches the paper's figures: positive means the policy runs faster
    than the baseline on the same workload and machine.
    """
    result = run_benchmark(
        workload, machine, policy, settings, backing_1g=backing_1g
    )
    base = run_benchmark(
        workload, machine, baseline, settings, backing_1g=baseline_backing_1g
    )
    return result.improvement_over(base)
