"""Drive multi-tenant colocation scenarios against one shared host.

The scenario runner is to :class:`~repro.sim.host.Host` what
:mod:`repro.experiments.runner` is to a single
:class:`~repro.sim.engine.Simulation`: it turns a declarative
:class:`~repro.scenarios.config.ScenarioConfig` into tenants (spawned
by the configured arrival generator, each with its own derived seed,
workload instance, and policy), multiplexes them on one shared frame
allocator, and packages every tenant's
:class:`~repro.sim.results.SimulationResult` plus the host-level
timeline into a picklable :class:`ScenarioResult` — cached on disk
under a scenario fingerprint exactly like single runs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._util import stable_seed
from repro.experiments.cache import (
    ResultCache,
    cache_enabled,
    scenario_fingerprint,
)
from repro.experiments.configs import make_policy
from repro.hardware.machines import machine_by_name
from repro.scenarios import ScenarioConfig, make_arrival_generator
from repro.sim.config import SimConfig
from repro.sim.engine import Tenant
from repro.sim.host import Host
from repro.sim.results import SimulationResult
from repro.workloads.registry import get_workload

#: Static-analysis registry (rule R104): scenario runs are the second
#: root of the simulation call graph, next to ``Simulation.run`` —
#: every random/clock sink reachable from here must be the sanctioned
#: ``rng_for`` site or an explicitly suppressed observability read.
_SIM_ENTRY_POINTS = ("run_scenario",)


@dataclass
class TenantRecord:
    """One tenant's lifecycle within a scenario."""

    tenant_id: int
    workload: str
    policy: str
    #: Host epoch the tenant was admitted at.
    arrival_epoch: int
    #: Host epoch the tenant left at (completion or OOM kill);
    #: ``None`` while running or if the scenario clock ran out first.
    exit_epoch: Optional[int] = None
    #: ``running`` / ``completed`` / ``oom-killed`` / ``truncated``.
    status: str = "running"
    #: Per-tenant simulation result (partial for killed/truncated
    #: tenants: whatever epochs they completed before leaving).
    result: Optional[SimulationResult] = None


@dataclass
class ScenarioResult:
    """Everything one scenario run produced (picklable)."""

    scenario: ScenarioConfig
    machine: str
    #: Host epochs the shared clock advanced.
    host_epochs: int
    #: Bytes pinned up front by the scenario's pressure fraction.
    pressure_bytes: int
    #: Per-tenant records in spawn order.
    tenants: List[TenantRecord] = field(default_factory=list)
    #: Host timeline: ``(host_epoch, event, tenant_id)`` with event in
    #: ``spawn`` / ``exit`` / ``oom-kill``.
    events: List[Tuple[int, str, int]] = field(default_factory=list)

    def by_status(self, status: str) -> List[TenantRecord]:
        """Tenant records in a given lifecycle state."""
        return [t for t in self.tenants if t.status == status]

    @property
    def n_completed(self) -> int:
        """Tenants that ran their workload to completion."""
        return len(self.by_status("completed"))

    @property
    def n_killed(self) -> int:
        """Tenants OOM-killed by shared-allocator exhaustion."""
        return len(self.by_status("oom-killed"))

    def mean_runtime_s(self, workload: Optional[str] = None) -> float:
        """Mean completed-tenant runtime, optionally per workload."""
        times = [
            t.result.runtime_s
            for t in self.by_status("completed")
            if t.result is not None
            and (workload is None or t.workload == workload)
        ]
        if not times:
            raise ValueError("no completed tenants match")
        return sum(times) / len(times)


def tenant_seed(scenario: ScenarioConfig, tenant_id: int) -> int:
    """The derived root seed for one tenant.

    Stable-hashed from the scenario seed and the spawn index, so every
    tenant gets an independent workload instantiation and stream bank
    while the whole scenario stays a pure function of its config.
    """
    return stable_seed(scenario.seed, "tenant", tenant_id) % (2**31)


def execute_scenario(
    scenario: ScenarioConfig,
    config: Optional[SimConfig] = None,
) -> ScenarioResult:
    """Run one scenario with no caching (the raw unit of work).

    ``config`` is the base :class:`SimConfig` every tenant's per-tenant
    config derives from (seed and epoch cap are overridden per tenant).
    """
    topo = machine_by_name(scenario.machine)
    base = config or SimConfig()
    host = Host(topo, config=base)
    pressure_bytes = (
        host.apply_pressure(scenario.pressure) if scenario.pressure else 0
    )
    gen = make_arrival_generator(scenario)
    records: Dict[int, TenantRecord] = {}
    events: List[Tuple[int, str, int]] = []
    next_id = 0

    while host.epoch < scenario.max_host_epochs and (
        host.active or not gen.exhausted()
    ):
        for workload_name, policy_name in gen.arrivals(
            host.epoch, len(host.active)
        ):
            seed = tenant_seed(scenario, next_id)
            tcfg = dataclasses.replace(base, seed=seed)
            if scenario.tenant_epochs is not None:
                tcfg = dataclasses.replace(
                    tcfg,
                    max_epochs=min(tcfg.max_epochs, scenario.tenant_epochs),
                )
            instance = get_workload(workload_name).instantiate(
                topo, tcfg.scale, seed
            )
            tenant = Tenant(
                topo,
                instance,
                make_policy(policy_name, seed=seed),
                config=tcfg,
                phys=host.phys,
                tenant_id=next_id,
            )
            host.admit(tenant)
            records[next_id] = TenantRecord(
                tenant_id=next_id,
                workload=workload_name,
                policy=policy_name,
                arrival_epoch=host.epoch,
            )
            events.append((host.epoch, "spawn", next_id))
            next_id += 1

        finished, killed = host.step_epoch()
        for tenant in finished:
            record = records[tenant.tenant_id]
            record.result = tenant.result()
            record.exit_epoch = host.epoch
            record.status = "completed"
            host.release(tenant)
            events.append((host.epoch, "exit", tenant.tenant_id))
        for tenant in killed:
            record = records[tenant.tenant_id]
            record.result = tenant.result()
            record.exit_epoch = host.epoch
            record.status = "oom-killed"
            events.append((host.epoch, "oom-kill", tenant.tenant_id))

    # The clock ran out with tenants still running: record what they
    # managed, release their pages, and mark them truncated so results
    # cannot be mistaken for completed runs.
    for tenant in list(host.active):
        record = records[tenant.tenant_id]
        record.result = tenant.result()
        record.status = "truncated"
        host.evict(tenant)

    return ScenarioResult(
        scenario=scenario,
        machine=topo.name,
        host_epochs=host.epoch,
        pressure_bytes=pressure_bytes,
        tenants=[records[i] for i in sorted(records)],
        events=events,
    )


def run_scenario(
    scenario: ScenarioConfig,
    config: Optional[SimConfig] = None,
    use_cache: bool = True,
) -> ScenarioResult:
    """Run a scenario, consulting the persistent result cache first.

    Scenarios are deterministic functions of (scenario config, base
    sim config, package version), so they cache exactly like single
    runs; ``use_cache=False`` bypasses and populates nothing.
    """
    base = config or SimConfig()
    if not use_cache or not cache_enabled():
        return execute_scenario(scenario, base)
    key = scenario_fingerprint(scenario, base)
    store = ResultCache.default()
    cached = store.get(key, expect=ScenarioResult)
    if cached is not None:
        return cached
    result = execute_scenario(scenario, base)
    store.put(key, result)
    return result
