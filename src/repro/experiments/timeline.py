"""Per-epoch time-series extraction and ASCII timelines.

The paper's algorithm is a feedback loop: THP creates an imbalance, the
daemon notices it one second later, splits/migrates, and the metrics
recover over the following intervals.  The figures only show end-state
averages; this module exposes the *trajectory* — per-epoch LAR,
imbalance, epoch time and maintenance events — and renders it as
sparkline timelines, which is the quickest way to see a policy converge
(or oscillate, as the reactive component does on SSCA).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class EpochSeries:
    """Per-epoch time series extracted from one run."""

    epoch_time_s: List[float]
    lar_pct: List[float]
    imbalance_pct: List[float]
    fault_time_s: List[float]
    walk_time_s: List[float]
    splits_2m: List[int]
    collapses_2m: List[int]
    migrated_pages: List[int]

    def __len__(self) -> int:
        return len(self.epoch_time_s)


def epoch_series(result: SimulationResult) -> EpochSeries:
    """Extract the per-epoch trajectory from a simulation result."""
    times, lars, imbs, faults, walks = [], [], [], [], []
    splits, collapses, migrated = [], [], []
    for e in result.bank.epochs:
        times.append(e.duration_s)
        per_controller = e.traffic.sum(axis=0)
        total = float(per_controller.sum())
        lars.append(100.0 * float(np.trace(e.traffic)) / total if total else 100.0)
        mean = per_controller.mean()
        imbs.append(100.0 * float(per_controller.std()) / mean if mean > 0 else 0.0)
        faults.append(e.time_fault_s)
        walks.append(e.time_walk_s)
        splits.append(e.pages_split_2m)
        collapses.append(e.pages_collapsed_2m)
        migrated.append(e.pages_migrated_4k + e.pages_migrated_2m)
    # Policy actions are logged at interval boundaries; attribute split
    # and migration counts to the epoch in which they were decided.
    for when, summary in result.action_log:
        cumulative = 0.0
        for i, duration in enumerate(times):
            cumulative += duration
            if cumulative >= when - 1e-9:
                splits[i] += summary.splits_2m
                migrated[i] += summary.migrated_4k + summary.migrated_2m
                break
    return EpochSeries(
        epoch_time_s=times,
        lar_pct=lars,
        imbalance_pct=imbs,
        fault_time_s=faults,
        walk_time_s=walks,
        splits_2m=splits,
        collapses_2m=collapses,
        migrated_pages=migrated,
    )


def sparkline(values: Sequence[float], lo: float = None, hi: float = None) -> str:
    """Render a numeric series as a block-character sparkline."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    if hi <= lo:
        return _SPARK_CHARS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1) + 0.5)
        out.append(_SPARK_CHARS[max(0, min(len(_SPARK_CHARS) - 1, idx))])
    return "".join(out)


def render_timeline(result: SimulationResult) -> str:
    """Multi-row sparkline timeline of one run."""
    series = epoch_series(result)
    if len(series) == 0:
        raise ConfigurationError("run has no epochs to render")
    rows: Dict[str, str] = {
        "epoch time": sparkline(series.epoch_time_s),
        "imbalance %": sparkline(series.imbalance_pct, lo=0.0),
        "LAR %": sparkline(series.lar_pct, lo=0.0, hi=100.0),
        "fault time": sparkline(series.fault_time_s, lo=0.0),
        "walk time": sparkline(series.walk_time_s, lo=0.0),
    }
    events = []
    for i in range(len(series)):
        marker = " "
        if series.splits_2m[i] > 0:
            marker = "S"
        elif series.collapses_2m[i] > 0:
            marker = "c"
        elif series.migrated_pages[i] > 0:
            marker = "m"
        events.append(marker)
    rows["actions"] = "".join(events)
    label_w = max(len(k) for k in rows)
    lines = [
        f"{result.workload}@{result.machine} under {result.policy}: "
        f"{result.runtime_s:.2f}s over {len(series)} epochs"
    ]
    for label, spark in rows.items():
        lines.append(f"  {label.rjust(label_w)} {spark}")
    stats = (
        f"  {'range'.rjust(label_w)} "
        f"imbalance {min(series.imbalance_pct):.0f}-{max(series.imbalance_pct):.0f}%"
        f", LAR {min(series.lar_pct):.0f}-{max(series.lar_pct):.0f}%"
        f", epoch {min(series.epoch_time_s):.3f}-{max(series.epoch_time_s):.3f}s"
    )
    lines.append(stats)
    lines.append("  actions: S=split  c=collapse/promote  m=migrate")
    return "\n".join(lines)


def convergence_epoch(
    values: Sequence[float], target: float, below: bool = True
) -> int:
    """First epoch from which the series stays on the target's good side.

    Returns -1 when the series never settles.  Used to quantify how
    fast a policy fixes a metric (e.g. imbalance below 15%).
    """
    vals = [float(v) for v in values]
    for start in range(len(vals)):
        tail = vals[start:]
        if all((v <= target) if below else (v >= target) for v in tail):
            return start
    return -1
