"""Claim-by-claim validation of the reproduction against the paper.

Every qualitative claim listed in
:data:`repro.experiments.paper_data.CLAIMS` has a check here that runs
the relevant simulations and decides PASS/FAIL, reporting the measured
values next to the paper's.  ``repro.cli validate`` prints the result;
``generate_experiments_md`` renders the full paper-vs-measured document
(checked in as ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import paper_data
from repro.experiments.reporting import Report
from repro.experiments.runner import RunSettings, run_benchmark


@dataclass
class ClaimResult:
    """Outcome of one claim check."""

    claim_id: str
    passed: bool
    measured: str
    paper: Optional[str]
    statement: str


def _imp(workload: str, machine: str, policy: str, settings: RunSettings) -> float:
    base = run_benchmark(workload, machine, "linux-4k", settings)
    return run_benchmark(workload, machine, policy, settings).improvement_over(base)


def _metrics(workload: str, machine: str, policy: str, settings: RunSettings):
    return run_benchmark(workload, machine, policy, settings).metrics()


# ----------------------------------------------------------------------
# Individual claim checks.  Each returns (passed, measured_description).
# ----------------------------------------------------------------------

def _check_thp_not_universal(s: RunSettings) -> Tuple[bool, str]:
    wins = _imp("WC", "B", "thp", s)
    loses = _imp("CG.D", "B", "thp", s)
    return wins > 20 and loses < -15, (
        f"WC@B {wins:+.1f}%, CG.D@B {loses:+.1f}%"
    )


def _check_cg_imbalance(s: RunSettings) -> Tuple[bool, str]:
    base = _metrics("CG.D", "B", "linux-4k", s).imbalance_pct
    thp = _metrics("CG.D", "B", "thp", s).imbalance_pct
    return base < 10 and thp > 40, f"imbalance {base:.0f}% -> {thp:.0f}%"


def _check_ua_lar_drop(s: RunSettings) -> Tuple[bool, str]:
    base = _metrics("UA.C", "B", "linux-4k", s).lar_pct
    thp = _metrics("UA.C", "B", "thp", s).lar_pct
    return thp < base - 15, f"LAR {base:.0f}% -> {thp:.0f}%"


def _check_wc_fault_bound(s: RunSettings) -> Tuple[bool, str]:
    base = _metrics("WC", "B", "linux-4k", s)
    thp = _metrics("WC", "B", "thp", s)
    return (
        base.max_fault_pct > 20 and thp.fault_time_total_s < base.fault_time_total_s / 2,
        f"fault {base.fault_time_total_s*1e3:.0f}ms ({base.max_fault_pct:.0f}%)"
        f" -> {thp.fault_time_total_s*1e3:.0f}ms",
    )


def _check_ssca_tlb_bound(s: RunSettings) -> Tuple[bool, str]:
    base = _metrics("SSCA.20", "A", "linux-4k", s).pct_l2_walk
    thp = _metrics("SSCA.20", "A", "thp", s).pct_l2_walk
    return base > 8 and thp < 2, f"L2-from-walks {base:.0f}% -> {thp:.0f}%"


def _check_specjbb_masked(s: RunSettings) -> Tuple[bool, str]:
    base = _metrics("SPECjbb", "A", "linux-4k", s)
    thp = _metrics("SPECjbb", "A", "thp", s)
    imp = _imp("SPECjbb", "A", "thp", s)
    return (
        base.pct_l2_walk > 2
        and thp.imbalance_pct > base.imbalance_pct + 10
        and imp < 8,
        f"walks {base.pct_l2_walk:.0f}% -> {thp.pct_l2_walk:.0f}%, imbalance"
        f" {base.imbalance_pct:.0f}% -> {thp.imbalance_pct:.0f}%, perf {imp:+.1f}%",
    )


def _check_cg_hot_pages(s: RunSettings) -> Tuple[bool, str]:
    base = _metrics("CG.D", "B", "linux-4k", s)
    thp = _metrics("CG.D", "B", "thp", s)
    return (
        base.n_hot_pages == 0 and 2 <= thp.n_hot_pages <= 4 and thp.pamup_pct > 5,
        f"NHP {base.n_hot_pages} -> {thp.n_hot_pages},"
        f" PAMUP {base.pamup_pct:.1f}% -> {thp.pamup_pct:.1f}%",
    )


def _check_ua_false_sharing(s: RunSettings) -> Tuple[bool, str]:
    base = _metrics("UA.B", "A", "linux-4k", s).psp_pct
    thp = _metrics("UA.B", "A", "thp", s).psp_pct
    return thp > base + 30, f"PSP {base:.0f}% -> {thp:.0f}%"


def _check_carrefour2m_partial(s: RunSettings) -> Tuple[bool, str]:
    jbb_thp = _metrics("SPECjbb", "A", "thp", s).imbalance_pct
    jbb_carr = _metrics("SPECjbb", "A", "carrefour-2m", s).imbalance_pct
    cg = _imp("CG.D", "B", "carrefour-2m", s)
    ua = _imp("UA.B", "A", "carrefour-2m", s)
    return (
        jbb_carr < jbb_thp - 8 and cg < -20 and ua < -5,
        f"SPECjbb imbalance {jbb_thp:.0f}% -> {jbb_carr:.0f}%;"
        f" CG.D@B {cg:+.1f}%, UA.B@A {ua:+.1f}% (unrecovered)",
    )


def _check_lp_restores(s: RunSettings) -> Tuple[bool, str]:
    cg_thp = _imp("CG.D", "B", "thp", s)
    cg_lp = _imp("CG.D", "B", "carrefour-lp", s)
    cg_imb = _metrics("CG.D", "B", "carrefour-lp", s).imbalance_pct
    ua_lar_lp = _metrics("UA.B", "A", "carrefour-lp", s).lar_pct
    ua_lar_thp = _metrics("UA.B", "A", "thp", s).lar_pct
    return (
        cg_lp > cg_thp + 15 and cg_imb < 25 and ua_lar_lp > ua_lar_thp + 5,
        f"CG.D@B {cg_thp:+.1f}% -> {cg_lp:+.1f}% (imbalance {cg_imb:.0f}%);"
        f" UA.B LAR {ua_lar_thp:.0f}% -> {ua_lar_lp:.0f}%",
    )


def _check_conservative_too_late(s: RunSettings) -> Tuple[bool, str]:
    thp = _imp("WC", "B", "thp", s)
    cons = _imp("WC", "B", "conservative-only", s)
    return cons < thp - 15, f"WC@B: THP {thp:+.1f}% vs conservative-only {cons:+.1f}%"


def _check_reactive_missplit(s: RunSettings) -> Tuple[bool, str]:
    carr = _imp("SSCA.20", "A", "carrefour-2m", s)
    reactive = _imp("SSCA.20", "A", "reactive-only", s)
    lp = _imp("SSCA.20", "A", "carrefour-lp", s)
    return (
        reactive < carr - 5 and lp > reactive,
        f"SSCA@A: carrefour-2m {carr:+.1f}%, reactive-only {reactive:+.1f}%,"
        f" carrefour-lp {lp:+.1f}%",
    )


def _check_lp_harmless(s: RunSettings) -> Tuple[bool, str]:
    neutral = {b: _imp(b, "A", "carrefour-lp", s) for b in ("Kmeans", "BT.B", "MG.D")}
    pca = _imp("pca", "B", "carrefour-lp", s)
    worst = min(neutral.values())
    return (
        worst > -8 and pca > 40,
        f"worst neutral app {worst:+.1f}%; pca@B {pca:+.1f}%",
    )


def _check_verylarge(s: RunSettings) -> Tuple[bool, str]:
    base = run_benchmark("streamcluster", "B", "linux-4k", s)
    huge = run_benchmark("streamcluster", "B", "linux-4k", s, backing_1g=True)
    ssca = _imp("SSCA.20", "B", "thp", s)  # warm cache; not asserted
    ssca_1g = run_benchmark("SSCA.20", "B", "linux-4k", s, backing_1g=True)
    ssca_base = run_benchmark("SSCA.20", "B", "linux-4k", s)
    slowdown = huge.runtime_s / base.runtime_s
    ssca_drop = ssca_1g.improvement_over(ssca_base)
    return (
        slowdown > 1.5 and ssca_drop < -15,
        f"streamcluster x{slowdown:.2f}; SSCA {ssca_drop:+.1f}%",
    )


_CHECKS: Dict[str, Callable[[RunSettings], Tuple[bool, str]]] = {
    "thp-not-universal": _check_thp_not_universal,
    "cg-imbalance": _check_cg_imbalance,
    "ua-lar-drop": _check_ua_lar_drop,
    "wc-fault-bound": _check_wc_fault_bound,
    "ssca-tlb-bound": _check_ssca_tlb_bound,
    "specjbb-masked": _check_specjbb_masked,
    "cg-hot-pages": _check_cg_hot_pages,
    "ua-false-sharing": _check_ua_false_sharing,
    "carrefour2m-partial": _check_carrefour2m_partial,
    "lp-restores": _check_lp_restores,
    "conservative-too-late": _check_conservative_too_late,
    "reactive-missplit": _check_reactive_missplit,
    "lp-harmless": _check_lp_harmless,
    "verylarge-pervasive": _check_verylarge,
}


def validate_claims(settings: Optional[RunSettings] = None) -> List[ClaimResult]:
    """Run every claim check; returns one result per claim."""
    settings = settings or RunSettings()
    results = []
    for claim in paper_data.CLAIMS:
        check = _CHECKS[claim.claim_id]
        passed, measured = check(settings)
        results.append(
            ClaimResult(
                claim_id=claim.claim_id,
                passed=passed,
                measured=measured,
                paper=claim.paper_value,
                statement=claim.statement,
            )
        )
    return results


def validate(settings: Optional[RunSettings] = None) -> Report:
    """Claim validation as a renderable report (CLI: ``repro validate``)."""
    results = validate_claims(settings)
    rows = [
        [
            "PASS" if r.passed else "FAIL",
            r.claim_id,
            r.paper or "-",
            r.measured,
        ]
        for r in results
    ]
    n_pass = sum(r.passed for r in results)
    return Report(
        experiment_id="validate",
        title=f"Paper-claim validation: {n_pass}/{len(results)} claims hold",
        headers=["status", "claim", "paper", "measured"],
        rows=rows,
        data={r.claim_id: r for r in results},
        notes=[
            "Claims are qualitative shapes (directions, orderings, rough"
            " factors), not absolute matches to the authors' hardware."
        ],
    )
