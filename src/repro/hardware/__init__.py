"""Simulated NUMA hardware: topology, memory system, TLBs, counters, IBS.

Everything the paper measures with model-specific registers on AMD
Opterons is produced here from the simulated memory-access streams.
"""

from repro.hardware.topology import NumaNode, NumaTopology
from repro.hardware.machines import machine_a, machine_b, machine_by_name
from repro.hardware.mem_controller import MemoryControllerModel
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.caches import CacheModel, che_characteristic_time, lru_hit_rate
from repro.hardware.tlb import TlbSpec, TlbModel
from repro.hardware.counters import CounterBank, EpochCounters
from repro.hardware.ibs import IbsEngine, IbsSamples

__all__ = [
    "NumaNode",
    "NumaTopology",
    "machine_a",
    "machine_b",
    "machine_by_name",
    "MemoryControllerModel",
    "InterconnectModel",
    "CacheModel",
    "che_characteristic_time",
    "lru_hit_rate",
    "TlbSpec",
    "TlbModel",
    "CounterBank",
    "EpochCounters",
    "IbsEngine",
    "IbsSamples",
]
