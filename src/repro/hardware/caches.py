"""Analytic LRU cache model (Che's approximation).

Both the TLB model and the page-walk cache/L2 model need the same
primitive: given a popularity distribution over items (pages, PTE cache
lines) and an LRU cache of ``capacity`` entries, what is the hit rate?

Che's approximation [Che et al., JSAC 2002] answers this accurately for
LRU under the independent reference model: an item accessed with
probability :math:`p_i` hits with probability
:math:`1 - e^{-p_i T_C}` where the characteristic time :math:`T_C`
solves :math:`\\sum_i (1 - e^{-p_i T_C}) = C`.

The approximation is exactly the quantity the paper consumes: TLB
behaviour only enters through aggregate miss rates and the fraction of
L2 misses caused by page-table walks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

_MAX_BISECTION_STEPS = 80


def che_characteristic_time(popularity: np.ndarray, capacity: int) -> float:
    """Solve for the characteristic time ``T_C`` of an LRU cache.

    Parameters
    ----------
    popularity:
        Per-item access probabilities.  Must be non-negative; zero
        entries are allowed and ignored.  Need not sum to one (it is
        normalised internally).
    capacity:
        Cache capacity in items; must be positive.

    Returns
    -------
    float
        ``T_C`` in units of accesses.  ``inf`` when every distinct item
        fits in the cache (the hit rate is then 1).
    """
    if capacity <= 0:
        raise ConfigurationError("cache capacity must be positive")
    p = np.asarray(popularity, dtype=np.float64)
    if p.ndim != 1:
        raise ConfigurationError("popularity must be a 1-D array")
    if p.size and float(np.min(p)) < 0:
        raise ConfigurationError("popularity values must be non-negative")
    p = p[p > 0]
    if p.size == 0 or p.size <= capacity:
        return float("inf")
    total = float(np.sum(p))
    p = p / total

    def occupied(t: float) -> float:
        return float(np.sum(-np.expm1(-p * t)))

    lo, hi = 0.0, float(capacity)
    # Grow hi until the occupancy at hi exceeds the capacity.
    while occupied(hi) < capacity:
        lo = hi
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - numeric guard
            return hi
    for _ in range(_MAX_BISECTION_STEPS):
        mid = 0.5 * (lo + hi)
        if occupied(mid) < capacity:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def lru_hit_rate(popularity: np.ndarray, capacity: int) -> float:
    """Aggregate hit rate of an LRU cache under Che's approximation.

    Returns the access-weighted hit probability in ``[0, 1]``.
    """
    p = np.asarray(popularity, dtype=np.float64)
    p = p[p > 0]
    if p.size == 0:
        return 1.0
    t_c = che_characteristic_time(p, capacity)
    if np.isinf(t_c):
        return 1.0
    p = p / float(np.sum(p))
    hit = float(np.sum(p * -np.expm1(-p * t_c)))
    return min(max(hit, 0.0), 1.0)


def che_characteristic_time_grouped(
    group_counts: np.ndarray, group_weights: np.ndarray, capacity: int
) -> float:
    """Characteristic time for popularity given as *groups* of equal items.

    Group ``i`` contains ``group_counts[i]`` items which together receive
    ``group_weights[i]`` of the accesses (each item in the group has
    probability ``group_weights[i] / group_counts[i]``).  This closed
    form avoids materialising per-item arrays for working sets of
    millions of pages.
    """
    if capacity <= 0:
        raise ConfigurationError("cache capacity must be positive")
    counts = np.asarray(group_counts, dtype=np.float64)
    weights = np.asarray(group_weights, dtype=np.float64)
    if counts.shape != weights.shape:
        raise ConfigurationError("group counts and weights must align")
    if counts.size and (np.any(counts < 0) or np.any(weights < 0)):
        raise ConfigurationError("group counts and weights must be non-negative")
    live = (counts > 0) & (weights > 0)
    counts, weights = counts[live], weights[live]
    if counts.size == 0 or float(np.sum(counts)) <= capacity:
        return float("inf")
    weights = weights / float(np.sum(weights))
    per_item = weights / counts

    def occupied(t: float) -> float:
        return float(np.sum(counts * -np.expm1(-per_item * t)))

    lo, hi = 0.0, float(capacity)
    while occupied(hi) < capacity:
        lo = hi
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - numeric guard
            return hi
    for _ in range(_MAX_BISECTION_STEPS):
        mid = 0.5 * (lo + hi)
        if occupied(mid) < capacity:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def lru_hit_rate_grouped(
    group_counts: np.ndarray, group_weights: np.ndarray, capacity: int
) -> float:
    """Aggregate LRU hit rate for grouped popularity (see above)."""
    counts = np.asarray(group_counts, dtype=np.float64)
    weights = np.asarray(group_weights, dtype=np.float64)
    live = (counts > 0) & (weights > 0)
    counts, weights = counts[live], weights[live]
    if counts.size == 0:
        return 1.0
    t_c = che_characteristic_time_grouped(counts, weights, capacity)
    if np.isinf(t_c):
        return 1.0
    weights = weights / float(np.sum(weights))
    per_item = weights / counts
    hit = float(np.sum(weights * -np.expm1(-per_item * t_c)))
    return min(max(hit, 0.0), 1.0)


def lru_group_hit_rates(
    group_counts: np.ndarray, group_weights: np.ndarray, capacity: int
) -> np.ndarray:
    """Per-group LRU hit rates under a shared cache (Che approximation).

    Returns an array aligned with the input groups (groups with zero
    count or weight get hit rate 1.0 — they never miss because they are
    never accessed).
    """
    counts = np.asarray(group_counts, dtype=np.float64)
    weights = np.asarray(group_weights, dtype=np.float64)
    if counts.shape != weights.shape:
        raise ConfigurationError("group counts and weights must align")
    out = np.ones(counts.shape, dtype=np.float64)
    live = (counts > 0) & (weights > 0)
    if not np.any(live):
        return out
    t_c = che_characteristic_time_grouped(counts[live], weights[live], capacity)
    if np.isinf(t_c):
        return out
    w = weights[live] / float(np.sum(weights[live]))
    per_item = w / counts[live]
    out[live] = np.clip(-np.expm1(-per_item * t_c), 0.0, 1.0)
    return out


@dataclass(frozen=True)
class CacheModel:
    """L2 cache model for page-walk references.

    On AMD Opterons a TLB miss triggers a hardware page-table walk whose
    references compete for the L2 cache with application data.  The
    paper's conservative component watches "the fraction of L2 cache
    misses due to page table walks".  We reproduce that signal: the
    leaf-level PTEs of the pages touched in an epoch form a working set
    of 64-byte cache lines (8 PTEs each); Che's approximation over that
    working set, restricted to the share of L2 capacity available to
    page-table data, yields the per-walk L2 miss probability.

    Attributes
    ----------
    l2_lines_for_walks:
        Number of 64-byte L2 lines effectively available to page-table
        data (the rest is occupied by application data).
    l2_miss_penalty_cycles:
        Extra cycles charged when a walk reference misses in L2
        (serviced from L3 or DRAM).
    ptes_per_line:
        PTEs per 64-byte cache line (8 on x86-64).
    """

    l2_lines_for_walks: int = 512
    l2_miss_penalty_cycles: float = 180.0
    ptes_per_line: int = 8

    def walk_l2_miss_rate(self, page_popularity: np.ndarray) -> float:
        """Probability that a page-walk leaf reference misses in L2.

        ``page_popularity`` is the per-page access-count vector of the
        epoch (any non-negative weights).  Consecutive pages share PTE
        cache lines, so the popularity vector is folded by
        ``ptes_per_line`` before applying the LRU model.
        """
        counts = np.asarray(page_popularity, dtype=np.float64)
        counts = counts[counts > 0]
        if counts.size == 0:
            return 0.0
        pad = (-counts.size) % self.ptes_per_line
        if pad:
            counts = np.concatenate([counts, np.zeros(pad)])
        lines = counts.reshape(-1, self.ptes_per_line).sum(axis=1)
        return 1.0 - lru_hit_rate(lines, self.l2_lines_for_walks)

    def walk_l2_miss_rate_grouped(
        self, group_counts: np.ndarray, group_weights: np.ndarray
    ) -> float:
        """Grouped-popularity version of :meth:`walk_l2_miss_rate`.

        ``group_counts[i]`` pages share ``group_weights[i]`` of the
        accesses; consecutive pages share PTE lines, so line counts are
        the page counts divided by :attr:`ptes_per_line`.
        """
        counts = np.asarray(group_counts, dtype=np.float64)
        weights = np.asarray(group_weights, dtype=np.float64)
        live = (counts > 0) & (weights > 0)
        counts, weights = counts[live], weights[live]
        if counts.size == 0:
            return 0.0
        lines = np.maximum(counts / self.ptes_per_line, 1.0)
        return 1.0 - lru_hit_rate_grouped(lines, weights, self.l2_lines_for_walks)
