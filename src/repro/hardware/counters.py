"""Hardware performance-counter accounting.

The real system reads model-specific registers; we account the same
quantities exactly from the simulation.  Two consumers exist:

* the *reporting* path (Tables 1-3 of the paper) reads whole-run
  aggregates;
* the *policy* path (Carrefour-LP's conservative component) reads the
  aggregate over the last monitoring interval (one simulated second).

Both consume :class:`EpochCounters` objects merged by
:class:`CounterBank`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class EpochCounters:
    """Event counts for one simulated epoch.

    All request counts are *represented* counts (scaled up from the
    sampled stream to the workload's real intensity).
    """

    epoch: int
    duration_s: float
    #: (n_nodes, n_nodes) DRAM requests: [accessing node, home node].
    traffic: np.ndarray
    instructions: float = 0.0
    mem_accesses: float = 0.0
    l2_data_misses: float = 0.0
    walk_l2_misses: float = 0.0
    tlb_misses: float = 0.0
    page_faults_4k: float = 0.0
    page_faults_2m: float = 0.0
    page_faults_1g: float = 0.0
    #: Page-fault handler time per core, seconds.
    fault_time_per_core_s: Optional[np.ndarray] = None
    daemon_time_s: float = 0.0
    #: Thread-summed time components (diagnostics; the epoch's critical
    #: path is duration_s, set by the slowest thread).
    time_cpu_s: float = 0.0
    time_dram_s: float = 0.0
    time_walk_s: float = 0.0
    time_fault_s: float = 0.0
    time_ibs_s: float = 0.0
    pages_migrated_4k: int = 0
    pages_migrated_2m: int = 0
    pages_split_2m: int = 0
    pages_split_1g: int = 0
    pages_collapsed_2m: int = 0
    #: Replicated pages collapsed because a write hit them this epoch.
    replicas_collapsed: int = 0
    ibs_samples: int = 0

    def __post_init__(self) -> None:
        self.traffic = np.asarray(self.traffic, dtype=np.float64)
        if self.traffic.ndim != 2 or self.traffic.shape[0] != self.traffic.shape[1]:
            raise ConfigurationError("traffic must be a square matrix")
        if self.duration_s < 0:
            raise ConfigurationError("epoch duration must be non-negative")
        if self.fault_time_per_core_s is not None:
            self.fault_time_per_core_s = np.asarray(
                self.fault_time_per_core_s, dtype=np.float64
            )

    @property
    def dram_requests(self) -> float:
        """Total DRAM requests across all controllers."""
        return float(self.traffic.sum())

    @property
    def local_requests(self) -> float:
        """DRAM requests serviced by the accessing thread's own node."""
        return float(np.trace(self.traffic))


@dataclass
class CounterBank:
    """Aggregate of epoch counters with the paper's derived metrics."""

    n_nodes: int
    n_cores: int
    epochs: List[EpochCounters] = field(default_factory=list)

    def add(self, counters: EpochCounters) -> None:
        """Record one epoch's counters."""
        if counters.traffic.shape != (self.n_nodes, self.n_nodes):
            raise ConfigurationError(
                f"traffic shape {counters.traffic.shape} does not match "
                f"{self.n_nodes} nodes"
            )
        self.epochs.append(counters)

    def window(self, start_epoch: int, end_epoch: Optional[int] = None) -> "CounterBank":
        """A sub-bank over ``[start_epoch, end_epoch)`` (by epoch index)."""
        selected = [
            e
            for e in self.epochs
            if e.epoch >= start_epoch and (end_epoch is None or e.epoch < end_epoch)
        ]
        bank = CounterBank(self.n_nodes, self.n_cores)
        bank.epochs = selected
        return bank

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        """Total simulated time covered by the bank."""
        return sum(e.duration_s for e in self.epochs)

    @property
    def traffic(self) -> np.ndarray:
        """Summed (accessing node, home node) DRAM traffic matrix."""
        total = np.zeros((self.n_nodes, self.n_nodes), dtype=np.float64)
        for e in self.epochs:
            total += e.traffic
        return total

    def total(self, attribute: str) -> float:
        """Sum a scalar counter attribute across epochs."""
        return float(sum(getattr(e, attribute) for e in self.epochs))

    @property
    def fault_time_per_core_s(self) -> np.ndarray:
        """Summed page-fault handler time per core."""
        total = np.zeros(self.n_cores, dtype=np.float64)
        for e in self.epochs:
            if e.fault_time_per_core_s is not None:
                total += e.fault_time_per_core_s
        return total

    # ------------------------------------------------------------------
    # Derived metrics (paper Section 2.2)
    # ------------------------------------------------------------------
    def lar(self) -> float:
        """Local access ratio: percent of DRAM requests to the local node."""
        traffic = self.traffic
        total = traffic.sum()
        if total <= 0:
            return 100.0
        return 100.0 * float(np.trace(traffic)) / float(total)

    def imbalance(self) -> float:
        """Traffic imbalance: std-dev of per-controller request rates, % of mean."""
        per_controller = self.traffic.sum(axis=0)
        mean = per_controller.mean()
        if mean <= 0:
            return 0.0
        return 100.0 * float(per_controller.std()) / float(mean)

    def pct_l2_misses_from_walks(self) -> float:
        """Percent of all L2 misses caused by page-table walks."""
        walks = self.total("walk_l2_misses")
        data = self.total("l2_data_misses")
        total = walks + data
        if total <= 0:
            return 0.0
        return 100.0 * walks / total

    def max_fault_time_fraction(self) -> float:
        """Max over cores of (page-fault handler time / total time), percent."""
        duration = self.duration_s
        if duration <= 0:
            return 0.0
        return 100.0 * float(self.fault_time_per_core_s.max()) / duration

    def total_fault_time_s(self) -> float:
        """Summed page-fault handler time across cores (paper Table 1)."""
        return float(self.fault_time_per_core_s.sum())

    def maptu(self) -> float:
        """Memory accesses (DRAM requests) per microsecond of run time.

        Carrefour's global enable threshold is stated in terms of memory
        accesses per time unit (MAPTU); we use requests per microsecond.
        """
        duration = self.duration_s
        if duration <= 0:
            return 0.0
        return self.total("l2_data_misses") / (duration * 1e6)

    def time_breakdown(self) -> Dict[str, float]:
        """Thread-summed time components across the bank (diagnostics)."""
        return {
            "cpu": self.total("time_cpu_s"),
            "dram": self.total("time_dram_s"),
            "walk": self.total("time_walk_s"),
            "fault": self.total("time_fault_s"),
            "ibs": self.total("time_ibs_s"),
            "maintenance": self.total("daemon_time_s"),
        }

    def describe(self) -> str:
        """Short human-readable summary for debugging and reports."""
        return (
            f"{len(self.epochs)} epochs, {self.duration_s:.2f}s, "
            f"LAR={self.lar():.1f}%, imbalance={self.imbalance():.1f}%, "
            f"L2-walk={self.pct_l2_misses_from_walks():.1f}%, "
            f"max-fault={self.max_fault_time_fraction():.1f}%"
        )


def merge_banks(banks: Sequence[CounterBank]) -> CounterBank:
    """Merge several banks (same machine shape) into one."""
    if not banks:
        raise ConfigurationError("cannot merge zero banks")
    first = banks[0]
    merged = CounterBank(first.n_nodes, first.n_cores)
    for bank in banks:
        if (bank.n_nodes, bank.n_cores) != (first.n_nodes, first.n_cores):
            raise ConfigurationError("banks to merge must share machine shape")
        merged.epochs.extend(bank.epochs)
    return merged
