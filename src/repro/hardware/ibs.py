"""Instruction-based-sampling (IBS) style memory-access sampler.

AMD's IBS tags a random subset of instructions and reports, for memory
operations, the data address and whether the access was serviced from
local or remote DRAM.  Carrefour and Carrefour-LP are entirely driven
by these samples.

We sample the simulated DRAM-access streams honestly: every epoch, each
thread contributes ``rate x represented_accesses`` samples drawn
uniformly from its access stream.  Because the number of samples per
page is finite, the policy's estimates carry real sampling error — this
is what reproduces the paper's observation (Section 4.1) that the
reactive component sometimes *misestimates* the post-split LAR (e.g.
predicting 59% for SSCA when the true value is 25%).

Samples are kept in per-node buffers, mirroring the paper's scalability
fix (Section 4.3): the original centralised sample store serialised all
nodes on one lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class IbsSamples:
    """A batch of IBS samples as parallel arrays.

    Attributes
    ----------
    granule:
        4KB-granule index of the sampled data address.
    accessing_node:
        NUMA node of the core that executed the sampled access.
    home_node:
        NUMA node whose DRAM serviced the access.
    thread:
        Simulated thread id that executed the access.
    from_dram:
        Whether the access was serviced from DRAM (the policies ignore
        pages with no DRAM-serviced samples; our sampler observes the
        DRAM stream so this is always true, but the field is kept for
        API fidelity with real IBS records).
    """

    granule: np.ndarray
    accessing_node: np.ndarray
    home_node: np.ndarray
    thread: np.ndarray
    from_dram: np.ndarray
    #: Whether the sampled access was a store (used by the replication
    #: logic: only never-written pages are safe to replicate).
    is_write: np.ndarray = None

    def __post_init__(self) -> None:
        n = len(self.granule)
        if self.is_write is None:
            self.is_write = np.zeros(n, dtype=bool)
        for name in ("accessing_node", "home_node", "thread", "from_dram", "is_write"):
            if len(getattr(self, name)) != n:
                raise ConfigurationError("IBS sample arrays must have equal length")

    def __len__(self) -> int:
        return int(len(self.granule))

    @classmethod
    def empty(cls) -> "IbsSamples":
        """A zero-length batch."""
        return cls(
            granule=np.empty(0, dtype=np.int64),
            accessing_node=np.empty(0, dtype=np.int8),
            home_node=np.empty(0, dtype=np.int8),
            thread=np.empty(0, dtype=np.int16),
            from_dram=np.empty(0, dtype=bool),
            is_write=np.empty(0, dtype=bool),
        )

    @classmethod
    def concatenate(cls, batches: Sequence["IbsSamples"]) -> "IbsSamples":
        """Concatenate batches into one."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        return cls(
            granule=np.concatenate([b.granule for b in batches]),
            accessing_node=np.concatenate([b.accessing_node for b in batches]),
            home_node=np.concatenate([b.home_node for b in batches]),
            thread=np.concatenate([b.thread for b in batches]),
            from_dram=np.concatenate([b.from_dram for b in batches]),
            is_write=np.concatenate([b.is_write for b in batches]),
        )


class IbsEngine:
    """Collects IBS samples from per-epoch access streams.

    Parameters
    ----------
    n_nodes:
        Number of NUMA nodes (one sample buffer per node).
    rate:
        Samples per represented DRAM access (e.g. ``2e-5``).
    cost_cycles_per_sample:
        CPU cycles charged per collected sample (interrupt + record),
        the source of IBS overhead in the paper's overhead assessment.
    """

    def __init__(
        self,
        n_nodes: int,
        rate: float = 2e-5,
        cost_cycles_per_sample: float = 2500.0,
    ) -> None:
        if n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("sampling rate must be in [0, 1]")
        if cost_cycles_per_sample < 0:
            raise ConfigurationError("cost per sample must be non-negative")
        self.n_nodes = n_nodes
        self.rate = rate
        self.cost_cycles_per_sample = cost_cycles_per_sample
        self._buffers: List[List[IbsSamples]] = [[] for _ in range(n_nodes)]
        self._collected_since_drain = 0

    def record_epoch(
        self,
        thread: int,
        accessing_node: int,
        granules: np.ndarray,
        home_nodes: np.ndarray,
        represented_accesses: float,
        rng: np.random.Generator,
        writes: "np.ndarray" = None,
    ) -> int:
        """Sample one thread-epoch stream; returns the number of samples.

        ``granules``/``home_nodes`` form the sampled DRAM stream; the
        stream stands for ``represented_accesses`` real accesses.
        """
        if not 0 <= accessing_node < self.n_nodes:
            raise ConfigurationError("accessing_node out of range")
        n_stream = len(granules)
        if n_stream == 0 or represented_accesses <= 0 or self.rate == 0:
            return 0
        expected = self.rate * represented_accesses
        n_samples = int(rng.poisson(expected))
        if n_samples == 0:
            return 0
        # Cap: sampling more than the stream length adds no information.
        n_samples = min(n_samples, n_stream)
        idx = rng.integers(0, n_stream, size=n_samples)
        batch = IbsSamples(
            granule=np.asarray(granules, dtype=np.int64)[idx],
            accessing_node=np.full(n_samples, accessing_node, dtype=np.int8),
            home_node=np.asarray(home_nodes, dtype=np.int8)[idx],
            thread=np.full(n_samples, thread, dtype=np.int16),
            from_dram=np.ones(n_samples, dtype=bool),
            is_write=(
                np.asarray(writes, dtype=bool)[idx]
                if writes is not None
                else np.zeros(n_samples, dtype=bool)
            ),
        )
        self._buffers[accessing_node].append(batch)
        self._collected_since_drain += n_samples
        return n_samples

    @property
    def pending_samples(self) -> int:
        """Samples collected since the last drain."""
        return self._collected_since_drain

    def drain(self) -> IbsSamples:
        """Return and clear all buffered samples (all nodes combined)."""
        batches: List[IbsSamples] = []
        for buffer in self._buffers:
            batches.extend(buffer)
            buffer.clear()
        self._collected_since_drain = 0
        return IbsSamples.concatenate(batches)

    def overhead_seconds(self, n_samples: int, cpu_freq_hz: float) -> float:
        """CPU time consumed collecting ``n_samples`` samples."""
        if n_samples < 0:
            raise ConfigurationError("n_samples must be non-negative")
        return n_samples * self.cost_cycles_per_sample / cpu_freq_hz
