"""Instruction-based-sampling (IBS) style memory-access sampler.

AMD's IBS tags a random subset of instructions and reports, for memory
operations, the data address and whether the access was serviced from
local or remote DRAM.  Carrefour and Carrefour-LP are entirely driven
by these samples.

We sample the simulated DRAM-access streams honestly: every epoch, each
thread contributes ``rate x represented_accesses`` samples drawn
uniformly from its access stream.  Because the number of samples per
page is finite, the policy's estimates carry real sampling error — this
is what reproduces the paper's observation (Section 4.1) that the
reactive component sometimes *misestimates* the post-split LAR (e.g.
predicting 59% for SSCA when the true value is 25%).

Samples are kept in per-node buffers, mirroring the paper's scalability
fix (Section 4.3): the original centralised sample store serialised all
nodes on one lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.units import (
    NodeArray,
    NodeId,
    Pages4KArray,
    Samples,
    ThreadArray,
    ThreadId,
)


@dataclass
class IbsSamples:
    """A batch of IBS samples as parallel arrays.

    Attributes
    ----------
    granule:
        4KB-granule index of the sampled data address.
    accessing_node:
        NUMA node of the core that executed the sampled access.
    home_node:
        NUMA node whose DRAM serviced the access.
    thread:
        Simulated thread id that executed the access.
    from_dram:
        Whether the access was serviced from DRAM (the policies ignore
        pages with no DRAM-serviced samples; our sampler observes the
        DRAM stream so this is always true, but the field is kept for
        API fidelity with real IBS records).
    """

    granule: Pages4KArray
    accessing_node: NodeArray
    home_node: NodeArray
    thread: ThreadArray
    from_dram: np.ndarray
    #: Whether the sampled access was a store (used by the replication
    #: logic: only never-written pages are safe to replicate).
    is_write: np.ndarray = None

    def __post_init__(self) -> None:
        n = len(self.granule)
        if self.is_write is None:
            self.is_write = np.zeros(n, dtype=bool)
        for name in ("accessing_node", "home_node", "thread", "from_dram", "is_write"):
            if len(getattr(self, name)) != n:
                raise ConfigurationError("IBS sample arrays must have equal length")

    def __len__(self) -> int:
        return int(len(self.granule))

    @classmethod
    def empty(cls) -> "IbsSamples":
        """A zero-length batch."""
        return cls(
            granule=np.empty(0, dtype=np.int64),
            accessing_node=np.empty(0, dtype=np.int8),
            home_node=np.empty(0, dtype=np.int8),
            thread=np.empty(0, dtype=np.int16),
            from_dram=np.empty(0, dtype=bool),
            is_write=np.empty(0, dtype=bool),
        )

    @classmethod
    def concatenate(cls, batches: Sequence["IbsSamples"]) -> "IbsSamples":
        """Concatenate batches into one."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        return cls(
            granule=np.concatenate([b.granule for b in batches]),
            accessing_node=np.concatenate([b.accessing_node for b in batches]),
            home_node=np.concatenate([b.home_node for b in batches]),
            thread=np.concatenate([b.thread for b in batches]),
            from_dram=np.concatenate([b.from_dram for b in batches]),
            is_write=np.concatenate([b.is_write for b in batches]),
        )


class _SampleStore:
    """Columnar, amortised-growth sample store for one node.

    Replaces the old list-of-batches buffer: per-epoch appends land in
    preallocated arrays (capacity doubling), so a drain takes one slice
    per column instead of concatenating hundreds of tiny per-thread
    batches.  Append order is preserved, keeping drained sample order
    identical to the list-based implementation.
    """

    _INITIAL_CAPACITY = 256
    _COLUMNS = (
        ("granule", np.int64),
        ("accessing_node", np.int8),
        ("home_node", np.int8),
        ("thread", np.int16),
        ("is_write", bool),
    )

    def __init__(self) -> None:
        self._capacity = 0
        self._length = 0
        for name, _ in self._COLUMNS:
            setattr(self, "_" + name, None)

    def __len__(self) -> int:
        return self._length

    def _reserve(self, extra: int) -> None:
        need = self._length + extra
        if need <= self._capacity:
            return
        capacity = max(self._INITIAL_CAPACITY, self._capacity)
        while capacity < need:
            capacity *= 2
        for name, dtype in self._COLUMNS:
            attr = "_" + name
            old = getattr(self, attr)
            grown = np.empty(capacity, dtype=dtype)
            if old is not None and self._length:
                grown[: self._length] = old[: self._length]
            setattr(self, attr, grown)
        self._capacity = capacity

    def append(
        self,
        granule: np.ndarray,
        home_node: np.ndarray,
        thread: int,
        accessing_node: int,
        is_write: np.ndarray,
    ) -> None:
        n = len(granule)
        if n == 0:
            return
        self._reserve(n)
        lo, hi = self._length, self._length + n
        self._granule[lo:hi] = granule
        self._home_node[lo:hi] = home_node
        self._thread[lo:hi] = thread
        self._accessing_node[lo:hi] = accessing_node
        self._is_write[lo:hi] = is_write
        self._length = hi

    def drain(self) -> Optional[IbsSamples]:
        """Pop all stored samples as one batch (None when empty)."""
        if self._length == 0:
            return None
        n = self._length
        batch = IbsSamples(
            granule=self._granule[:n].copy(),
            accessing_node=self._accessing_node[:n].copy(),
            home_node=self._home_node[:n].copy(),
            thread=self._thread[:n].copy(),
            from_dram=np.ones(n, dtype=bool),
            is_write=self._is_write[:n].copy(),
        )
        self._length = 0
        return batch


class IbsEngine:
    """Collects IBS samples from per-epoch access streams.

    Parameters
    ----------
    n_nodes:
        Number of NUMA nodes (one sample buffer per node).
    rate:
        Samples per represented DRAM access (e.g. ``2e-5``).
    cost_cycles_per_sample:
        CPU cycles charged per collected sample (interrupt + record),
        the source of IBS overhead in the paper's overhead assessment.
    """

    def __init__(
        self,
        n_nodes: int,
        rate: float = 2e-5,
        cost_cycles_per_sample: float = 2500.0,
    ) -> None:
        if n_nodes <= 0:
            raise ConfigurationError("n_nodes must be positive")
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("sampling rate must be in [0, 1]")
        if cost_cycles_per_sample < 0:
            raise ConfigurationError("cost per sample must be non-negative")
        self.n_nodes = n_nodes
        self.rate = rate
        self.cost_cycles_per_sample = cost_cycles_per_sample
        self._stores: List[_SampleStore] = [_SampleStore() for _ in range(n_nodes)]
        self._collected_since_drain = 0

    def record_epoch(
        self,
        thread: ThreadId,
        accessing_node: NodeId,
        granules: Pages4KArray,
        home_nodes: NodeArray,
        represented_accesses: float,
        rng: np.random.Generator,
        writes: "np.ndarray" = None,
    ) -> Samples:
        """Sample one thread-epoch stream; returns the number of samples.

        ``granules``/``home_nodes`` form the sampled DRAM stream; the
        stream stands for ``represented_accesses`` real accesses.
        """
        if not 0 <= accessing_node < self.n_nodes:
            raise ConfigurationError("accessing_node out of range")
        n_stream = len(granules)
        if n_stream == 0 or represented_accesses <= 0 or self.rate == 0:
            return 0
        expected = self.rate * represented_accesses
        n_samples = int(rng.poisson(expected))
        if n_samples == 0:
            return 0
        # Cap: sampling more than the stream length adds no information.
        n_samples = min(n_samples, n_stream)
        idx = rng.integers(0, n_stream, size=n_samples)
        self._stores[accessing_node].append(
            np.asarray(granules, dtype=np.int64)[idx],
            np.asarray(home_nodes, dtype=np.int8)[idx],
            thread,
            accessing_node,
            (
                np.asarray(writes, dtype=bool)[idx]
                if writes is not None
                else np.zeros(n_samples, dtype=bool)
            ),
        )
        self._collected_since_drain += n_samples
        return n_samples

    def record_epoch_batch(
        self,
        threads: ThreadArray,
        accessing_nodes: NodeArray,
        streams: Pages4KArray,
        home_nodes: NodeArray,
        writes: np.ndarray,
        stream_sizes: np.ndarray,
        represented_accesses: float,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Sample many thread-epoch streams in one call.

        ``streams``/``home_nodes``/``writes`` are ``(n_threads,
        stream_length)`` matrices of which row ``t`` holds the first
        ``stream_sizes[t]`` entries of thread ``t``'s stream;
        ``accessing_nodes[t]`` is the thread's node.  Threads are
        processed in the order given by ``threads`` and each thread's
        Poisson/index draws come from its own ``rngs[t]``, so the
        per-thread RNG stream order is identical to calling
        :meth:`record_epoch` thread by thread.  Returns per-thread
        sample counts indexed like ``stream_sizes``.
        """
        counts = np.zeros(len(stream_sizes), dtype=np.int64)
        if self.rate == 0 or represented_accesses <= 0:
            return counts
        expected = self.rate * represented_accesses
        for t in threads:
            t = int(t)
            n_stream = int(stream_sizes[t])
            if n_stream == 0:
                continue
            node = int(accessing_nodes[t])
            if not 0 <= node < self.n_nodes:
                raise ConfigurationError("accessing_node out of range")
            rng = rngs[t]
            n_samples = int(rng.poisson(expected))
            if n_samples == 0:
                continue
            n_samples = min(n_samples, n_stream)
            idx = rng.integers(0, n_stream, size=n_samples)
            self._stores[node].append(
                streams[t, idx],
                home_nodes[t, idx].astype(np.int8),
                t,
                node,
                writes[t, idx],
            )
            self._collected_since_drain += n_samples
            counts[t] = n_samples
        return counts

    @property
    def pending_samples(self) -> Samples:
        """Samples collected since the last drain."""
        return self._collected_since_drain

    def drain(self) -> IbsSamples:
        """Return and clear all buffered samples (all nodes combined)."""
        batches: List[IbsSamples] = []
        for store in self._stores:
            batch = store.drain()
            if batch is not None:
                batches.append(batch)
        self._collected_since_drain = 0
        if len(batches) == 1:
            return batches[0]
        return IbsSamples.concatenate(batches)

    def overhead_seconds(self, n_samples: Samples, cpu_freq_hz: float) -> float:
        """CPU time consumed collecting ``n_samples`` samples."""
        if n_samples < 0:
            raise ConfigurationError("n_samples must be non-negative")
        return n_samples * self.cost_cycles_per_sample / cpu_freq_hz
