"""HyperTransport-style interconnect latency and congestion model.

Remote memory accesses traverse one or more interconnect hops; each hop
adds latency, and heavily used links add queueing delay.  We model link
congestion at node granularity: the remote traffic entering/leaving a
node shares that node's HT links, so per-hop latency for traffic
touching node ``n`` inflates with that node's remote-traffic
utilisation.  This coarse model is sufficient because the paper's
policies only observe aggregate latency effects (via LAR and controller
imbalance), never per-link counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.topology import NumaTopology


@dataclass(frozen=True)
class InterconnectModel:
    """Latency model for the point-to-point interconnect.

    Attributes
    ----------
    hop_latency_cycles:
        Added latency per interconnect hop, uncontended.
    link_capacity_requests_per_sec:
        Sustainable remote-request rate through one node's links.
    congestion_factor:
        Multiplier controlling how sharply hop latency grows with link
        utilisation.
    max_hop_latency_cycles:
        Saturation cap per hop.
    """

    hop_latency_cycles: float = 60.0
    link_capacity_requests_per_sec: float = 220e6
    congestion_factor: float = 0.7
    max_hop_latency_cycles: float = 300.0

    def __post_init__(self) -> None:
        if self.hop_latency_cycles < 0:
            raise ConfigurationError("hop_latency_cycles must be non-negative")
        if self.link_capacity_requests_per_sec <= 0:
            raise ConfigurationError("link capacity must be positive")
        if self.max_hop_latency_cycles < self.hop_latency_cycles:
            raise ConfigurationError("max_hop_latency_cycles must be >= hop latency")

    def link_utilisation(self, traffic_matrix_per_sec: np.ndarray) -> np.ndarray:
        """Per-node remote-link utilisation from a (src, dst) traffic matrix."""
        traffic = np.asarray(traffic_matrix_per_sec, dtype=np.float64)
        if traffic.ndim != 2 or traffic.shape[0] != traffic.shape[1]:
            raise ConfigurationError("traffic matrix must be square")
        remote = traffic.copy()
        np.fill_diagonal(remote, 0.0)
        # A node's links carry both its outgoing and incoming remote traffic.
        per_node = remote.sum(axis=1) + remote.sum(axis=0)
        return np.clip(per_node / self.link_capacity_requests_per_sec, 0.0, 0.999)

    def hop_latency_matrix(
        self, topology: NumaTopology, traffic_matrix_per_sec: np.ndarray
    ) -> np.ndarray:
        """Total interconnect latency (cycles) for each (src, dst) pair.

        Local accesses (diagonal) have zero interconnect cost.  A remote
        access pays ``hops * hop_latency`` inflated by the maximum of
        the two endpoints' link utilisations.
        """
        util = self.link_utilisation(traffic_matrix_per_sec)
        n = topology.n_nodes
        endpoint_util = np.maximum(util[:, None], util[None, :])
        per_hop = self.hop_latency_cycles * (
            1.0 + self.congestion_factor * endpoint_util / (1.0 - endpoint_util)
        )
        per_hop = np.minimum(per_hop, self.max_hop_latency_cycles)
        matrix = topology.hop_matrix.astype(np.float64) * per_hop
        assert matrix.shape == (n, n)
        return matrix
