"""Presets for the two experimental machines of the paper (Section 2.1).

Machine A: two 1.7GHz AMD Opteron 6164 HE processors, 12 cores each,
64GB RAM, four NUMA nodes (6 cores + 12GB per node; the paper rounds
16GB/node down to 12GB usable).  Machine B: four AMD Opteron 6272
processors, 16 cores each (64 total), 512GB RAM, eight NUMA nodes
(8 cores + 64GB per node).  Both use HyperTransport 3.0 links.

The hop matrices model the usual Magny-Cours / Interlagos packaging:
the two nodes inside one package are one hop apart, nodes in different
packages are one or two hops apart depending on whether a direct HT
link exists.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.topology import NumaNode, NumaTopology

GIB = 1024**3


def machine_a() -> NumaTopology:
    """The paper's machine A: 4 nodes x 6 cores x 12GB, 1.7GHz."""
    nodes = [NumaNode(node_id=i, n_cores=6, dram_bytes=12 * GIB) for i in range(4)]
    # Two packages: nodes {0,1} and {2,3}. Intra-package: 1 hop.
    # Each node has a direct link to one node of the other package,
    # and reaches the remaining node in 2 hops.
    hops = np.array(
        [
            [0, 1, 1, 2],
            [1, 0, 2, 1],
            [1, 2, 0, 1],
            [2, 1, 1, 0],
        ]
    )
    return NumaTopology(
        name="machine-A", nodes=nodes, hop_matrix=hops, cpu_freq_hz=1.7e9
    )


def machine_b() -> NumaTopology:
    """The paper's machine B: 8 nodes x 8 cores x 64GB, 2.1GHz."""
    nodes = [NumaNode(node_id=i, n_cores=8, dram_bytes=64 * GIB) for i in range(8)]
    # Four packages: {0,1}, {2,3}, {4,5}, {6,7}. Intra-package: 1 hop.
    # Packages are connected in the usual partially-connected HT mesh:
    # each node links directly to two remote nodes; worst case 3 hops.
    n = 8
    hops = np.full((n, n), 3, dtype=np.int64)
    np.fill_diagonal(hops, 0)

    def set_hops(a: int, b: int, h: int) -> None:
        hops[a, b] = h
        hops[b, a] = h

    # Intra-package links.
    for base in range(0, n, 2):
        set_hops(base, base + 1, 1)
    # Direct inter-package links (one per node, ring-ish arrangement).
    direct = [(0, 2), (1, 4), (3, 6), (5, 7), (0, 6), (2, 4), (1, 3), (5, 2)]
    for a, b in direct:
        set_hops(a, b, 1)
    # Two-hop pairs: any remaining pair with a common 1-hop neighbour.
    for a in range(n):
        for b in range(a + 1, n):
            if hops[a, b] > 2:
                for via in range(n):
                    if hops[a, via] == 1 and hops[via, b] == 1:
                        set_hops(a, b, 2)
                        break
    return NumaTopology(
        name="machine-B", nodes=nodes, hop_matrix=hops, cpu_freq_hz=2.1e9
    )


_MACHINES = {
    "A": machine_a,
    "B": machine_b,
    "machine-A": machine_a,
    "machine-B": machine_b,
}


def machine_by_name(name: str) -> NumaTopology:
    """Look up a machine preset by short (``"A"``) or long name."""
    try:
        return _MACHINES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; expected one of {sorted(set(_MACHINES))}"
        ) from None
