"""Per-node memory-controller queueing model.

The paper's motivation (Section 1) cites measurements from the
Carrefour paper [Dashti et al., ASPLOS'13]: an overloaded memory
controller can serve requests at ~1000 cycles versus ~200 cycles
uncontended.  We model each node's controller as a queue whose latency
grows with utilisation:

    latency(rho) = base * (1 + k * rho / (1 - rho)),    capped at max

where ``rho`` is the offered load divided by the controller's service
capacity.  The shape (flat until ~60% utilisation, then steeply rising,
saturating around 5x the base latency) is what produces the paper's
imbalance penalty: when hot pages concentrate traffic on one node, that
node's latency blows up and every thread touching it stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryControllerModel:
    """Latency model for one memory controller (all nodes share it).

    Attributes
    ----------
    base_latency_cycles:
        DRAM access latency with an idle controller.
    capacity_requests_per_sec:
        Sustainable request rate of one controller (64B lines/sec).
    contention_factor:
        ``k`` in the queueing formula; larger means sharper blow-up.
    max_latency_cycles:
        Saturation cap, per the ~1000-cycle measurements in [6].
    """

    base_latency_cycles: float = 200.0
    capacity_requests_per_sec: float = 150e6
    contention_factor: float = 0.9
    max_latency_cycles: float = 1100.0

    def __post_init__(self) -> None:
        if self.base_latency_cycles <= 0:
            raise ConfigurationError("base_latency_cycles must be positive")
        if self.capacity_requests_per_sec <= 0:
            raise ConfigurationError("capacity_requests_per_sec must be positive")
        if self.contention_factor < 0:
            raise ConfigurationError("contention_factor must be non-negative")
        if self.max_latency_cycles < self.base_latency_cycles:
            raise ConfigurationError("max_latency_cycles must be >= base latency")

    def utilisation(self, requests_per_sec: np.ndarray) -> np.ndarray:
        """Utilisation ``rho`` per controller, clipped to just below 1."""
        rate = np.asarray(requests_per_sec, dtype=np.float64)
        if np.any(rate < 0):
            raise ConfigurationError("request rates must be non-negative")
        return np.clip(rate / self.capacity_requests_per_sec, 0.0, 0.999)

    def latency_cycles(self, requests_per_sec: np.ndarray) -> np.ndarray:
        """Per-controller access latency in cycles given offered load."""
        rho = self.utilisation(requests_per_sec)
        latency = self.base_latency_cycles * (
            1.0 + self.contention_factor * rho / (1.0 - rho)
        )
        return np.minimum(latency, self.max_latency_cycles)
