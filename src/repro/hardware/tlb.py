"""TLB model with separate entry arrays per page size.

AMD family-15h cores keep distinct L2 data-TLB capacities for 4KB, 2MB
and 1GB translations.  The model consumes, per thread and per epoch,
the access-count vector over *backing pages* (whatever sizes the
address space currently uses) and produces expected TLB misses per
size class via the Che/LRU approximation in
:mod:`repro.hardware.caches`.

The essential effect reproduced here is TLB *coverage*: the same
working set needs 512x fewer 2MB translations than 4KB ones, so
backing memory with huge pages collapses the miss rate — the benefit
side of the paper's trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.caches import (
    CacheModel,
    lru_group_hit_rates,
    lru_hit_rate,
    lru_hit_rate_grouped,
)
from repro.vm.layout import PageSize


@dataclass(frozen=True)
class TlbSpec:
    """Per-size TLB capacities and walk costs.

    Defaults approximate an AMD Opteron 6100/6200 L2 DTLB: 1024 4KB
    entries, 128 2MB entries, 16 1GB entries.  ``walk_base_cycles`` is
    the cost of a walk whose references all hit in the cache hierarchy;
    misses add :attr:`repro.hardware.caches.CacheModel.l2_miss_penalty_cycles`.
    """

    entries_4k: int = 1024
    entries_2m: int = 128
    entries_1g: int = 16
    walk_base_cycles: float = 35.0

    def __post_init__(self) -> None:
        if min(self.entries_4k, self.entries_2m, self.entries_1g) <= 0:
            raise ConfigurationError("TLB entry counts must be positive")
        if self.walk_base_cycles < 0:
            raise ConfigurationError("walk_base_cycles must be non-negative")

    def entries_for(self, size: PageSize) -> int:
        """Entry count of the array serving a given page size."""
        return {
            PageSize.SIZE_4K: self.entries_4k,
            PageSize.SIZE_2M: self.entries_2m,
            PageSize.SIZE_1G: self.entries_1g,
        }[size]


@dataclass(frozen=True)
class TlbEpochResult:
    """TLB outcome for one thread-epoch.

    Attributes
    ----------
    misses:
        Expected number of TLB misses (scaled to represented accesses).
    walk_cycles:
        Total cycles spent in page-table walks, including the L2-miss
        penalty for the fraction of walks whose leaf PTE reference
        missed in L2.
    walk_l2_misses:
        Expected number of L2 misses caused by walk references.
    miss_rate:
        Access-weighted TLB miss probability in ``[0, 1]``.
    """

    misses: float
    walk_cycles: float
    walk_l2_misses: float
    miss_rate: float


class TlbModel:
    """Computes per-epoch TLB misses and walk costs for one machine."""

    def __init__(self, spec: TlbSpec, cache_model: CacheModel) -> None:
        self.spec = spec
        self.cache_model = cache_model

    def epoch_result(
        self,
        counts_by_size: Mapping[PageSize, np.ndarray],
        represented_accesses: float,
    ) -> TlbEpochResult:
        """TLB behaviour of one thread for one epoch.

        Parameters
        ----------
        counts_by_size:
            For each page-size class, the per-page access-count vector
            of the epoch's *sampled* stream (page identity is
            irrelevant; only the popularity shape matters).
        represented_accesses:
            Total memory accesses the sampled stream stands for; misses
            are scaled to this.
        """
        if represented_accesses < 0:
            raise ConfigurationError("represented_accesses must be non-negative")
        total_sampled = sum(
            float(np.sum(counts_by_size[size]))
            for size in sorted(counts_by_size)
            if counts_by_size[size] is not None
        )
        if total_sampled <= 0:
            return TlbEpochResult(0.0, 0.0, 0.0, 0.0)

        misses = 0.0
        walk_l2_misses = 0.0
        for size, counts in sorted(counts_by_size.items()):
            if counts is None:
                continue
            counts = np.asarray(counts, dtype=np.float64)
            counts = counts[counts > 0]
            if counts.size == 0:
                continue
            share = float(np.sum(counts)) / total_sampled
            accesses = represented_accesses * share
            hit = lru_hit_rate(counts, self.spec.entries_for(size))
            size_misses = accesses * (1.0 - hit)
            misses += size_misses
            # Each miss walks the page table; the leaf PTE reference may
            # miss in L2 depending on the PTE working set.
            l2_miss_rate = self.cache_model.walk_l2_miss_rate(counts)
            walk_l2_misses += size_misses * l2_miss_rate

        walk_cycles = (
            misses * self.spec.walk_base_cycles
            + walk_l2_misses * self.cache_model.l2_miss_penalty_cycles
        )
        miss_rate = misses / represented_accesses if represented_accesses else 0.0
        return TlbEpochResult(
            misses=misses,
            walk_cycles=walk_cycles,
            walk_l2_misses=walk_l2_misses,
            miss_rate=min(miss_rate, 1.0),
        )

    def epoch_result_grouped(
        self,
        groups_by_size: Mapping[PageSize, Tuple[np.ndarray, np.ndarray, np.ndarray]],
        represented_accesses: float,
    ) -> TlbEpochResult:
        """Grouped-popularity variant of :meth:`epoch_result`.

        ``groups_by_size[size]`` is a triple ``(page_counts, weights,
        run_lengths)``: ``page_counts[i]`` pages of that size class
        together receive ``weights[i]`` of the thread's accesses
        (weights across *all* size classes are normalised jointly), and
        accesses within group ``i`` arrive in runs of ``run_lengths[i]``
        consecutive accesses to the same page (spatial locality).  The
        independent-reference model is evaluated at the granularity of
        runs, so a sequential sweep (large run length) produces at most
        one TLB miss per page visit rather than one per access — which
        is why dense HPC kernels have negligible TLB cost while sparse
        graph traversals (run length ~1) are TLB-bound.
        """
        if represented_accesses < 0:
            raise ConfigurationError("represented_accesses must be non-negative")
        total_weight = 0.0
        for _size, (counts, weights, _) in sorted(groups_by_size.items()):
            total_weight += float(np.sum(np.asarray(weights, dtype=np.float64)))
        if total_weight <= 0:
            return TlbEpochResult(0.0, 0.0, 0.0, 0.0)

        misses = 0.0
        walk_l2_misses = 0.0
        for size, (counts, weights, run_lengths) in sorted(groups_by_size.items()):
            counts = np.asarray(counts, dtype=np.float64)
            weights = np.asarray(weights, dtype=np.float64)
            run_lengths = np.maximum(np.asarray(run_lengths, dtype=np.float64), 1.0)
            share = float(np.sum(weights)) / total_weight
            if share <= 0:
                continue
            accesses = represented_accesses * share
            size_total = float(np.sum(weights))
            # The cache sees page *visits*: weight scaled down by run
            # length (each run needs a single translation lookup chain).
            visit_weights = weights / run_lengths
            hits = lru_group_hit_rates(
                counts, visit_weights, self.spec.entries_for(size)
            )
            group_accesses = accesses * weights / size_total
            group_visits = group_accesses / run_lengths
            size_misses = float(np.sum(group_visits * (1.0 - hits)))
            misses += size_misses
            l2_miss_rate = self.cache_model.walk_l2_miss_rate_grouped(
                counts, visit_weights
            )
            walk_l2_misses += size_misses * l2_miss_rate

        walk_cycles = (
            misses * self.spec.walk_base_cycles
            + walk_l2_misses * self.cache_model.l2_miss_penalty_cycles
        )
        miss_rate = misses / represented_accesses if represented_accesses else 0.0
        return TlbEpochResult(
            misses=misses,
            walk_cycles=walk_cycles,
            walk_l2_misses=walk_l2_misses,
            miss_rate=min(miss_rate, 1.0),
        )

    def coverage_bytes(self, size: PageSize) -> int:
        """Address-space bytes covered by a full TLB of the given size."""
        return self.spec.entries_for(size) * int(size)


def split_counts_by_size(
    backing_ids: np.ndarray, backing_sizes: np.ndarray
) -> Dict[PageSize, np.ndarray]:
    """Group an access stream into per-size page popularity vectors.

    ``backing_ids`` are opaque page identifiers (one per access);
    ``backing_sizes`` the page-size class of each access.  Returns, per
    size, the access-count vector over distinct pages.
    """
    out: Dict[PageSize, np.ndarray] = {}
    sizes = np.asarray(backing_sizes)
    ids = np.asarray(backing_ids)
    for size in PageSize:
        mask = sizes == int(size)
        if not np.any(mask):
            continue
        _, counts = np.unique(ids[mask], return_counts=True)
        out[size] = counts.astype(np.float64)
    return out
