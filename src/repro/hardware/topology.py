"""NUMA topology: nodes, cores and the interconnect distance matrix.

A :class:`NumaTopology` is a static description of a machine.  It knows
how many nodes and cores exist, which core belongs to which node, how
much DRAM each node hosts, and how many interconnect hops separate any
two nodes.  The dynamic behaviour (queueing at memory controllers, link
congestion) lives in :mod:`repro.hardware.mem_controller` and
:mod:`repro.hardware.interconnect`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NumaNode:
    """One NUMA node: a set of cores plus a local memory controller."""

    node_id: int
    n_cores: int
    dram_bytes: int

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError("node_id must be non-negative")
        if self.n_cores <= 0:
            raise ConfigurationError("a node must have at least one core")
        if self.dram_bytes <= 0:
            raise ConfigurationError("a node must host some DRAM")


@dataclass(frozen=True)
class NumaTopology:
    """A complete NUMA machine description.

    Parameters
    ----------
    name:
        Human-readable machine name (e.g. ``"machine-A"``).
    nodes:
        The NUMA nodes, ordered by ``node_id`` starting at zero.
    hop_matrix:
        ``(n_nodes, n_nodes)`` integer matrix of interconnect hops; zero
        on the diagonal, symmetric, positive off the diagonal.
    cpu_freq_hz:
        Core clock frequency, used to convert cycles to seconds.
    """

    name: str
    nodes: Sequence[NumaNode]
    hop_matrix: np.ndarray
    cpu_freq_hz: float
    _core_to_node: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        nodes = tuple(self.nodes)
        object.__setattr__(self, "nodes", nodes)
        if not nodes:
            raise ConfigurationError("a machine needs at least one node")
        for i, node in enumerate(nodes):
            if node.node_id != i:
                raise ConfigurationError(
                    f"nodes must be ordered by id; found id {node.node_id} at index {i}"
                )
        hops = np.asarray(self.hop_matrix, dtype=np.int64)
        if hops.shape != (len(nodes), len(nodes)):
            raise ConfigurationError(
                f"hop_matrix shape {hops.shape} does not match {len(nodes)} nodes"
            )
        if np.any(np.diag(hops) != 0):
            raise ConfigurationError("hop_matrix diagonal must be zero")
        if np.any(hops != hops.T):
            raise ConfigurationError("hop_matrix must be symmetric")
        off_diag = hops[~np.eye(len(nodes), dtype=bool)]
        if off_diag.size and np.any(off_diag <= 0):
            raise ConfigurationError("off-diagonal hops must be positive")
        if self.cpu_freq_hz <= 0:
            raise ConfigurationError("cpu_freq_hz must be positive")
        object.__setattr__(self, "hop_matrix", hops)
        core_to_node = np.repeat(
            np.arange(len(nodes), dtype=np.int8), [n.n_cores for n in nodes]
        )
        object.__setattr__(self, "_core_to_node", core_to_node)

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of NUMA nodes."""
        return len(self.nodes)

    @property
    def n_cores(self) -> int:
        """Total number of cores across all nodes."""
        return int(self._core_to_node.size)

    @property
    def total_dram_bytes(self) -> int:
        """Total DRAM across all nodes."""
        return sum(node.dram_bytes for node in self.nodes)

    @property
    def core_to_node(self) -> np.ndarray:
        """Array mapping global core id to its node id."""
        return self._core_to_node

    def node_of_core(self, core: int) -> int:
        """Node hosting a given global core id."""
        if not 0 <= core < self.n_cores:
            raise ConfigurationError(f"core {core} out of range 0..{self.n_cores - 1}")
        return int(self._core_to_node[core])

    def cores_of_node(self, node: int) -> List[int]:
        """Global core ids belonging to a node."""
        if not 0 <= node < self.n_nodes:
            raise ConfigurationError(f"node {node} out of range 0..{self.n_nodes - 1}")
        return list(np.flatnonzero(self._core_to_node == node))

    def hops(self, src: int, dst: int) -> int:
        """Number of interconnect hops from node ``src`` to node ``dst``."""
        return int(self.hop_matrix[src, dst])

    def describe(self) -> str:
        """One-paragraph human-readable summary used in reports."""
        node = self.nodes[0]
        return (
            f"{self.name}: {self.n_nodes} NUMA nodes x {node.n_cores} cores "
            f"({self.n_cores} cores total), "
            f"{node.dram_bytes // (1024 ** 3)}GB DRAM per node, "
            f"{self.cpu_freq_hz / 1e9:.1f}GHz"
        )
