"""Multi-tenant colocation scenarios.

The paper evaluates one static workload at a time; this package models
the regime its effects are worst in — a NUMA server running a churn of
colocated processes.  A :class:`~repro.scenarios.config.ScenarioConfig`
names an arrival process (Poisson / fixed-trace / closed-loop, see
:mod:`repro.scenarios.registry`), the workload/policy pools tenants
draw from, and an initial memory-pressure level; the scenario runner
(:mod:`repro.experiments.scenario_runner`) drives the arrivals against
one shared :class:`~repro.sim.host.Host`.
"""

from repro.scenarios.base import Arrival, ArrivalGenerator
from repro.scenarios.builtins import (
    ClosedLoopArrivals,
    FixedTraceArrivals,
    PoissonArrivals,
)
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.registry import (
    ARRIVALS,
    available_arrivals,
    make_arrival_generator,
)

__all__ = [
    "ARRIVALS",
    "Arrival",
    "ArrivalGenerator",
    "ClosedLoopArrivals",
    "FixedTraceArrivals",
    "PoissonArrivals",
    "ScenarioConfig",
    "available_arrivals",
    "make_arrival_generator",
]
