"""Arrival-generator interface for colocation scenarios.

An arrival generator decides *when* tenants spawn; the scenario runner
decides everything else (building the tenant, admitting it to the
host).  Generators are deterministic functions of the scenario config —
re-running a scenario replays the identical arrival schedule, which is
what makes scenario goldens pinnable.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.scenarios.config import ScenarioConfig

#: A pending spawn: (workload name, policy name).
Arrival = Tuple[str, str]


class ArrivalGenerator:
    """Base generator: spawn-count bookkeeping and round-robin assignment.

    Subclasses implement :meth:`arrivals`, typically via
    :meth:`_admit`, which caps the request against
    ``scenario.max_tenants`` and assigns each spawn a (workload,
    policy) pair round-robin from the scenario's pools in spawn order.
    """

    #: Registry key (set by subclasses).
    name: str = "base"

    def __init__(self, scenario: ScenarioConfig) -> None:
        self.scenario = scenario
        self._spawned = 0
        self._cursor = 0

    def arrivals(self, epoch: int, n_active: int) -> List[Arrival]:
        """The tenants spawning at the start of this host epoch."""
        raise NotImplementedError

    def exhausted(self) -> bool:
        """Whether this generator can never spawn another tenant.

        The runner stops the host clock once the generator is
        exhausted *and* no tenant is active; generators with their own
        notion of doneness (a finite trace) override this.
        """
        return self._spawned >= self.scenario.max_tenants

    def _admit(self, n: int) -> List[Arrival]:
        """Cap ``n`` against the tenant budget and assign pairs."""
        n = min(n, self.scenario.max_tenants - self._spawned)
        out: List[Arrival] = []
        for _ in range(max(n, 0)):
            workload = self.scenario.workloads[
                self._cursor % len(self.scenario.workloads)
            ]
            policy = self.scenario.policies[
                self._cursor % len(self.scenario.policies)
            ]
            self._cursor += 1
            self._spawned += 1
            out.append((workload, policy))
        return out
