"""The built-in arrival generators: Poisson, fixed-trace, closed-loop."""

from __future__ import annotations

from typing import Dict, List

from repro._util import rng_for
from repro.scenarios.base import Arrival, ArrivalGenerator
from repro.scenarios.config import ScenarioConfig


class PoissonArrivals(ArrivalGenerator):
    """Independent arrivals at ``arrival_rate`` expected spawns/epoch.

    The open-system model: tenants arrive regardless of how loaded the
    host already is, which is what drives the allocator into the
    pressure regimes the paper's single-workload runs never reach.
    One Poisson draw is consumed per epoch from a scenario-scoped
    stream, so the schedule depends only on the scenario seed.
    """

    name = "poisson"

    def __init__(self, scenario: ScenarioConfig) -> None:
        super().__init__(scenario)
        self._rng = rng_for(scenario.seed, "scenario", "arrivals")

    def arrivals(self, epoch: int, n_active: int) -> List[Arrival]:
        count = int(self._rng.poisson(self.scenario.arrival_rate))
        return self._admit(count)


class FixedTraceArrivals(ArrivalGenerator):
    """Replay an explicit ``(epoch, workload, policy)`` schedule.

    The trace names each tenant's pair directly (the round-robin pools
    are ignored), so hand-written colocations — "SSCA under carrefour-lp
    joins a THP CG.D at epoch 40" — are expressible exactly.
    """

    name = "fixed-trace"

    def __init__(self, scenario: ScenarioConfig) -> None:
        super().__init__(scenario)
        self._by_epoch: Dict[int, List[Arrival]] = {}
        for entry_epoch, workload, policy in scenario.trace:
            self._by_epoch.setdefault(int(entry_epoch), []).append(
                (workload, policy)
            )
        self._last_epoch = (
            max(self._by_epoch) if self._by_epoch else -1
        )
        self._epochs_seen = -1

    def arrivals(self, epoch: int, n_active: int) -> List[Arrival]:
        self._epochs_seen = max(self._epochs_seen, epoch)
        out: List[Arrival] = []
        for pair in self._by_epoch.get(epoch, []):
            if self._spawned >= self.scenario.max_tenants:
                break
            self._spawned += 1
            out.append(pair)
        return out

    def exhausted(self) -> bool:
        return (
            self._epochs_seen >= self._last_epoch
            or self._spawned >= self.scenario.max_tenants
        )


class ClosedLoopArrivals(ArrivalGenerator):
    """Keep ``target_active`` tenants alive until the budget runs out.

    The closed-system model (a fixed worker pool): every exit admits a
    replacement immediately, holding allocator occupancy roughly
    constant — the steady-state colocation the open model only passes
    through.
    """

    name = "closed-loop"

    def arrivals(self, epoch: int, n_active: int) -> List[Arrival]:
        return self._admit(self.scenario.target_active - n_active)
