"""Scenario configuration: what a colocated host runs, and when."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScenarioConfig:
    """One multi-tenant colocation scenario.

    A scenario is a machine plus an arrival process: tenants (one
    workload under one policy each) spawn over host epochs, run to
    completion against the shared frame allocator, exit, and free
    their pages — so later arrivals see the fragmentation earlier ones
    left behind.  Everything here participates in the scenario cache
    fingerprint (:func:`repro.experiments.cache.scenario_fingerprint`),
    so two configs that could diverge never share a cached result.

    Attributes
    ----------
    arrival:
        Name of the arrival generator in the
        :mod:`repro.scenarios.registry` (``poisson`` / ``fixed-trace``
        / ``closed-loop``).
    machine:
        Machine name (``A`` / ``B``, per :mod:`repro.hardware.machines`).
    workloads / policies:
        The pools new tenants draw from, assigned round-robin by
        spawn order (except ``fixed-trace``, which names each tenant's
        pair explicitly).
    arrival_rate:
        Expected arrivals per host epoch (``poisson`` only).
    max_tenants:
        Total tenants a scenario may ever spawn (all generators).
    target_active:
        Tenant count the ``closed-loop`` generator keeps alive.
    trace:
        ``(epoch, workload, policy)`` triples for ``fixed-trace``.
    max_host_epochs:
        Hard cap on host epochs (guards non-terminating arrivals).
    tenant_epochs:
        Per-tenant epoch cap overriding the workload's own length
        (``None`` runs each workload to its natural end).
    pressure:
        Fraction of each node's free memory pinned before any tenant
        arrives, in ``[0, 1)`` — the "loaded server" starting state.
    seed:
        Scenario root seed; arrival draws and every per-tenant seed
        derive from it deterministically.
    """

    arrival: str = "poisson"
    machine: str = "B"
    workloads: Tuple[str, ...] = ("SSCA.20",)
    policies: Tuple[str, ...] = ("thp",)
    arrival_rate: float = 0.05
    max_tenants: int = 4
    target_active: int = 2
    trace: Tuple[Tuple[int, str, str], ...] = ()
    max_host_epochs: int = 2000
    tenant_epochs: Optional[int] = None
    pressure: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ConfigurationError("scenario needs at least one workload")
        if not self.policies:
            raise ConfigurationError("scenario needs at least one policy")
        if self.arrival_rate < 0:
            raise ConfigurationError("arrival_rate must be non-negative")
        if self.max_tenants <= 0:
            raise ConfigurationError("max_tenants must be positive")
        if self.target_active <= 0:
            raise ConfigurationError("target_active must be positive")
        if self.max_host_epochs <= 0:
            raise ConfigurationError("max_host_epochs must be positive")
        if self.tenant_epochs is not None and self.tenant_epochs <= 0:
            raise ConfigurationError("tenant_epochs must be positive")
        if not 0.0 <= self.pressure < 1.0:
            raise ConfigurationError("pressure must be in [0, 1)")
        for entry in self.trace:
            if len(entry) != 3 or int(entry[0]) < 0:
                raise ConfigurationError(
                    "trace entries must be (epoch>=0, workload, policy)"
                )
