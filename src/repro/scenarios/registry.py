"""Registry of arrival generators, keyed by scenario-config names."""

from __future__ import annotations

import difflib
from typing import Dict, List, Type

from repro.errors import ConfigurationError
from repro.scenarios.base import ArrivalGenerator
from repro.scenarios.builtins import (
    ClosedLoopArrivals,
    FixedTraceArrivals,
    PoissonArrivals,
)
from repro.scenarios.config import ScenarioConfig

#: Generator class per ``ScenarioConfig.arrival`` name.
ARRIVALS: Dict[str, Type[ArrivalGenerator]] = {
    PoissonArrivals.name: PoissonArrivals,
    FixedTraceArrivals.name: FixedTraceArrivals,
    ClosedLoopArrivals.name: ClosedLoopArrivals,
}


def available_arrivals() -> List[str]:
    """All registered arrival-generator names."""
    return sorted(ARRIVALS)


def make_arrival_generator(scenario: ScenarioConfig) -> ArrivalGenerator:
    """Instantiate the generator a scenario config names."""
    try:
        cls = ARRIVALS[scenario.arrival]
    except KeyError:
        close = difflib.get_close_matches(scenario.arrival, ARRIVALS, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigurationError(
            f"unknown arrival generator {scenario.arrival!r}{hint}; "
            f"available: {available_arrivals()}"
        ) from None
    return cls(scenario)
