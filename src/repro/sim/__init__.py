"""Epoch-based simulation engine.

The engine advances a workload in fixed work quanta (epochs).  Each
epoch it materialises first-touch allocations, translates the sampled
DRAM-access streams through the address space, prices the traffic with
the memory-controller and interconnect models, evaluates the TLB model
against the current backing state, and charges page-fault and policy
maintenance time.  Runtime is the sum of epoch times; performance
comparisons are ratios of runtimes for the same workload under
different placement policies.
"""

from repro.sim.config import MachineModels, SimConfig
from repro.sim.engine import Simulation
from repro.sim.policy import LinuxPolicy, PlacementPolicy, PolicyActionSummary
from repro.sim.results import RunMetrics, SimulationResult
from repro.sim.tracker import AccessTracker

__all__ = [
    "SimConfig",
    "MachineModels",
    "Simulation",
    "PlacementPolicy",
    "LinuxPolicy",
    "PolicyActionSummary",
    "SimulationResult",
    "RunMetrics",
    "AccessTracker",
]
