"""Simulation configuration and hardware model bundle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, FrozenSet

from repro.errors import ConfigurationError
from repro.hardware.caches import CacheModel
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.mem_controller import MemoryControllerModel
from repro.hardware.tlb import TlbSpec
from repro.vm.migration import MigrationCostModel
from repro.vm.page_fault import PageFaultModel


@dataclass(frozen=True)
class MachineModels:
    """The dynamic hardware/OS cost models used by the engine."""

    tlb: TlbSpec = field(default_factory=TlbSpec)
    cache: CacheModel = field(default_factory=CacheModel)
    controller: MemoryControllerModel = field(default_factory=MemoryControllerModel)
    interconnect: InterconnectModel = field(default_factory=InterconnectModel)
    page_fault: PageFaultModel = field(default_factory=PageFaultModel)
    migration: MigrationCostModel = field(default_factory=MigrationCostModel)


@dataclass(frozen=True)
class SimConfig:
    """Engine parameters.

    Attributes
    ----------
    epoch_s:
        Nominal simulated time per epoch at reference speed; workload
        cost profiles are calibrated against this.
    stream_length:
        Number of sampled DRAM accesses generated per thread per epoch
        (the sample *represents* the workload's full DRAM intensity).
    scale:
        Workload scale factor in (0, 1]; shrinks footprints/epochs for
        quick runs.
    ibs_rate:
        IBS samples per represented DRAM access.
    seed:
        Root seed; all randomness derives deterministically from it.
    track_access_stats:
        Maintain the per-granule access tracker needed for PAMUP / NHP
        / PSP reporting (small memory cost; disable for pure timing
        benchmarks).
    """

    epoch_s: float = 0.25
    stream_length: int = 2048
    scale: float = 1.0
    ibs_rate: float = 1e-4
    ibs_cost_cycles: float = 2500.0
    seed: int = 0
    track_access_stats: bool = True
    models: MachineModels = field(default_factory=MachineModels)
    #: Safety cap on epochs regardless of the workload's request.
    max_epochs: int = 10_000
    #: khugepaged chunks scanned per epoch when promotion is enabled
    #: (collapse throughput is bounded, as in Linux).
    khugepaged_batch: int = 512
    #: Run the epoch-level runtime invariant checker
    #: (:mod:`repro.analysis.invariants`); ``REPRO_CHECK=1`` in the
    #: environment enables it regardless of this flag.
    check_invariants: bool = False
    #: Record per-phase engine wall times (:mod:`repro.sim.profile`);
    #: ``REPRO_PROFILE=1`` in the environment enables it regardless of
    #: this flag.
    profile: bool = False
    #: Record every policy decision and its outcome
    #: (:mod:`repro.sim.trace`); ``REPRO_TRACE=1`` in the environment
    #: enables it regardless of this flag.
    trace: bool = False

    #: Fields that cannot influence simulation results and are therefore
    #: excluded from memo keys and persistent-cache fingerprints.
    _CACHE_KEY_EXCLUDE: ClassVar[FrozenSet[str]] = frozenset(
        {"check_invariants", "profile", "trace"}
    )

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ConfigurationError("epoch_s must be positive")
        if self.stream_length <= 0:
            raise ConfigurationError("stream_length must be positive")
        if not 0 < self.scale <= 1.0:
            raise ConfigurationError("scale must be in (0, 1]")
        if not 0 <= self.ibs_rate <= 1:
            raise ConfigurationError("ibs_rate must be in [0, 1]")
        if self.ibs_cost_cycles <= 0:
            raise ConfigurationError("ibs_cost_cycles must be positive")
        if self.max_epochs <= 0:
            raise ConfigurationError("max_epochs must be positive")
        if self.khugepaged_batch <= 0:
            raise ConfigurationError("khugepaged_batch must be positive")

    @classmethod
    def quick(cls, seed: int = 0) -> "SimConfig":
        """A reduced-cost preset for tests and smoke runs."""
        return cls(stream_length=768, scale=0.25, seed=seed, ibs_rate=2e-4)
