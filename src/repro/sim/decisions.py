"""Typed decisions: the vocabulary policies use to request actions.

Policies never touch the :class:`~repro.vm.address_space.AddressSpace`
themselves.  A policy's :meth:`decide` is a generator that *yields*
decision objects; the engine's :class:`~repro.sim.engine.ActionExecutor`
applies each one against the simulation state and sends back an
:class:`Outcome`, so deciders that rate-limit on actual work performed
(Carrefour's migration budget) see exactly what the mutation achieved.

Every decision knows its *conflict targets* — the pieces of simulation
state it claims (a backing page, a THP toggle, the page tables).  When
several deciders run as a stack, the executor resolves conflicts
deterministically: the first decider to act on a target wins, later
deciders' decisions on the same target are skipped with
``Outcome(applied=False, reason="conflict")``.

Decisions also know how to serialise themselves (:meth:`payload`) for
the JSONL decision trace (:mod:`repro.sim.trace`).

Every concrete decision class additionally carries two pieces of
*class metadata* that the decision-flow analyzer
(:mod:`repro.analysis.decisionflow`, rules R109-R113) checks statically
against the executor:

* :attr:`Decision.domain` — the conflict domain its :meth:`targets`
  keys live in (``"page"``, ``"thp"``, ``"pt"``, or ``"none"`` for
  purely accounting decisions).  R113 proves the declared domains, the
  literal kind strings in ``targets()``, and the executor's
  ``CONFLICT_DOMAINS`` claim coverage all agree.
* :attr:`Decision.counters` — the :class:`PolicyActionSummary` fields
  the executor's apply-handler must touch.  R112 matches this map
  against the handler's inferred write effects, so a handler that
  mutates state without bumping its conservation counters (or bumps a
  counter it never declared) is a lint error, not a reconciliation
  surprise in the invariant checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.units import NodeArray, NodeId, Pages4KArray

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.policy import PolicyActionSummary

#: Conflict-target key: ("page", backing_id), ("thp", toggle-name) or
#: ("pt", "replication").
Target = Tuple[str, object]


@dataclass(frozen=True)
class Outcome:
    """What the executor did with one decision (sent back to the decider)."""

    applied: bool
    #: Bytes actually moved/copied by the action (0 when nothing moved).
    bytes_moved: int = 0
    #: Pages (or 2MB-equivalents for splits) the action touched.
    count: int = 0
    #: Why the decision was not applied ("" when applied).
    reason: str = ""


#: Valid values for :attr:`Decision.domain`.
CONFLICT_DOMAIN_NAMES: Tuple[str, ...] = ("page", "thp", "pt", "none")


@dataclass(frozen=True)
class Decision:
    """Base decision; subclasses define what state they act on."""

    #: Conflict domain of :meth:`targets` keys ("page", "thp", "pt" or
    #: "none").  Checked against targets() and the executor by R113.
    domain: ClassVar[str] = "none"
    #: PolicyActionSummary fields the executor's handler must touch.
    #: Checked against the handler's write effects by R112.
    counters: ClassVar[Tuple[str, ...]] = ()

    def targets(self) -> Tuple[Target, ...]:
        """Conflict-target keys this decision claims (may be empty)."""
        return ()

    def payload(self) -> dict:
        """JSON-able trace record body for this decision."""
        return {"kind": type(self).__name__}


@dataclass(frozen=True)
class ChargeCompute(Decision):
    """Charge daemon compute time (sample processing etc.), seconds."""

    domain: ClassVar[str] = "none"
    counters: ClassVar[Tuple[str, ...]] = ("compute_s",)

    seconds: float

    def payload(self) -> dict:
        return {"kind": "ChargeCompute", "seconds": self.seconds}


@dataclass(frozen=True)
class Note(Decision):
    """Attach a human-readable note to the interval's action summary."""

    domain: ClassVar[str] = "none"
    counters: ClassVar[Tuple[str, ...]] = ("notes", "notes_dropped")

    text: str

    def payload(self) -> dict:
        return {"kind": "Note", "text": self.text}


@dataclass(frozen=True)
class MigratePage(Decision):
    """Migrate one backing page (any size) to ``target_node``."""

    domain: ClassVar[str] = "page"
    counters: ClassVar[Tuple[str, ...]] = (
        "bytes_migrated",
        "migrated_4k",
        "migrated_2m",
    )

    page_id: int
    target_node: NodeId

    def targets(self) -> Tuple[Target, ...]:
        return (("page", self.page_id),)

    def payload(self) -> dict:
        return {
            "kind": "MigratePage",
            "page_id": self.page_id,
            "target_node": self.target_node,
        }


@dataclass(frozen=True, eq=False)
class InterleaveRegion(Decision):
    """Bulk-migrate 4KB-mapped granules to per-granule target nodes.

    ``eq=False``: the numpy payload arrays make value comparison both
    expensive and ambiguous; identity semantics are what the executor
    needs.
    """

    domain: ClassVar[str] = "page"
    counters: ClassVar[Tuple[str, ...]] = ("bytes_migrated", "migrated_4k")

    granules: Pages4KArray
    target_nodes: NodeArray
    #: Backing page the granules came from (conflict key), when known.
    page_id: Optional[int] = None

    def targets(self) -> Tuple[Target, ...]:
        if self.page_id is None:
            return ()
        return (("page", self.page_id),)

    def payload(self) -> dict:
        g = np.asarray(self.granules)
        return {
            "kind": "InterleaveRegion",
            "page_id": self.page_id,
            "n_granules": int(g.size),
            "granule_lo": int(g.min()) if g.size else None,
            "granule_hi": int(g.max()) if g.size else None,
        }


@dataclass(frozen=True)
class Split2M(Decision):
    """Demote one 2MB backing page into 512 4KB pages."""

    domain: ClassVar[str] = "page"
    counters: ClassVar[Tuple[str, ...]] = ("splits_2m",)

    page_id: int
    #: madvise the demoted range NOHUGEPAGE so khugepaged does not
    #: immediately undo the decision.
    block_collapse: bool = True

    def targets(self) -> Tuple[Target, ...]:
        return (("page", self.page_id),)

    def payload(self) -> dict:
        return {
            "kind": "Split2M",
            "page_id": self.page_id,
            "block_collapse": self.block_collapse,
        }


@dataclass(frozen=True)
class Split1G(Decision):
    """Demote one 1GB backing page into 4KB pages."""

    domain: ClassVar[str] = "page"
    counters: ClassVar[Tuple[str, ...]] = ("splits_1g",)

    page_id: int
    block_collapse: bool = True

    def targets(self) -> Tuple[Target, ...]:
        return (("page", self.page_id),)

    def payload(self) -> dict:
        return {
            "kind": "Split1G",
            "page_id": self.page_id,
            "block_collapse": self.block_collapse,
        }


@dataclass(frozen=True)
class Collapse2M(Decision):
    """Promote one fully 4KB-mapped 2MB chunk into a huge page."""

    domain: ClassVar[str] = "page"
    counters: ClassVar[Tuple[str, ...]] = ("collapses_2m",)

    chunk: int
    #: Explicit target node; plurality node of the constituents if None.
    node: Optional[NodeId] = None

    def targets(self) -> Tuple[Target, ...]:
        from repro.vm.address_space import BACKING_ID_2M_OFFSET

        return (("page", self.chunk + BACKING_ID_2M_OFFSET),)

    def payload(self) -> dict:
        return {"kind": "Collapse2M", "chunk": self.chunk, "node": self.node}


@dataclass(frozen=True)
class ToggleThpAlloc(Decision):
    """Enable or disable THP allocation-time backing."""

    domain: ClassVar[str] = "thp"

    enabled: bool

    def targets(self) -> Tuple[Target, ...]:
        return (("thp", "alloc"),)

    def payload(self) -> dict:
        return {"kind": "ToggleThpAlloc", "enabled": self.enabled}


@dataclass(frozen=True)
class ToggleThpPromotion(Decision):
    """Enable or disable khugepaged promotion."""

    domain: ClassVar[str] = "thp"

    enabled: bool

    def targets(self) -> Tuple[Target, ...]:
        return (("thp", "promotion"),)

    def payload(self) -> dict:
        return {"kind": "ToggleThpPromotion", "enabled": self.enabled}


@dataclass(frozen=True)
class ClearCollapseBlocks(Decision):
    """Lift every MADV_NOHUGEPAGE mark left by earlier splits."""

    domain: ClassVar[str] = "thp"

    def targets(self) -> Tuple[Target, ...]:
        return (("thp", "collapse_blocks"),)

    def payload(self) -> dict:
        return {"kind": "ClearCollapseBlocks"}


@dataclass(frozen=True, eq=False)
class ReclaimPages(Decision):
    """Evict 4KB-mapped granules back to the allocator (memory pressure).

    The tenant-scoped reclaim decision for colocation scenarios: under
    host memory pressure a decider picks cold granules and yields one
    of these; the executor unmaps them through
    :meth:`~repro.vm.address_space.AddressSpace.reclaim_granules`, so
    the frames return to the *shared* pool and the next touch demand-
    faults the page back in.  ``eq=False`` for the same reason as
    :class:`InterleaveRegion`: the numpy payload makes value comparison
    expensive and identity is what the executor needs.
    """

    domain: ClassVar[str] = "page"
    counters: ClassVar[Tuple[str, ...]] = (
        "bytes_reclaimed",
        "pages_reclaimed",
    )

    granules: Pages4KArray
    #: Backing page the granules came from (conflict key), when known.
    page_id: Optional[int] = None

    def targets(self) -> Tuple[Target, ...]:
        if self.page_id is None:
            return ()
        return (("page", self.page_id),)

    def payload(self) -> dict:
        g = np.asarray(self.granules)
        return {
            "kind": "ReclaimPages",
            "page_id": self.page_id,
            "n_granules": int(g.size),
            "granule_lo": int(g.min()) if g.size else None,
            "granule_hi": int(g.max()) if g.size else None,
        }


@dataclass(frozen=True)
class ReplicatePage(Decision):
    """Replicate one read-mostly backing page onto every node."""

    domain: ClassVar[str] = "page"
    counters: ClassVar[Tuple[str, ...]] = (
        "bytes_replicated",
        "replicated_pages",
    )

    page_id: int

    def targets(self) -> Tuple[Target, ...]:
        return (("page", self.page_id),)

    def payload(self) -> dict:
        return {"kind": "ReplicatePage", "page_id": self.page_id}


@dataclass(frozen=True)
class ReplicatePageTables(Decision):
    """Replicate the process page tables onto every node (Mitosis)."""

    domain: ClassVar[str] = "pt"
    counters: ClassVar[Tuple[str, ...]] = (
        "bytes_replicated",
        "replicated_pages",
    )

    def targets(self) -> Tuple[Target, ...]:
        return (("pt", "replication"),)

    def payload(self) -> dict:
        return {"kind": "ReplicatePageTables"}


@dataclass(frozen=True, eq=False)
class MergeSummary(Decision):
    """Legacy bridge: fold a pre-built action summary into the interval.

    Yielded by the base :meth:`PlacementPolicy.decide` for policies that
    still implement ``on_interval`` directly (external subclasses); the
    in-tree policies all emit fine-grained decisions instead.
    """

    domain: ClassVar[str] = "none"
    counters: ClassVar[Tuple[str, ...]] = (
        "migrated_4k",
        "migrated_2m",
        "bytes_migrated",
        "splits_2m",
        "splits_1g",
        "collapses_2m",
        "replicated_pages",
        "bytes_replicated",
        "pages_reclaimed",
        "bytes_reclaimed",
        "compute_s",
        "notes",
        "notes_dropped",
    )

    summary: "PolicyActionSummary"

    def payload(self) -> dict:
        s = self.summary
        return {
            "kind": "MergeSummary",
            "migrated_4k": s.migrated_4k,
            "migrated_2m": s.migrated_2m,
            "bytes_migrated": s.bytes_migrated,
            "splits_2m": s.splits_2m,
            "splits_1g": s.splits_1g,
            "collapses_2m": s.collapses_2m,
            "replicated_pages": s.replicated_pages,
            "bytes_replicated": s.bytes_replicated,
            "pages_reclaimed": s.pages_reclaimed,
            "bytes_reclaimed": s.bytes_reclaimed,
            "compute_s": s.compute_s,
            "n_notes": len(s.notes),
        }
