"""The epoch-based simulation engine.

One :class:`Tenant` runs one workload instance under one placement
policy against a (possibly shared) pool of physical memory.  Each epoch
represents a fixed quantum of application work; how much wall-clock
time the quantum takes depends on DRAM latency (controller queueing +
interconnect), TLB walk costs, page-fault handling and policy
maintenance — the same four components the paper's measurements
decompose into.  Runtime is the sum of epoch times, so performance
ratios between policies come out directly.

:class:`Simulation` is the single-workload entry point and the N=1
special case of the multi-tenant architecture: its :meth:`~Simulation.run`
adopts the tenant into a fresh :class:`repro.sim.host.Host` and drives
the host's epoch loop, so every single-workload run exercises the same
multiplexing path as the colocation scenarios in
:mod:`repro.scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
    Union,
)

import numpy as np

from repro._util import rng_for
from repro.units import Bytes, NodeId, Pages4K
from repro.analysis.invariants import InvariantChecker, invariants_enabled
from repro.errors import SimulationError
from repro.hardware.counters import CounterBank, EpochCounters
from repro.hardware.ibs import IbsEngine, IbsSamples
from repro.hardware.tlb import TlbEpochResult, TlbModel
from repro.hardware.topology import NumaTopology
from repro.sim.config import SimConfig
from repro.sim.decisions import (
    ChargeCompute,
    ClearCollapseBlocks,
    Collapse2M,
    Decision,
    InterleaveRegion,
    MergeSummary,
    MigratePage,
    Note,
    Outcome,
    ReclaimPages,
    ReplicatePage,
    ReplicatePageTables,
    Split1G,
    Split2M,
    ToggleThpAlloc,
    ToggleThpPromotion,
)
from repro.sim.policy import PlacementPolicy, PolicyActionSummary
from repro.sim.profile import PhaseTimer, profile_enabled
from repro.sim.results import SimulationResult
from repro.sim.trace import DecisionTrace, trace_enabled
from repro.sim.tracker import AccessTracker
from repro.vm.address_space import AddressSpace, split_backing_page
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import (
    GRANULES_PER_1G,
    PAGE_2M,
    PAGE_4K,
    PageSize,
    SHIFT_1G,
    SHIFT_2M,
)
from repro.vm.thp import ThpState, khugepaged_scan
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.streambank import get_stream_bank, stream_bank_enabled

#: Static-analysis registry (rule R104): roots of the simulation call
#: graph.  Every random/clock sink reachable from here must be either
#: the sanctioned ``rng_for`` site or an explicitly suppressed
#: observability read (the profiler's ``# lint: ignore[R002]`` lines).
_SIM_ENTRY_POINTS = ("Simulation.run",)


@dataclass
class PageTableState:
    """Where the page tables live, and whether they are replicated.

    Linux allocates page-table pages on the node of the faulting thread;
    with one multi-threaded process they concentrate on the node that
    faulted first, so threads elsewhere pay interconnect hops on every
    level of a TLB-miss walk (the effect Mitosis measures).  The engine
    models this only when a policy opts in by setting
    :attr:`numa_enabled`; the default state prices walks exactly as
    before, keeping every non-replication config bit-identical.
    """

    #: Node holding the (master) page tables.
    home_node: NodeId = 0
    #: Model remote page-table walks at all (policy opt-in).
    numa_enabled: bool = False
    #: Replicas exist on every node; walks are always local.
    replicated: bool = False
    #: Bytes charged for the replicas when replication happened.
    replica_bytes: Bytes = 0
    #: Radix-walk depth: levels touched per full TLB-miss walk.
    walk_levels: int = 4


class Tenant:
    """One workload + policy context over (possibly shared) memory.

    All per-workload simulation state lives here: the address space,
    THP/TLB/IBS state, the access tracker, the policy and its executor,
    the stream-bank binding, and the per-tenant epoch/time clocks.
    Standalone (``phys=None``) a tenant owns a private
    :class:`PhysicalMemory`; under a :class:`repro.sim.host.Host`
    several tenants share the host's allocator and interconnect, and
    each other's traffic (via :attr:`_background_rates`) congests the
    pricing model.
    """

    def __init__(
        self,
        machine: NumaTopology,
        workload: Union[Workload, WorkloadInstance],
        policy: PlacementPolicy,
        config: Optional[SimConfig] = None,
        phys: Optional[PhysicalMemory] = None,
        tenant_id: int = 0,
    ) -> None:
        self.machine = machine
        self.config = config or SimConfig()
        self.models = self.config.models
        if isinstance(workload, Workload):
            self.instance = workload.instantiate(
                machine, self.config.scale, self.config.seed
            )
        else:
            self.instance = workload
        if self.instance.machine is not machine:
            raise SimulationError("workload instance was built for another machine")
        self.policy = policy

        self.tenant_id = tenant_id
        #: Whether this tenant's allocator is private.  Shared-allocator
        #: tenants skip the per-tenant physical-memory conservation
        #: checks (other tenants' frames are visible there); the host
        #: runs the cross-tenant version instead.
        self.owns_phys = phys is None
        self.phys = (
            PhysicalMemory.for_topology(machine) if phys is None else phys
        )
        self.asp = AddressSpace(self.instance.n_granules, self.phys, self.instance.name)
        self.thp = ThpState()
        self.tlb_model = TlbModel(self.models.tlb, self.models.cache)
        self.ibs = IbsEngine(
            machine.n_nodes,
            rate=self.config.ibs_rate if policy.wants_ibs() else 0.0,
            cost_cycles_per_sample=self.config.ibs_cost_cycles,
        )
        self.bank = CounterBank(machine.n_nodes, machine.n_cores)
        self.tracker = (
            AccessTracker(self.instance.n_granules)
            if self.config.track_access_stats
            else None
        )
        self.n_threads = self.instance.n_threads
        self.thread_nodes = machine.core_to_node[: self.n_threads].astype(np.int64)
        self.sim_time_s = 0.0
        self.epoch = 0
        # Lifecycle state driven by the host: local epochs completed,
        # the total to run (set by start()), and the previous epoch's
        # traffic rates other tenants see as background congestion.
        self._started = False
        self._epochs_run = 0
        self._total_epochs = 0
        self._background_rates: Optional[np.ndarray] = None
        self.last_rates: Optional[np.ndarray] = None
        self.action_log: List[Tuple[float, PolicyActionSummary]] = []
        self._pending_maintenance_s = 0.0
        self._last_policy_epoch = 0
        self._next_policy_time = (
            policy.interval_s if policy.interval_s is not None else None
        )
        self.invariant_checker = (
            InvariantChecker(self) if invariants_enabled(self.config) else None
        )
        # Streams are policy-independent, so runs sharing (workload,
        # machine, seed, stream length) share one memoized bank; the
        # inline path below stays as the REPRO_STREAM_BANK=0 fallback
        # and is bit-identical by construction.
        self._stream_bank = (
            get_stream_bank(
                self.instance, self.config.seed, self.config.stream_length
            )
            if stream_bank_enabled()
            else None
        )
        self.profiler = PhaseTimer() if profile_enabled(self.config) else None
        self.page_tables = PageTableState(
            home_node=int(self.thread_nodes[0]) if self.n_threads else 0
        )
        self.executor = ActionExecutor(self)
        self.tracer = (
            DecisionTrace(
                {
                    "workload": self.instance.name,
                    "machine": machine.name,
                    "policy": policy.name,
                    "seed": self.config.seed,
                }
            )
            if trace_enabled(self.config)
            else None
        )
        # Version-keyed caches over the backing state: backing fractions
        # by (lo, hi) range, per-thread TLB epoch results by group-list
        # identity, and TLB epoch results by group-list *value* (threads
        # with symmetric working sets — most of them — share one model
        # evaluation).  All valid while ``asp.version`` is unchanged;
        # only consulted in no-fault epochs (see ``_pass1_tlb``).
        self._backing_version = -1
        self._fraction_cache: Dict[Tuple[int, int], Tuple[float, float, float]] = {}
        self._tlb_memo: Dict[int, Tuple[list, TlbEpochResult]] = {}
        self._tlb_value_memo: Dict[tuple, TlbEpochResult] = {}

    # ------------------------------------------------------------------
    # Lifecycle (driven by the host)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Set up the policy and fix the tenant's epoch budget."""
        if self._started:
            raise SimulationError("tenant started twice")
        self.policy.setup(self)
        self._total_epochs = min(
            self.instance.total_epochs, self.config.max_epochs
        )
        self._started = True

    @property
    def done(self) -> bool:
        """Whether the tenant has run every epoch of its workload."""
        return self._started and self._epochs_run >= self._total_epochs

    def step(self) -> bool:
        """Run one local epoch; returns True while more remain."""
        if not self._started:
            raise SimulationError("tenant stepped before start()")
        if self.done:
            return False
        self.epoch = self._epochs_run
        self._run_epoch(self.epoch)
        self._epochs_run += 1
        return not self.done

    def release(self) -> Bytes:
        """Free every page back to the allocator (tenant exit/kill)."""
        return self.asp.release_all()

    def result(self) -> SimulationResult:
        """Package everything the run produced."""
        if self.tracer is not None:
            self.tracer.flush_env()
        return SimulationResult(
            workload=self.instance.name,
            machine=self.machine.name,
            policy=self.policy.name,
            runtime_s=self.sim_time_s,
            epoch_times_s=[e.duration_s for e in self.bank.epochs],
            bank=self.bank,
            hot_stats=(
                self.tracker.hot_page_stats(self.asp) if self.tracker else None
            ),
            action_log=self.action_log,
            final_page_counts=self.asp.page_counts(),
        )

    def _run_epoch(self, epoch: int) -> None:
        cfg = self.config
        cost = self.instance.cost
        n_nodes = self.machine.n_nodes
        n_threads = self.n_threads
        freq = self.machine.cpu_freq_hz
        prof = self.profiler
        if prof is not None:
            prof.epoch_start()

        fault_time = np.zeros(n_threads)
        walk_time = np.zeros(n_threads)
        ibs_time = np.zeros(n_threads)
        tlb_misses = np.zeros(n_threads)
        walk_l2 = np.zeros(n_threads)
        traffic = np.zeros((n_nodes, n_nodes))
        thread_home_counts = np.zeros((n_threads, n_nodes))

        # 1. Allocation work (first-touch premaps, growth).
        batch = self.instance.premap_epoch(
            epoch,
            self.asp,
            self.thread_nodes,
            self.thp.alloc_enabled,
            interleave=self.policy.alloc_interleave,
        )
        concurrent = batch.faulting_threads()
        for t in range(n_threads):
            fault_time[t] = self.models.page_fault.handler_time_s(
                float(batch.faults_4k[t]),
                float(batch.faults_2m[t]),
                float(batch.faults_1g[t]),
                concurrent,
            )
        if prof is not None:
            prof.lap("premap")

        # 2. Access streams: translation, traffic, TLB, IBS, tracking.
        stream_faults_4k = stream_faults_2m = 0.0
        written_replicated: set = set()
        length = cfg.stream_length
        bank = self._stream_bank

        # Pass 1a — per-thread stream generation.  Streams are drawn
        # before any translation (generation never reads the address
        # space), preserving each thread's RNG draw order while letting
        # the whole epoch translate in one call below.  With a stream
        # bank the draws happen (at most once per shared bank) inside
        # the bank; the IBS generators are restored from the captured
        # post-generation states so their later draws are unchanged.
        if bank is not None:
            streams, stream_writes, stream_sizes = bank.epoch_arrays(epoch)
            rngs = bank.ibs_rngs(epoch) if self.ibs.rate > 0 else []
            if prof is not None:
                prof.lap("stream_bank")
        else:
            rngs = [
                rng_for(
                    cfg.seed, self.instance.seed, self.instance.name,
                    "stream", t, epoch,
                )
                for t in range(n_threads)
            ]
            streams = np.zeros((n_threads, length), dtype=np.int64)
            stream_writes = np.zeros((n_threads, length), dtype=bool)
            stream_sizes = np.zeros(n_threads, dtype=np.int64)
            for t in range(n_threads):
                granules, writes = self.instance.epoch_stream_with_writes(
                    t, epoch, rngs[t], length
                )
                n = granules.size
                if n == 0:
                    continue
                stream_sizes[t] = n
                streams[t, :n] = granules
                stream_writes[t, :n] = writes
        # The bank's arrays are shared and read-only; the engine only
        # ever writes into its own per-epoch translation scratch.
        stream_homes = np.zeros((n_threads, length), dtype=np.int64)

        # Pass 1b — the common epoch has no demand faults: one
        # vectorized translation over every access decides which case we
        # are in.  An unmapped granule (home < 0) means some thread
        # would fault and mutate the address space mid-pass, so the
        # epoch falls back to the sequential per-thread path where
        # thread ordering is part of the deterministic contract.
        # Region workloads always fill exactly ``length`` accesses per
        # thread, so the boolean ``valid`` mask (and the copying fancy
        # selections it implies) is only needed for ragged streams
        # (traces); full streams flatten as views.
        full = bool((stream_sizes == length).all())
        if full:
            valid = None
            flat_granules = streams.reshape(-1)
        else:
            valid = np.arange(length)[None, :] < stream_sizes[:, None]
            flat_granules = streams[valid]
        flat_homes = self.asp.home_nodes(flat_granules)
        if flat_homes.size and int(flat_homes.min()) < 0:
            stream_faults_4k, stream_faults_2m = self._pass1_faulting(
                epoch,
                streams,
                stream_writes,
                stream_homes,
                stream_sizes,
                fault_time,
                walk_time,
                tlb_misses,
                walk_l2,
                written_replicated,
            )
            if prof is not None:
                prof.lap("streams")
        else:
            rep = self.asp.replication_mask(flat_granules)
            if np.any(rep):
                # Reads of replicated pages are serviced locally.
                local = np.repeat(self.thread_nodes, stream_sizes)
                flat_homes = np.where(rep, local, flat_homes)
            if full:
                stream_homes[:] = flat_homes.reshape(n_threads, length)
                writes_flat = stream_writes.reshape(-1)
            else:
                stream_homes[valid] = flat_homes
                writes_flat = stream_writes[valid]
            if np.any(writes_flat):
                written = flat_granules[writes_flat]
                rep_mask = self.asp.replication_mask(written)
                if np.any(rep_mask):
                    ids, _ = self.asp.backing_info(written[rep_mask])
                    written_replicated.update(int(i) for i in np.unique(ids))
            if prof is not None:
                prof.lap("streams")
            self._pass1_tlb(epoch, stream_sizes, walk_time, tlb_misses, walk_l2)
            if prof is not None:
                prof.lap("tlb")

        # Pass 2 — vectorized across threads: one 2-D bincount over
        # (thread, home node) replaces the per-thread bincounts, and
        # traffic accumulates with a single unbuffered np.add.at (which
        # applies additions in thread order, bit-identical to a loop).
        keyed = (
            np.arange(n_threads, dtype=np.int64)[:, None] * n_nodes + stream_homes
        )
        flat = keyed.reshape(-1) if full else keyed[valid]
        pair_counts = np.bincount(flat, minlength=n_threads * n_nodes).reshape(
            n_threads, n_nodes
        )
        scale = np.zeros(n_threads)
        active = stream_sizes > 0
        scale[active] = cost.dram_accesses / stream_sizes[active]
        thread_home_counts[:] = pair_counts.astype(np.float64) * scale[:, None]
        np.add.at(traffic, self.thread_nodes, thread_home_counts)

        active_idx = np.flatnonzero(active)
        if prof is not None:
            prof.lap("streams")
        if self.tracker is not None:
            # Weight by the thread's actual stream size (matching the
            # traffic scaling above), not the nominal stream_length:
            # short streams represent the same DRAM access budget
            # spread over fewer touches.
            if bank is not None:
                # Fused path: the bank pre-merged every thread's unique
                # columns into one COO with the per-thread scale baked
                # in (identical to this epoch's ``scale`` — the bank
                # fingerprint pins ``dram_accesses``), so the whole
                # epoch lands in two vectorized calls.
                ids, _, _, scaled = bank.epoch_tracker(epoch)
                self.tracker.add_epoch(ids, scaled)
                self.tracker.merge_epoch_sharing(bank.sharing_packed(epoch))
            else:
                for t in active_idx:
                    n = int(stream_sizes[t])
                    self.tracker.update(int(t), streams[t, :n], float(scale[t]))
        if prof is not None:
            prof.lap("tracker")

        n_samples = self.ibs.record_epoch_batch(
            active_idx,
            self.thread_nodes,
            streams,
            stream_homes,
            stream_writes,
            stream_sizes,
            cost.dram_accesses,
            rngs,
        )
        ibs_time = n_samples * self.ibs.cost_cycles_per_sample / freq
        if prof is not None:
            prof.lap("ibs")

        # 3. Price the traffic: controller queueing + interconnect hops.
        # Under a multi-tenant host, the other tenants' previous-epoch
        # traffic congests the same controllers and links; the N=1 path
        # (bg is None) performs exactly the original arithmetic so
        # single-workload runs stay bit-identical.
        rates = traffic / cfg.epoch_s
        bg = self._background_rates
        if bg is not None:
            shared = rates + bg
            controller_latency = self.models.controller.latency_cycles(
                shared.sum(axis=0)
            )
            hop_latency = self.models.interconnect.hop_latency_matrix(
                self.machine, shared
            )
        else:
            controller_latency = self.models.controller.latency_cycles(rates.sum(axis=0))
            hop_latency = self.models.interconnect.hop_latency_matrix(self.machine, rates)
        self.last_rates = rates
        latency = controller_latency[None, :] + hop_latency  # (src, dst) cycles
        dram_time = (
            thread_home_counts * latency[self.thread_nodes, :]
        ).sum(axis=1) / freq / cost.mlp

        thread_time = cost.cpu_seconds + dram_time + walk_time + fault_time + ibs_time
        if prof is not None:
            prof.lap("pricing")

        # 4. Maintenance: khugepaged plus policy actions from last epoch.
        maintenance_s = self._pending_maintenance_s
        self._pending_maintenance_s = 0.0
        replicas_collapsed = 0
        for page_id in sorted(written_replicated):
            if self.asp.unreplicate_backing(page_id) > 0:
                replicas_collapsed += 1
        if replicas_collapsed:
            maintenance_s += self.models.migration.collapse_time_s(
                replicas_collapsed, n_threads
            )
        collapsed = 0
        if self.thp.promotion_enabled:
            self.thp.scan_batch = cfg.khugepaged_batch
            collapsed = khugepaged_scan(self.thp, self.asp)
            maintenance_s += self.models.migration.collapse_time_s(
                collapsed, n_threads
            )

        epoch_time = float(thread_time.max()) + maintenance_s / n_nodes
        self.sim_time_s += epoch_time

        fault_per_core = np.zeros(self.machine.n_cores)
        fault_per_core[:n_threads] = fault_time
        self.bank.add(
            EpochCounters(
                epoch=epoch,
                duration_s=epoch_time,
                traffic=traffic,
                instructions=cost.instructions * n_threads,
                mem_accesses=cost.mem_accesses * n_threads,
                l2_data_misses=cost.dram_accesses * n_threads,
                walk_l2_misses=float(walk_l2.sum()),
                tlb_misses=float(tlb_misses.sum()),
                page_faults_4k=float(batch.faults_4k.sum()) + stream_faults_4k,
                page_faults_2m=float(batch.faults_2m.sum()) + stream_faults_2m,
                page_faults_1g=float(batch.faults_1g.sum()),
                fault_time_per_core_s=fault_per_core,
                daemon_time_s=maintenance_s,
                time_cpu_s=cost.cpu_seconds * n_threads,
                time_dram_s=float(dram_time.sum()),
                time_walk_s=float(walk_time.sum()),
                time_fault_s=float(fault_time.sum()),
                time_ibs_s=float(ibs_time.sum()),
                pages_collapsed_2m=collapsed,
                replicas_collapsed=replicas_collapsed,
                ibs_samples=self.ibs.pending_samples,
            )
        )
        if prof is not None:
            prof.lap("maintenance")

        # 5. Policy daemon at its interval (actions cost time next epoch).
        if (
            self._next_policy_time is not None
            and self.sim_time_s >= self._next_policy_time
        ):
            samples = self.ibs.drain()
            window = self.bank.window(self._last_policy_epoch)
            summary = self.executor.run_interval(self.policy, samples, window)
            self._last_policy_epoch = epoch + 1
            migration_model = self.models.migration
            action_cost = (
                migration_model.migration_time_s(
                    summary.bytes_migrated + summary.bytes_replicated,
                    summary.migrated_4k
                    + summary.migrated_2m
                    + summary.replicated_pages,
                )
                + migration_model.split_time_s(
                    summary.splits_2m + summary.splits_1g * (GRANULES_PER_1G // 512),
                    self.n_threads,
                )
                + migration_model.collapse_time_s(summary.collapses_2m, self.n_threads)
                + summary.compute_s
            )
            # Reclaim is priced like migration (unmap + frame return);
            # guarded so configs that never reclaim add literally
            # nothing to the float sum.
            if summary.pages_reclaimed:
                action_cost += migration_model.migration_time_s(
                    summary.bytes_reclaimed, summary.pages_reclaimed
                )
            self._pending_maintenance_s += action_cost
            self.action_log.append((self.sim_time_s, summary))
            interval = self.policy.interval_s or 1.0
            while self._next_policy_time <= self.sim_time_s:
                self._next_policy_time += interval
        if prof is not None:
            prof.lap("policy")

        if self.invariant_checker is not None:
            self.invariant_checker.after_epoch(epoch)
        if prof is not None:
            prof.epoch_end()

    # ------------------------------------------------------------------
    # Pass-1 variants
    # ------------------------------------------------------------------
    def _pass1_faulting(
        self,
        epoch: int,
        streams: np.ndarray,
        stream_writes: np.ndarray,
        stream_homes: np.ndarray,
        stream_sizes: np.ndarray,
        fault_time: np.ndarray,
        walk_time: np.ndarray,
        tlb_misses: np.ndarray,
        walk_l2: np.ndarray,
        written_replicated: set,
    ) -> Tuple[float, float]:
        """Sequential per-thread pass 1 for epochs with demand faults.

        Demand faulting mutates the address space and TLB classification
        must see the backing state as of its thread's turn, so thread
        ordering is part of the deterministic contract.  The version-
        keyed caches stay out of this path entirely: faulting bumps the
        address-space version, so they re-key on the next quiet epoch,
        and the per-epoch ``fraction_cache`` below keeps the original
        sharing semantics (entries computed before a later thread's
        fault are deliberately reused after it).
        """
        cost = self.instance.cost
        freq = self.machine.cpu_freq_hz
        faults_4k = faults_2m = 0.0
        fraction_cache: Dict[Tuple[int, int], Tuple[float, float, float]] = {}
        for t in range(self.n_threads):
            n = int(stream_sizes[t])
            if n == 0:
                continue
            granules = streams[t, :n]
            writes = stream_writes[t, :n]
            homes = self.asp.home_nodes_for(granules, int(self.thread_nodes[t]))
            if homes.size and int(homes.min()) < 0:
                stats = self.asp.fault_in(
                    granules[homes < 0],
                    int(self.thread_nodes[t]),
                    self.thp.alloc_enabled,
                )
                fault_time[t] += self.models.page_fault.handler_time_s(
                    stats.faults_4k, stats.faults_2m, stats.faults_1g, 1
                )
                faults_4k += stats.faults_4k
                faults_2m += stats.faults_2m
                homes = self.asp.home_nodes_for(granules, int(self.thread_nodes[t]))
            stream_homes[t, :n] = homes
            # Writes to replicated pages collapse the replicas.
            if writes.size and np.any(writes):
                written = granules[writes]
                rep_mask = self.asp.replication_mask(written)
                if np.any(rep_mask):
                    ids, _ = self.asp.backing_info(written[rep_mask])
                    written_replicated.update(int(i) for i in np.unique(ids))
            tlb_result = self.tlb_model.epoch_result_grouped(
                self._classify_tlb_groups(
                    self.instance.tlb_groups(t, epoch), fraction_cache
                ),
                cost.mem_accesses,
            )
            walk_time[t] = tlb_result.walk_cycles / freq
            penalty = self._remote_walk_penalty_s(t, tlb_result.misses)
            if penalty:
                walk_time[t] += penalty
            tlb_misses[t] = tlb_result.misses
            walk_l2[t] = tlb_result.walk_l2_misses
        return faults_4k, faults_2m

    def _pass1_tlb(
        self,
        epoch: int,
        stream_sizes: np.ndarray,
        walk_time: np.ndarray,
        tlb_misses: np.ndarray,
        walk_l2: np.ndarray,
    ) -> None:
        """TLB-classify all active threads against quiescent backing.

        Only called in no-fault epochs, where the backing state is
        frozen for the whole pass: classification order no longer
        matters, so backing fractions and whole per-thread TLB results
        are memoized across epochs, keyed on the address-space version
        and each thread's (value-compared) group list.
        """
        cost = self.instance.cost
        freq = self.machine.cpu_freq_hz
        version = self.asp.version
        if version != self._backing_version:
            self._fraction_cache.clear()
            self._tlb_memo.clear()
            self._tlb_value_memo.clear()
            self._backing_version = version
        for t in range(self.n_threads):
            if stream_sizes[t] == 0:
                continue
            groups = self.instance.tlb_groups(t, epoch)
            memo = self._tlb_memo.get(t)
            # The instance returns the same list object while a
            # thread's groups are unchanged, so identity is the cheap
            # (and sufficient) per-thread staleness test.
            if memo is not None and memo[0] is groups:
                tlb_result = memo[1]
            else:
                key = tuple(groups)
                tlb_result = self._tlb_value_memo.get(key)
                if tlb_result is None:
                    tlb_result = self.tlb_model.epoch_result_grouped(
                        self._classify_tlb_groups(groups, self._fraction_cache),
                        cost.mem_accesses,
                    )
                    self._tlb_value_memo[key] = tlb_result
                self._tlb_memo[t] = (groups, tlb_result)
            walk_time[t] = tlb_result.walk_cycles / freq
            penalty = self._remote_walk_penalty_s(t, tlb_result.misses)
            if penalty:
                walk_time[t] += penalty
            tlb_misses[t] = tlb_result.misses
            walk_l2[t] = tlb_result.walk_l2_misses

    def _remote_walk_penalty_s(self, t: int, misses: float) -> float:
        """Extra walk seconds when thread ``t`` walks remote page tables.

        Every TLB-miss walk touches :attr:`PageTableState.walk_levels`
        page-table entries; when the tables live on another node each
        touch pays that node pair's interconnect hops (the remote
        page-table cost Mitosis replicates tables to remove).  Zero
        unless a policy enabled page-table NUMA modelling, and zero
        again once the tables are replicated.
        """
        pt = self.page_tables
        if not pt.numa_enabled or pt.replicated:
            return 0.0
        hops = float(
            self.machine.hop_matrix[int(self.thread_nodes[t]), pt.home_node]
        )
        if hops <= 0.0:
            return 0.0
        cycles = (
            misses
            * hops
            * self.models.interconnect.hop_latency_cycles
            * pt.walk_levels
        )
        return cycles / self.machine.cpu_freq_hz

    # ------------------------------------------------------------------
    # TLB group classification against current backing state
    # ------------------------------------------------------------------
    def _backing_fractions(
        self, lo: Pages4K, hi: Pages4K
    ) -> Tuple[float, float, float]:
        """Fractions of [lo, hi) backed by 4KB / 2MB / 1GB pages."""
        asp = self.asp
        c_lo = lo >> SHIFT_2M
        c_hi = ((hi - 1) >> SHIFT_2M) + 1
        mapped4 = float(asp.mapped_count_2m[c_lo:c_hi].sum())
        huge_idx = np.flatnonzero(asp.huge[c_lo:c_hi]) + c_lo
        if huge_idx.size:
            overlap = np.minimum(hi, (huge_idx + 1) << SHIFT_2M) - np.maximum(
                lo, huge_idx << SHIFT_2M
            )
            huge_g = float(overlap.sum())
        else:
            huge_g = 0.0
        g_lo = lo >> SHIFT_1G
        g_hi = ((hi - 1) >> SHIFT_1G) + 1
        giga_idx = np.flatnonzero(asp.giga[g_lo:g_hi]) + g_lo
        if giga_idx.size:
            overlap = np.minimum(hi, (giga_idx + 1) << SHIFT_1G) - np.maximum(
                lo, giga_idx << SHIFT_1G
            )
            giga_g = float(overlap.sum())
        else:
            giga_g = 0.0
        total = mapped4 + huge_g + giga_g
        if total <= 0:
            return (1.0, 0.0, 0.0)
        return (mapped4 / total, huge_g / total, giga_g / total)

    def _classify_tlb_groups(
        self,
        groups,
        cache: Dict[Tuple[int, int], Tuple[float, float, float]],
    ) -> Dict[PageSize, Tuple[np.ndarray, np.ndarray]]:
        per_class: Dict[PageSize, Tuple[List[float], List[float], List[float]]] = {
            PageSize.SIZE_4K: ([], [], []),
            PageSize.SIZE_2M: ([], [], []),
            PageSize.SIZE_1G: ([], [], []),
        }
        for group in groups:
            if group.weight <= 0 or group.hi <= group.lo:
                continue
            key = (group.lo, group.hi)
            fractions = cache.get(key)
            if fractions is None:
                fractions = self._backing_fractions(group.lo, group.hi)
                cache[key] = fractions
            for size, frac, distinct in (
                (PageSize.SIZE_4K, fractions[0], group.distinct_4k),
                (PageSize.SIZE_2M, fractions[1], group.distinct_2m),
                (PageSize.SIZE_1G, fractions[2], group.distinct_1g),
            ):
                if frac <= 0:
                    continue
                counts, weights, runs = per_class[size]
                counts.append(max(1.0, distinct * frac))
                weights.append(group.weight * frac)
                # Sequential sweeps keep hitting the same large page for
                # consecutive 4KB-page runs, so the effective run length
                # at a bigger page size grows by the ratio of distinct
                # translations (512 for a dense sweep).  Random-order
                # groups get no such amplification.
                if group.sequential:
                    runs.append(
                        group.run_length * (group.distinct_4k / max(distinct, 1.0))
                    )
                else:
                    runs.append(group.run_length)
        return {
            size: (np.asarray(counts), np.asarray(weights), np.asarray(runs))
            for size, (counts, weights, runs) in per_class.items()
            if counts
        }


class Simulation(Tenant):
    """Drives one (machine, workload, policy) combination to completion.

    The single-workload entry point is the N=1 special case of the
    multi-tenant architecture: :meth:`run` adopts this tenant into a
    fresh :class:`repro.sim.host.Host` sharing its allocator and drives
    the host's epoch loop, so the goldens pinned against this path
    certify the refactored host multiplexing too.
    """

    def run(self) -> SimulationResult:
        """Run the workload to completion and return the results."""
        from repro.sim.host import Host  # deferred: host imports this module

        host = Host(self.machine, config=self.config, phys=self.phys)
        host.admit(self)
        host.run_to_completion()
        return self.result()


class ActionExecutor:
    """The single mutation point of the policy layer.

    Policies yield typed :mod:`repro.sim.decisions`; the executor
    applies each one against the simulation state the moment it is
    yielded, accounts the work in a :class:`PolicyActionSummary` (priced
    by the engine next epoch), and ``send()``s the resulting
    :class:`Outcome` back into the decider generator — so a decider
    observes exactly the state its earlier decisions produced, as the
    old self-mutating policies did.

    With a multi-decider stack, conflicting decisions are resolved
    deterministically: the first decider whose decision on a target
    (page / THP toggle / page tables) is *applied* owns that target for
    the interval, and later deciders' decisions on it are skipped.  A
    single decider never consults claims, so its behaviour is untouched
    by composition support.
    """

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.decisions_seen = 0
        self.decisions_applied = 0
        self.decisions_skipped = 0
        #: Lifetime action totals; the invariant checker reconciles this
        #: against the sum of the engine's per-interval action log.
        self.totals = PolicyActionSummary()

    # ------------------------------------------------------------------
    # Interval driving
    # ------------------------------------------------------------------
    def run_interval(
        self, policy: PlacementPolicy, samples: IbsSamples, window: CounterBank
    ) -> PolicyActionSummary:
        """Run every decider of ``policy`` once; return the summary."""
        summary = PolicyActionSummary()
        deciders = policy.deciders()
        claimed: Optional[Dict[Tuple[str, Any], int]] = (
            {} if len(deciders) > 1 else None
        )
        for index, decider in enumerate(deciders):
            self.drive(
                decider.decide(self.sim, samples, window),
                summary,
                claimed=claimed,
                index=index,
                source=decider.name,
            )
        self.totals.merge(summary)
        return summary

    def drive(
        self,
        gen: Iterator[Decision],
        summary: PolicyActionSummary,
        claimed: Optional[Dict[Tuple[str, Any], int]] = None,
        index: int = 0,
        source: str = "decider",
    ) -> Any:
        """Drive one decider generator to completion.

        Returns the generator's return value (component decision
        dataclasses use it to report what they observed).
        """
        try:
            decision = next(gen)
        except StopIteration as stop:
            return stop.value
        while True:
            outcome = self._apply(decision, summary, claimed, index, source)
            try:
                decision = gen.send(outcome)
            except StopIteration as stop:
                return stop.value

    def _apply(
        self,
        decision: Decision,
        summary: PolicyActionSummary,
        claimed: Optional[Dict[Tuple[str, Any], int]],
        index: int,
        source: str,
    ) -> Outcome:
        self.decisions_seen += 1
        targets = decision.targets()
        if claimed is not None and any(
            claimed.get(tgt, index) != index for tgt in targets
        ):
            outcome = Outcome(applied=False, reason="conflict")
            self.decisions_skipped += 1
        else:
            outcome = self._execute(decision, summary)
            if outcome.applied:
                self.decisions_applied += 1
                if claimed is not None:
                    for tgt in targets:
                        claimed.setdefault(tgt, index)
            else:
                self.decisions_skipped += 1
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.record(
                self.sim.sim_time_s, self.sim.epoch, source, decision, outcome
            )
        return outcome

    # ------------------------------------------------------------------
    # Decision dispatch
    # ------------------------------------------------------------------
    # One ``_apply_*`` method per concrete decision class, wired through
    # the HANDLERS table below.  The decision-flow analyzer (R109/R112)
    # reads this structure: a Decision subclass missing from HANDLERS —
    # or an ``_apply_*`` method missing from it — is a lint error, and
    # each handler's write effects must match the counters the decision
    # class declares.

    def _apply_charge_compute(
        self, decision: ChargeCompute, summary: PolicyActionSummary
    ) -> Outcome:
        summary.compute_s += decision.seconds
        return Outcome(applied=True)

    def _apply_note(
        self, decision: Note, summary: PolicyActionSummary
    ) -> Outcome:
        summary.add_note(decision.text)
        return Outcome(applied=True)

    def _apply_migrate_page(
        self, decision: MigratePage, summary: PolicyActionSummary
    ) -> Outcome:
        moved = self.sim.asp.migrate_backing(
            decision.page_id, decision.target_node
        )
        if moved == 0:
            return Outcome(applied=False, reason="not moved")
        summary.bytes_migrated += moved
        if moved == PAGE_4K:
            summary.migrated_4k += 1
        elif moved == PAGE_2M:
            summary.migrated_2m += 1
        return Outcome(applied=True, bytes_moved=moved, count=1)

    def _apply_interleave_region(
        self, decision: InterleaveRegion, summary: PolicyActionSummary
    ) -> Outcome:
        moved = self.sim.asp.migrate_granules(
            decision.granules, decision.target_nodes
        )
        summary.bytes_migrated += moved
        summary.migrated_4k += moved // PAGE_4K
        return Outcome(
            applied=moved > 0,
            bytes_moved=moved,
            count=moved // PAGE_4K,
            reason="" if moved else "nothing moved",
        )

    def _apply_split_2m(
        self, decision: Split2M, summary: PolicyActionSummary
    ) -> Outcome:
        n = split_backing_page(
            self.sim.asp, decision.page_id, decision.block_collapse
        )
        summary.splits_2m += n
        return Outcome(
            applied=n > 0, count=n, reason="" if n else "not a large page"
        )

    def _apply_split_1g(
        self, decision: Split1G, summary: PolicyActionSummary
    ) -> Outcome:
        n = split_backing_page(
            self.sim.asp, decision.page_id, decision.block_collapse
        )
        if n:
            summary.splits_1g += 1
        return Outcome(
            applied=n > 0, count=n, reason="" if n else "not a large page"
        )

    def _apply_collapse_2m(
        self, decision: Collapse2M, summary: PolicyActionSummary
    ) -> Outcome:
        ok = self.sim.asp.collapse_chunk(decision.chunk, decision.node)
        if ok:
            summary.collapses_2m += 1
        return Outcome(
            applied=ok,
            count=1 if ok else 0,
            reason="" if ok else "not collapsible",
        )

    def _apply_toggle_thp_alloc(
        self, decision: ToggleThpAlloc, summary: PolicyActionSummary
    ) -> Outcome:
        if decision.enabled:
            self.sim.thp.enable_alloc()
        else:
            self.sim.thp.disable_alloc()
        return Outcome(applied=True)

    def _apply_toggle_thp_promotion(
        self, decision: ToggleThpPromotion, summary: PolicyActionSummary
    ) -> Outcome:
        if decision.enabled:
            self.sim.thp.enable_promotion()
        else:
            self.sim.thp.disable_promotion()
        return Outcome(applied=True)

    def _apply_clear_collapse_blocks(
        self, decision: ClearCollapseBlocks, summary: PolicyActionSummary
    ) -> Outcome:
        self.sim.asp.clear_collapse_blocks()
        return Outcome(applied=True)

    def _apply_replicate_page(
        self, decision: ReplicatePage, summary: PolicyActionSummary
    ) -> Outcome:
        copied = self.sim.asp.replicate_backing(decision.page_id)
        if copied == 0:
            return Outcome(applied=False, reason="not replicated")
        summary.bytes_replicated += copied
        summary.replicated_pages += 1
        return Outcome(applied=True, bytes_moved=copied, count=1)

    def _apply_replicate_page_tables(
        self, decision: ReplicatePageTables, summary: PolicyActionSummary
    ) -> Outcome:
        pt = self.sim.page_tables
        if pt.replicated:
            return Outcome(applied=False, reason="already replicated")
        nbytes = self.sim.asp.page_table_bytes() * (self.sim.machine.n_nodes - 1)
        pt.replicated = True
        pt.replica_bytes = nbytes
        summary.bytes_replicated += nbytes
        summary.replicated_pages += nbytes // PAGE_4K
        return Outcome(
            applied=True, bytes_moved=nbytes, count=nbytes // PAGE_4K
        )

    def _apply_reclaim_pages(
        self, decision: ReclaimPages, summary: PolicyActionSummary
    ) -> Outcome:
        freed = self.sim.asp.reclaim_granules(decision.granules)
        summary.bytes_reclaimed += freed
        summary.pages_reclaimed += freed // PAGE_4K
        return Outcome(
            applied=freed > 0,
            bytes_moved=freed,
            count=freed // PAGE_4K,
            reason="" if freed else "nothing reclaimed",
        )

    def _apply_merge_summary(
        self, decision: MergeSummary, summary: PolicyActionSummary
    ) -> Outcome:
        summary.merge(decision.summary)
        return Outcome(applied=True)

    #: Exact-type dispatch table (the decision hierarchy is flat, so
    #: exact-type lookup and the old isinstance chain are equivalent).
    #: R109 checks this table is exhaustive over the Decision subclasses
    #: and free of dead handlers.
    HANDLERS: ClassVar[
        Dict[Type[Decision], Callable[..., Outcome]]
    ] = {
        ChargeCompute: _apply_charge_compute,
        Note: _apply_note,
        MigratePage: _apply_migrate_page,
        InterleaveRegion: _apply_interleave_region,
        Split2M: _apply_split_2m,
        Split1G: _apply_split_1g,
        Collapse2M: _apply_collapse_2m,
        ToggleThpAlloc: _apply_toggle_thp_alloc,
        ToggleThpPromotion: _apply_toggle_thp_promotion,
        ClearCollapseBlocks: _apply_clear_collapse_blocks,
        ReplicatePage: _apply_replicate_page,
        ReplicatePageTables: _apply_replicate_page_tables,
        ReclaimPages: _apply_reclaim_pages,
        MergeSummary: _apply_merge_summary,
    }

    #: Conflict domains the first-member-wins claim logic arbitrates.
    #: R113 checks this equals the set of non-"none" domains declared by
    #: the decision classes in HANDLERS.
    CONFLICT_DOMAINS: ClassVar[Tuple[str, ...]] = ("page", "thp", "pt")

    def _execute(
        self, decision: Decision, summary: PolicyActionSummary
    ) -> Outcome:
        handler = self.HANDLERS.get(type(decision))
        if handler is None:
            raise SimulationError(
                f"unknown decision type {type(decision).__name__}"
            )
        # Functions stored in a class-level dict are not bound on
        # attribute access; pass self explicitly.
        return handler(self, decision, summary)


def apply_decisions(
    sim: Any, gen: Iterator[Decision], source: str = "decider"
) -> Tuple[PolicyActionSummary, Any]:
    """Drive one decider generator against ``sim`` with a fresh executor.

    Test/tooling helper: ``sim`` may be a full :class:`Simulation` or any
    object exposing the attributes the executed decisions touch
    (``asp``, ``thp``, ``page_tables``, ``machine.n_nodes``).  Returns
    ``(summary, generator_return_value)``.  A fresh executor is used on
    purpose — drives outside the engine's interval loop must not skew
    the engine executor's conservation totals.
    """
    executor = ActionExecutor(sim)
    summary = PolicyActionSummary()
    value = executor.drive(gen, summary, source=source)
    return summary, value
