"""The shared host: one machine multiplexing N tenants per epoch.

A :class:`Host` owns what colocated processes share on a real NUMA
server — the :class:`~repro.vm.frame_allocator.PhysicalMemory` frame
allocator, the interconnect (each tenant prices its traffic against the
sum of the others' rates), and the epoch clock — while every
:class:`~repro.sim.engine.Tenant` keeps its private address space,
policy, and monitoring state.  Each host epoch steps every active
tenant once; tenants that exhaust their workload complete, tenants that
exhaust *memory* are OOM-killed and release every frame back to the
allocator, aging it for later arrivals.

The single-workload :class:`~repro.sim.engine.Simulation` runs through
this same loop as the N=1 special case, so the engine goldens certify
the multiplexing path too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.invariants import HostInvariantChecker, invariants_enabled
from repro.errors import AllocationError, ConfigurationError, SimulationError
from repro.hardware.topology import NumaTopology
from repro.sim.config import SimConfig
from repro.sim.engine import Tenant
from repro.units import Bytes
from repro.vm.frame_allocator import PhysicalMemory


class Host:
    """Shared allocator + epoch clock driving a set of tenants.

    Tenants are admitted with :meth:`admit` (at construction time or
    mid-run, which is how scenario arrivals work), stepped in admission
    order by :meth:`step_epoch`, and leave either by completing their
    workload or by being OOM-killed when the shared allocator cannot
    satisfy a fault.  :attr:`status` records every tenant's lifecycle
    state (``running`` / ``completed`` / ``oom-killed`` / ``released``).
    """

    def __init__(
        self,
        machine: NumaTopology,
        config: Optional[SimConfig] = None,
        phys: Optional[PhysicalMemory] = None,
    ) -> None:
        self.machine = machine
        self.config = config or SimConfig()
        self.phys = (
            PhysicalMemory.for_topology(machine) if phys is None else phys
        )
        #: Every tenant ever admitted, in admission order.
        self.tenants: List[Tenant] = []
        #: Tenants still running (subset of :attr:`tenants`).
        self.active: List[Tenant] = []
        #: Lifecycle state by tenant id.
        self.status: Dict[int, str] = {}
        #: Host epochs completed (the shared clock; tenants admitted
        #: late keep their own local epoch counters).
        self.epoch = 0
        self.checker = (
            HostInvariantChecker(self)
            if invariants_enabled(self.config)
            else None
        )

    # ------------------------------------------------------------------
    # Admission and departure
    # ------------------------------------------------------------------
    def admit(self, tenant: Tenant) -> None:
        """Admit a tenant and start its workload on this host."""
        if tenant.phys is not self.phys:
            raise SimulationError(
                "tenant was built against a different allocator; pass "
                "the host's phys to the Tenant constructor"
            )
        if tenant.machine is not self.machine:
            raise SimulationError("tenant was built for another machine")
        if tenant.tenant_id in self.status:
            raise SimulationError(
                f"tenant id {tenant.tenant_id} admitted twice"
            )
        self.tenants.append(tenant)
        self.active.append(tenant)
        self.status[tenant.tenant_id] = "running"
        tenant.start()

    def release(self, tenant: Tenant) -> Bytes:
        """Return a departed tenant's pages to the shared allocator.

        Call after harvesting the tenant's result: releasing tears down
        the address space (final page counts become zero), which is
        exactly what process exit does to a real server's allocator.
        """
        if self.status.get(tenant.tenant_id) == "running":
            raise SimulationError("cannot release a running tenant")
        freed = tenant.release()
        self.status[tenant.tenant_id] = "released"
        return freed

    def evict(self, tenant: Tenant) -> Bytes:
        """Forcibly remove a still-running tenant and free its pages.

        For scenario truncation (the host clock ran out): harvest the
        tenant's partial result *before* evicting — release tears the
        address space down.
        """
        if self.status.get(tenant.tenant_id) != "running":
            raise SimulationError("evict targets running tenants")
        self.active.remove(tenant)
        freed = tenant.release()
        self.status[tenant.tenant_id] = "released"
        return freed

    # ------------------------------------------------------------------
    # The epoch loop
    # ------------------------------------------------------------------
    def background_rates(self, tenant: Tenant) -> Optional[np.ndarray]:
        """Other active tenants' traffic rates, summed per node pair.

        ``None`` when no co-tenant has produced traffic yet — the
        single-tenant case, which must price epochs with bitwise the
        original arithmetic.
        """
        total: Optional[np.ndarray] = None
        for other in self.active:
            if other is tenant or other.last_rates is None:
                continue
            if total is None:
                total = other.last_rates.copy()
            else:
                total += other.last_rates
        return total

    def step_epoch(self) -> Tuple[List[Tenant], List[Tenant]]:
        """Step every active tenant one epoch on the shared clock.

        Returns ``(finished, killed)``: tenants that completed their
        workload this epoch and tenants OOM-killed by allocation
        failure.  Killed tenants are released immediately (the kernel
        reclaims a killed process's pages at once); finished tenants
        keep their pages until :meth:`release` so results can be
        harvested first.
        """
        finished: List[Tenant] = []
        killed: List[Tenant] = []
        for tenant in list(self.active):
            tenant._background_rates = self.background_rates(tenant)
            try:
                more = tenant.step()
            except AllocationError:
                tenant.release()
                self.active.remove(tenant)
                self.status[tenant.tenant_id] = "oom-killed"
                killed.append(tenant)
                continue
            if not more:
                self.active.remove(tenant)
                self.status[tenant.tenant_id] = "completed"
                finished.append(tenant)
        self.epoch += 1
        if self.checker is not None:
            self.checker.after_epoch(self.epoch)
        return finished, killed

    def run_to_completion(self) -> None:
        """Drive epochs until every admitted tenant has left."""
        while self.active:
            self.step_epoch()

    # ------------------------------------------------------------------
    # Memory pressure
    # ------------------------------------------------------------------
    def apply_pressure(self, fraction: float) -> Bytes:
        """Pin ``fraction`` of every node's free memory, fragmenting it.

        Models a long-running host's occupancy without simulating the
        occupants: the pins go through
        :meth:`~repro.vm.frame_allocator.NodeMemory.pin_fragmented`, so
        they are accounted as ``test_pinned_bytes`` and page
        conservation keeps holding, and every pinned byte also breaks
        huge-page contiguity — the promotion-failure regime the paper
        attributes to loaded servers, as opposed to a fresh boot.
        """
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(
                f"pressure fraction {fraction} outside [0, 1)"
            )
        pinned: Bytes = 0
        for node in self.phys.nodes:
            pinned += node.pin_fragmented(int(node.free_bytes * fraction))
        return pinned
