"""Placement-policy interface and the baseline Linux policies.

A policy configures the initial THP state and optionally runs as a
periodic daemon (Carrefour's 1-second interval).  Each daemon interval
the policy *decides*: :meth:`PlacementPolicy.decide` is a generator
yielding typed :mod:`repro.sim.decisions` objects (migrate / interleave
/ split / collapse / toggle THP / replicate), and the engine's
:class:`~repro.sim.engine.ActionExecutor` applies them against the
address space, accounts their cost, and sends each decision's
:class:`~repro.sim.decisions.Outcome` back into the generator.
Policies therefore never mutate the address space themselves — the
``core/`` modules are pure-ish deciders, which is what makes decisions
traceable (:mod:`repro.sim.trace`) and policies composable
(:class:`PolicyStack`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Generator, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.hardware.counters import CounterBank
from repro.hardware.ibs import IbsSamples
from repro.sim.decisions import Decision, MergeSummary, Outcome

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass
class PolicyActionSummary:
    """What a daemon invocation did, for cost accounting and logging."""

    #: Cap on accumulated notes: long runs merge hundreds of interval
    #: summaries and the numeric fields are what cost accounting needs;
    #: overflow is recorded in :attr:`notes_dropped` instead of growing
    #: the list without bound.
    MAX_NOTES: ClassVar[int] = 64

    migrated_4k: int = 0
    migrated_2m: int = 0
    bytes_migrated: int = 0
    splits_2m: int = 0
    splits_1g: int = 0
    collapses_2m: int = 0
    replicated_pages: int = 0
    bytes_replicated: int = 0
    #: 4KB pages evicted by ReclaimPages decisions (memory pressure).
    pages_reclaimed: int = 0
    bytes_reclaimed: int = 0
    #: Daemon compute time (sample processing etc.), seconds.
    compute_s: float = 0.0
    notes: List[str] = field(default_factory=list)
    #: Notes discarded because the list already held MAX_NOTES entries.
    notes_dropped: int = 0

    def add_note(self, text: str) -> None:
        """Append a note, counting instead of growing past the cap."""
        if len(self.notes) < self.MAX_NOTES:
            self.notes.append(text)
        else:
            self.notes_dropped += 1

    def merge(self, other: "PolicyActionSummary") -> None:
        """Accumulate another summary into this one."""
        self.migrated_4k += other.migrated_4k
        self.migrated_2m += other.migrated_2m
        self.bytes_migrated += other.bytes_migrated
        self.splits_2m += other.splits_2m
        self.splits_1g += other.splits_1g
        self.collapses_2m += other.collapses_2m
        self.replicated_pages += other.replicated_pages
        self.bytes_replicated += other.bytes_replicated
        self.pages_reclaimed += other.pages_reclaimed
        self.bytes_reclaimed += other.bytes_reclaimed
        self.compute_s += other.compute_s
        self.notes_dropped += other.notes_dropped
        room = self.MAX_NOTES - len(self.notes)
        if room >= len(other.notes):
            self.notes.extend(other.notes)
        else:
            if room > 0:
                self.notes.extend(other.notes[:room])
            self.notes_dropped += len(other.notes) - max(room, 0)


class PlacementPolicy:
    """Base policy: no daemon, THP fully on or off.

    Subclasses override :meth:`setup` to configure initial state and
    :meth:`decide` to emit decisions from monitoring data.
    """

    #: Human-readable policy name (used in reports).
    name: str = "base"
    #: Seconds of simulated time between daemon invocations;
    #: ``None`` disables the daemon entirely.
    interval_s: Optional[float] = 1.0
    #: Place new allocations round-robin across nodes (numactl-style
    #: --interleave) instead of first-touch.
    alloc_interleave: bool = False

    def setup(self, sim: "Simulation") -> None:
        """Configure initial THP state and any policy-private state."""

    def on_interval(
        self, sim: "Simulation", samples: IbsSamples, window: CounterBank
    ) -> PolicyActionSummary:
        """Legacy daemon hook; superseded by :meth:`decide`.

        Kept for external subclasses: the default :meth:`decide` bridges
        whatever this returns into the executor via ``MergeSummary``.
        """
        return PolicyActionSummary()

    def decide(
        self, sim: "Simulation", samples: IbsSamples, window: CounterBank
    ) -> Generator[Decision, Outcome, None]:
        """One daemon invocation: yield decisions for the executor.

        The executor ``send()``s an :class:`~repro.sim.decisions.Outcome`
        back for every yielded decision, so deciders can rate-limit on
        work actually performed.
        """
        yield MergeSummary(self.on_interval(sim, samples, window))

    def deciders(self) -> Sequence["PlacementPolicy"]:
        """The decider sequence the executor runs each interval."""
        return (self,)

    def wants_ibs(self) -> bool:
        """Whether the engine should collect IBS samples for this policy."""
        return self.interval_s is not None


class LinuxPolicy(PlacementPolicy):
    """Default Linux: first-touch placement, THP on or off, no daemon.

    ``thp=False`` reproduces the paper's "Linux" baseline (4KB pages);
    ``thp=True`` reproduces "THP" (2MB pages via transparent huge
    pages, allocation + khugepaged promotion).  ``interleave=True``
    switches allocation to numactl-style round-robin placement — the
    classic manual remedy that trades locality for balance.
    """

    interval_s: Optional[float] = None

    def __init__(self, thp: bool, interleave: bool = False) -> None:
        self.thp = thp
        self.alloc_interleave = interleave
        if interleave:
            self.name = "interleave-thp" if thp else "interleave-4k"
        else:
            self.name = "thp" if thp else "linux-4k"

    def setup(self, sim: "Simulation") -> None:
        if self.thp:
            sim.thp.enable_alloc()
            sim.thp.enable_promotion()
        else:
            sim.thp.disable_alloc()
            sim.thp.disable_promotion()

    def wants_ibs(self) -> bool:
        return False


class PolicyStack(PlacementPolicy):
    """Several policies composed into one: a stack of deciders.

    Members keep their own private state and decide in order each
    interval; the executor applies their decisions with deterministic
    conflict resolution (first decider to act on a page / THP toggle /
    the page tables wins, later deciders' conflicting decisions are
    skipped).  Setup runs in member order, so later members' initial
    state wins where they overlap — compose accordingly.
    """

    def __init__(
        self,
        members: Sequence[PlacementPolicy],
        name: Optional[str] = None,
    ) -> None:
        if not members:
            raise ConfigurationError("a policy stack needs at least one member")
        self.members = tuple(members)
        self.name = name or "+".join(m.name for m in self.members)
        intervals = [
            m.interval_s for m in self.members if m.interval_s is not None
        ]
        self.interval_s = min(intervals) if intervals else None
        self.alloc_interleave = any(m.alloc_interleave for m in self.members)

    def setup(self, sim: "Simulation") -> None:
        for member in self.members:
            member.setup(sim)

    def deciders(self) -> Sequence[PlacementPolicy]:
        out: List[PlacementPolicy] = []
        for member in self.members:
            out.extend(member.deciders())
        return tuple(out)

    def wants_ibs(self) -> bool:
        return any(m.wants_ibs() for m in self.members)
