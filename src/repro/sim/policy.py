"""Placement-policy interface and the baseline Linux policies.

A policy configures the initial THP state and optionally runs as a
periodic daemon (Carrefour's 1-second interval), consuming the IBS
samples and hardware counters gathered since its last invocation and
mutating the address space (migrate / interleave / split / collapse /
toggle THP).  The engine charges the time cost of the actions using
the migration cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.hardware.counters import CounterBank
from repro.hardware.ibs import IbsSamples

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass
class PolicyActionSummary:
    """What a daemon invocation did, for cost accounting and logging."""

    migrated_4k: int = 0
    migrated_2m: int = 0
    bytes_migrated: int = 0
    splits_2m: int = 0
    splits_1g: int = 0
    collapses_2m: int = 0
    replicated_pages: int = 0
    bytes_replicated: int = 0
    #: Daemon compute time (sample processing etc.), seconds.
    compute_s: float = 0.0
    notes: List[str] = field(default_factory=list)

    def merge(self, other: "PolicyActionSummary") -> None:
        """Accumulate another summary into this one."""
        self.migrated_4k += other.migrated_4k
        self.migrated_2m += other.migrated_2m
        self.bytes_migrated += other.bytes_migrated
        self.splits_2m += other.splits_2m
        self.splits_1g += other.splits_1g
        self.collapses_2m += other.collapses_2m
        self.replicated_pages += other.replicated_pages
        self.bytes_replicated += other.bytes_replicated
        self.compute_s += other.compute_s
        self.notes.extend(other.notes)


class PlacementPolicy:
    """Base policy: no daemon, THP fully on or off.

    Subclasses override :meth:`setup` to configure initial state and
    :meth:`on_interval` to act on monitoring data.
    """

    #: Human-readable policy name (used in reports).
    name: str = "base"
    #: Seconds of simulated time between daemon invocations;
    #: ``None`` disables the daemon entirely.
    interval_s: Optional[float] = 1.0
    #: Place new allocations round-robin across nodes (numactl-style
    #: --interleave) instead of first-touch.
    alloc_interleave: bool = False

    def setup(self, sim: "Simulation") -> None:
        """Configure initial THP state and any policy-private state."""

    def on_interval(
        self, sim: "Simulation", samples: IbsSamples, window: CounterBank
    ) -> PolicyActionSummary:
        """One daemon invocation; returns the actions performed."""
        return PolicyActionSummary()

    def wants_ibs(self) -> bool:
        """Whether the engine should collect IBS samples for this policy."""
        return self.interval_s is not None


class LinuxPolicy(PlacementPolicy):
    """Default Linux: first-touch placement, THP on or off, no daemon.

    ``thp=False`` reproduces the paper's "Linux" baseline (4KB pages);
    ``thp=True`` reproduces "THP" (2MB pages via transparent huge
    pages, allocation + khugepaged promotion).  ``interleave=True``
    switches allocation to numactl-style round-robin placement — the
    classic manual remedy that trades locality for balance.
    """

    interval_s: Optional[float] = None

    def __init__(self, thp: bool, interleave: bool = False) -> None:
        self.thp = thp
        self.alloc_interleave = interleave
        if interleave:
            self.name = "interleave-thp" if thp else "interleave-4k"
        else:
            self.name = "thp" if thp else "linux-4k"

    def setup(self, sim: "Simulation") -> None:
        if self.thp:
            sim.thp.enable_alloc()
            sim.thp.enable_promotion()
        else:
            sim.thp.disable_alloc()
            sim.thp.disable_promotion()

    def wants_ibs(self) -> bool:
        return False
