"""Per-phase wall-clock profiling for the simulation engine.

Every simulated result is a sum of per-epoch engine phases, and perf
work on the hot path needs to know where the wall-clock time actually
goes.  When enabled (``REPRO_PROFILE=1`` in the environment, or
``SimConfig.profile``), the engine owns a :class:`PhaseTimer` and calls
:meth:`PhaseTimer.lap` after each phase of ``_run_epoch``; phases are
attributed as:

* ``premap``      — allocation-phase faulting (step 1),
* ``stream_bank`` — stream-bank fetches (generation on a bank miss,
  array handoff on a hit; only nonzero when banking is enabled),
* ``streams``     — inline stream generation (bank disabled),
  translation, demand faulting and traffic binning (fault-epoch TLB
  work is also billed here: the sequential fallback interleaves the
  two),
* ``tlb``         — backing classification + TLB model (no-fault epochs),
* ``tracker``     — ground-truth access-tracker aggregation (the
  profiling metrics PAMUP/NHP/PSP, not simulation state),
* ``ibs``         — IBS sample draws and buffer appends,
* ``pricing``     — controller queueing + interconnect pricing (step 3),
* ``maintenance`` — khugepaged, replica collapses, counter banking,
* ``policy``      — the placement-policy daemon (step 5),
* ``other``       — per-epoch remainder (e.g. invariant checking).

Profiling is **result-neutral**: it never touches simulation state, the
timings live on the engine (not in :class:`SimulationResult`), and
``SimConfig.profile`` sits in ``_CACHE_KEY_EXCLUDE`` — so a profiled
run is bit-identical to an unprofiled one and shares its cache entries,
exactly like ``check_invariants``.

Wall-clock reads are confined to this module and are the reason the
``# lint: ignore[R002]`` suppressions below exist: the timings are
observability output, never simulation input.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

#: Environment variable enabling (``1``) or force-disabling (``0``) the
#: profiler regardless of :attr:`SimConfig.profile`.
PROFILE_ENV = "REPRO_PROFILE"

#: Static-analysis registry (rule R101): everything in this module is
#: observation-only and must have no transitive write effect on
#: simulation state.  The deep linter also protects this module by
#: default, so deleting this declaration does not disable the check.
_RESULT_NEUTRAL = ("sim.profile",)

#: Engine phases in execution order (``other`` holds the remainder).
PHASES = (
    "premap",
    "stream_bank",
    "streams",
    "tlb",
    "tracker",
    "ibs",
    "pricing",
    "maintenance",
    "policy",
    "other",
)

_TRUE_VALUES = frozenset({"1", "true", "on", "yes"})
_FALSE_VALUES = frozenset({"0", "false", "off", "no"})


def profile_enabled(config: Optional[object] = None) -> bool:
    """Whether per-phase profiling is on for a run.

    ``REPRO_PROFILE`` wins in both directions when set; otherwise the
    (optional) config's ``profile`` flag decides.
    """
    import os

    env = os.environ.get(PROFILE_ENV, "").strip().lower()
    if env in _TRUE_VALUES:
        return True
    if env in _FALSE_VALUES:
        return False
    return bool(getattr(config, "profile", False))


class PhaseTimer:
    """Accumulates wall time per engine phase across epochs.

    The engine brackets each epoch with :meth:`epoch_start` /
    :meth:`epoch_end` and calls :meth:`lap` after finishing a phase;
    the lap charges the time since the previous mark to that phase.
    Anything left between the last lap and ``epoch_end`` lands in the
    ``other`` bucket, so the per-phase times always sum to the measured
    epoch total.
    """

    def __init__(self) -> None:
        self.phase_s: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        self.n_epochs = 0
        self._epoch_t0: Optional[float] = None
        self._mark: Optional[float] = None

    @property
    def total_s(self) -> float:
        """Total time bracketed by epoch_start/epoch_end so far."""
        return sum(self.phase_s.values())

    def epoch_start(self) -> None:
        """Mark the beginning of an epoch."""
        now = time.perf_counter()  # lint: ignore[R002]
        self._epoch_t0 = now
        self._mark = now

    def lap(self, phase: str) -> None:
        """Charge the time since the previous mark to ``phase``."""
        if self._mark is None:
            raise ValueError("lap() outside an epoch_start/epoch_end bracket")
        if phase not in self.phase_s:
            raise ValueError(f"unknown phase {phase!r}")
        now = time.perf_counter()  # lint: ignore[R002]
        self.phase_s[phase] += now - self._mark
        self._mark = now

    def epoch_end(self) -> None:
        """Close the epoch, folding the remainder into ``other``."""
        if self._epoch_t0 is None or self._mark is None:
            raise ValueError("epoch_end() without epoch_start()")
        now = time.perf_counter()  # lint: ignore[R002]
        self.phase_s["other"] += now - self._mark
        self.n_epochs += 1
        self._epoch_t0 = None
        self._mark = None

    def summary(self) -> Dict[str, object]:
        """Machine-readable profile (the ``BENCH_engine.json`` shape)."""
        total = self.total_s
        return {
            "n_epochs": self.n_epochs,
            "total_s": round(total, 6),
            "phases_s": {
                phase: round(seconds, 6)
                for phase, seconds in self.phase_s.items()
            },
            "phases_pct": {
                phase: round(100.0 * seconds / total, 1) if total else 0.0
                for phase, seconds in self.phase_s.items()
            },
        }

    def render(self) -> str:
        """Human-readable per-phase table, hottest phase first."""
        total = self.total_s
        rows: List[Tuple[str, float]] = sorted(
            self.phase_s.items(), key=lambda item: (-item[1], item[0])
        )
        lines = [f"{'phase':<12} {'seconds':>10} {'share':>7}"]
        for phase, seconds in rows:
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"{phase:<12} {seconds:>10.3f} {share:>6.1f}%")
        lines.append(f"{'total':<12} {total:>10.3f} {100.0 if total else 0.0:>6.1f}%")
        lines.append(f"({self.n_epochs} epochs)")
        return "\n".join(lines)


def run_profiled(
    workload: str,
    machine: str = "A",
    policy: str = "thp",
    settings: Optional[object] = None,
    backing_1g: bool = False,
) -> Tuple[object, PhaseTimer]:
    """Run one benchmark uncached with profiling on.

    Returns ``(SimulationResult, PhaseTimer)``.  The run bypasses both
    cache layers (timings must reflect real simulation work) and the
    result is bit-identical to what the cached path would produce for
    the same settings.  Imports are deferred so this module stays
    importable from the engine without a ``sim`` -> ``experiments``
    cycle.
    """
    import dataclasses

    from repro.experiments.configs import make_policy
    from repro.experiments.runner import RunSettings
    from repro.hardware.machines import machine_by_name
    from repro.sim.engine import Simulation
    from repro.workloads.registry import get_workload

    if settings is None:
        settings = RunSettings()
    config = dataclasses.replace(settings.config, profile=True)
    topo = machine_by_name(machine) if isinstance(machine, str) else machine
    instance = get_workload(workload).instantiate(topo, config.scale, settings.seed)
    if backing_1g:
        instance = instance.with_1g_backing()
    sim = Simulation(
        topo, instance, make_policy(policy, seed=settings.seed), config=config
    )
    if sim.profiler is None:  # REPRO_PROFILE=0 in the environment
        sim.profiler = PhaseTimer()
    result = sim.run()
    return result, sim.profiler
