"""Simulation results and derived run metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.hardware.counters import CounterBank
from repro.sim.policy import PolicyActionSummary
from repro.sim.tracker import HotPageStats
from repro.vm.layout import PageSize


@dataclass(frozen=True)
class RunMetrics:
    """The paper's reporting metrics for one run.

    Percentages follow the paper's definitions: LAR is the percent of
    DRAM requests serviced by the accessing thread's node; imbalance is
    the standard deviation of per-controller request counts as percent
    of the mean; ``pct_l2_walk`` is the percent of L2 misses caused by
    page-table walks; ``max_fault_pct`` is the maximum per-core share
    of time spent in the page-fault handler.
    """

    runtime_s: float
    lar_pct: float
    imbalance_pct: float
    pct_l2_walk: float
    fault_time_total_s: float
    max_fault_pct: float
    tlb_misses: float
    dram_requests: float
    pamup_pct: Optional[float] = None
    n_hot_pages: Optional[int] = None
    psp_pct: Optional[float] = None
    pages_migrated_4k: int = 0
    pages_migrated_2m: int = 0
    pages_split_2m: int = 0
    pages_split_1g: int = 0
    pages_collapsed_2m: int = 0
    pages_replicated: int = 0
    replicas_collapsed: int = 0
    final_page_counts: Dict[PageSize, int] = field(default_factory=dict)

    def improvement_over(self, baseline: "RunMetrics") -> float:
        """Performance improvement in percent relative to a baseline run.

        Positive means faster than the baseline (the paper's Figures
        1-5 plot exactly this, with Linux-4KB as the baseline).
        """
        if self.runtime_s <= 0:
            raise SimulationError("runtime must be positive")
        return (baseline.runtime_s / self.runtime_s - 1.0) * 100.0


@dataclass
class SimulationResult:
    """Everything produced by one :class:`repro.sim.engine.Simulation` run."""

    workload: str
    machine: str
    policy: str
    runtime_s: float
    epoch_times_s: List[float]
    bank: CounterBank
    hot_stats: Optional[HotPageStats]
    action_log: List[Tuple[float, PolicyActionSummary]]
    final_page_counts: Dict[PageSize, int]

    def metrics(self) -> RunMetrics:
        """Aggregate the run into the paper's reporting metrics."""
        migrated_4k = sum(s.migrated_4k for _, s in self.action_log)
        migrated_2m = sum(s.migrated_2m for _, s in self.action_log)
        splits_2m = sum(s.splits_2m for _, s in self.action_log)
        splits_1g = sum(s.splits_1g for _, s in self.action_log)
        collapses = sum(s.collapses_2m for _, s in self.action_log)
        replicated = sum(s.replicated_pages for _, s in self.action_log)
        return RunMetrics(
            runtime_s=self.runtime_s,
            lar_pct=self.bank.lar(),
            imbalance_pct=self.bank.imbalance(),
            pct_l2_walk=self.bank.pct_l2_misses_from_walks(),
            fault_time_total_s=self.bank.total_fault_time_s(),
            max_fault_pct=self.bank.max_fault_time_fraction(),
            tlb_misses=self.bank.total("tlb_misses"),
            dram_requests=self.bank.total("l2_data_misses"),
            pamup_pct=self.hot_stats.pamup_pct if self.hot_stats else None,
            n_hot_pages=self.hot_stats.n_hot_pages if self.hot_stats else None,
            psp_pct=self.hot_stats.psp_pct if self.hot_stats else None,
            pages_migrated_4k=migrated_4k,
            pages_migrated_2m=migrated_2m,
            pages_split_2m=splits_2m,
            pages_split_1g=splits_1g,
            pages_collapsed_2m=collapses,
            pages_replicated=replicated,
            replicas_collapsed=int(self.bank.total("replicas_collapsed")),
            final_page_counts=dict(self.final_page_counts),
        )

    def improvement_over(self, baseline: "SimulationResult") -> float:
        """Percent performance improvement relative to a baseline run."""
        return self.metrics().improvement_over(baseline.metrics())

    def steady_bank(self, skip_fraction: float = 0.3) -> CounterBank:
        """Counters restricted to the run's steady state.

        Skips the first ``skip_fraction`` of epochs so warm-up (the
        allocation storm and the daemon's convergence) does not dilute
        the NUMA metrics.  The paper's runs are long relative to the
        one-second daemon interval, so its whole-run profiles are
        effectively steady-state; short simulated runs need the
        explicit cut.
        """
        if not 0.0 <= skip_fraction < 1.0:
            raise SimulationError("skip_fraction must be in [0, 1)")
        n = len(self.bank.epochs)
        start = int(n * skip_fraction)
        return self.bank.window(start)

    def steady_lar(self, skip_fraction: float = 0.3) -> float:
        """Steady-state local access ratio, percent."""
        return self.steady_bank(skip_fraction).lar()

    def steady_imbalance(self, skip_fraction: float = 0.3) -> float:
        """Steady-state controller imbalance, percent of mean."""
        return self.steady_bank(skip_fraction).imbalance()

    def describe(self) -> str:
        """One-line summary for logs."""
        m = self.metrics()
        return (
            f"{self.workload}@{self.machine}/{self.policy}: "
            f"{m.runtime_s:.2f}s LAR={m.lar_pct:.0f}% "
            f"imb={m.imbalance_pct:.0f}% walkL2={m.pct_l2_walk:.1f}%"
        )
