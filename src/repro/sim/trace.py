"""JSONL decision tracing for the policy layer.

Every daemon interval the :class:`~repro.sim.engine.ActionExecutor`
applies typed decisions against the address space; when tracing is
enabled (``REPRO_TRACE=1`` in the environment, or ``SimConfig.trace``),
the engine owns a :class:`DecisionTrace` and the executor records every
decision together with its outcome — what was decided, by which
decider, at what simulated time, and what actually happened (applied /
skipped / bytes moved).  ``repro trace`` runs one benchmark with the
trace on and ``REPRO_TRACE_FILE`` appends the records as JSON lines.

Tracing is **result-neutral**: it never touches simulation state, the
records live on the engine (not in ``SimulationResult``), and
``SimConfig.trace`` sits in ``_CACHE_KEY_EXCLUDE`` — so a traced run is
bit-identical to an untraced one and shares its cache entries, exactly
like ``profile`` and ``check_invariants``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

#: Environment variable enabling (``1``) or force-disabling (``0``) the
#: trace regardless of :attr:`SimConfig.trace`.
TRACE_ENV = "REPRO_TRACE"

#: When set, :meth:`DecisionTrace.flush_env` appends the records here
#: as JSON lines at the end of each traced run.
TRACE_FILE_ENV = "REPRO_TRACE_FILE"

#: Static-analysis registry (rule R101): tracing is observation-only
#: and must have no transitive write effect on simulation state.
_RESULT_NEUTRAL = ("sim.trace",)

_TRUE_VALUES = frozenset({"1", "true", "on", "yes"})
_FALSE_VALUES = frozenset({"0", "false", "off", "no"})


def trace_enabled(config: Optional[object] = None) -> bool:
    """Whether decision tracing is on for a run.

    ``REPRO_TRACE`` wins in both directions when set; otherwise the
    (optional) config's ``trace`` flag decides.
    """
    import os

    env = os.environ.get(TRACE_ENV, "").strip().lower()
    if env in _TRUE_VALUES:
        return True
    if env in _FALSE_VALUES:
        return False
    return bool(getattr(config, "trace", False))


class DecisionTrace:
    """Accumulates one run's decision records.

    Each record is a flat JSON-able dict: simulated time, epoch, the
    decider that yielded the decision, the decision payload, and the
    executor's outcome.
    """

    def __init__(self, context: Optional[Dict[str, object]] = None) -> None:
        #: Run identification (workload/machine/policy/seed), written as
        #: a header line ahead of the records.
        self.context: Dict[str, object] = dict(context or {})
        self.records: List[Dict[str, object]] = []

    def record(
        self, time_s: float, epoch: int, source: str, decision, outcome
    ) -> None:
        """Append one decision + outcome record."""
        self.records.append(
            {
                "t": time_s,
                "epoch": epoch,
                "source": source,
                "decision": decision.payload(),
                "applied": outcome.applied,
                "bytes": outcome.bytes_moved,
                "count": outcome.count,
                "reason": outcome.reason,
            }
        )

    def counts(self) -> Dict[str, int]:
        """Number of recorded decisions per decision kind."""
        out: Dict[str, int] = {}
        for rec in self.records:
            kind = rec["decision"]["kind"]  # type: ignore[index]
            out[kind] = out.get(kind, 0) + 1
        return out

    def render(self) -> str:
        """Human-readable per-kind tally."""
        counts = self.counts()
        applied = sum(1 for rec in self.records if rec["applied"])
        lines = [
            f"{len(self.records)} decisions recorded "
            f"({applied} applied, {len(self.records) - applied} skipped)"
        ]
        for kind in sorted(counts):
            lines.append(f"  {kind:<20} {counts[kind]}")
        return "\n".join(lines)

    def write_jsonl(self, path, append: bool = False) -> None:
        """Write a header line plus one JSON line per record."""
        mode = "a" if append else "w"
        with open(path, mode, encoding="utf-8") as fh:
            fh.write(json.dumps({"trace": self.context}) + "\n")
            for rec in self.records:
                fh.write(json.dumps(rec) + "\n")

    def flush_env(self) -> None:
        """Append the records to ``REPRO_TRACE_FILE`` when it is set."""
        import os

        path = os.environ.get(TRACE_FILE_ENV, "").strip()
        if not path:
            return
        self.write_jsonl(path, append=True)


def run_traced(
    workload: str,
    machine: str = "A",
    policy: str = "thp",
    settings: Optional[object] = None,
    backing_1g: bool = False,
) -> Tuple[object, DecisionTrace]:
    """Run one benchmark uncached with decision tracing on.

    Returns ``(SimulationResult, DecisionTrace)``.  The run bypasses
    both cache layers (the point is to watch the decisions being made)
    and the result is bit-identical to what the cached path would
    produce for the same settings.  Imports are deferred so this module
    stays importable from the engine without a ``sim`` ->
    ``experiments`` cycle.
    """
    import dataclasses

    from repro.experiments.configs import make_policy
    from repro.experiments.runner import RunSettings
    from repro.hardware.machines import machine_by_name
    from repro.sim.engine import Simulation
    from repro.workloads.registry import get_workload

    if settings is None:
        settings = RunSettings()
    config = dataclasses.replace(settings.config, trace=True)
    topo = machine_by_name(machine) if isinstance(machine, str) else machine
    instance = get_workload(workload).instantiate(topo, config.scale, settings.seed)
    if backing_1g:
        instance = instance.with_1g_backing()
    sim = Simulation(
        topo, instance, make_policy(policy, seed=settings.seed), config=config
    )
    if sim.tracer is None:  # REPRO_TRACE=0 in the environment
        sim.tracer = DecisionTrace(
            {
                "workload": instance.name,
                "machine": topo.name,
                "policy": sim.policy.name,
                "seed": settings.seed,
            }
        )
    result = sim.run()
    return result, sim.tracer
