"""Ground-truth access statistics for profiling metrics.

The paper's Table 2 reports PAMUP (percent of accesses to the most
used page), NHP (number of hot pages, >6% of accesses), and PSP
(percent of accesses to pages shared by at least two threads).  These
are *profiling* quantities measured with full visibility; the policies
themselves only ever see IBS samples.

The tracker keeps, per 4KB granule: cumulative (represented) access
weight, the first accessing thread, and a shared flag; the same
first/shared pair is kept per 2MB and per 1GB chunk so sharedness can
be evaluated at whatever granularity a page is currently backed with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import Pages4K, Pages4KArray, ThreadId
from repro.vm.address_space import AddressSpace
from repro.vm.layout import GRANULES_PER_2M, SHIFT_1G, SHIFT_2M


@dataclass(frozen=True)
class HotPageStats:
    """PAMUP / NHP / PSP triple plus the backing breakdown."""

    pamup_pct: float
    n_hot_pages: int
    psp_pct: float
    total_weight: float

    def __str__(self) -> str:
        return (
            f"PAMUP={self.pamup_pct:.1f}% NHP={self.n_hot_pages} "
            f"PSP={self.psp_pct:.1f}%"
        )


class AccessTracker:
    """Accumulates per-granule access weight and sharing information."""

    def __init__(self, n_granules: Pages4K) -> None:
        if n_granules <= 0:
            raise ConfigurationError("n_granules must be positive")
        self.n_granules = n_granules
        n_chunks = -(-n_granules // GRANULES_PER_2M)
        n_gchunks = -(-n_granules // (1 << SHIFT_1G))
        self.weight = np.zeros(n_granules, dtype=np.float64)
        self._first_4k = np.full(n_granules, -1, dtype=np.int16)
        self._shared_4k = np.zeros(n_granules, dtype=bool)
        self._first_2m = np.full(n_chunks, -1, dtype=np.int16)
        self._shared_2m = np.zeros(n_chunks, dtype=bool)
        self._first_1g = np.full(n_gchunks, -1, dtype=np.int16)
        self._shared_1g = np.zeros(n_gchunks, dtype=bool)

    def update(
        self, thread: ThreadId, granules: Pages4KArray, weight_per_access: float
    ) -> None:
        """Record one thread-epoch access stream."""
        g = np.asarray(granules, dtype=np.int64)
        if g.size == 0:
            return
        unique, counts = np.unique(g, return_counts=True)
        self.weight[unique] += counts * weight_per_access
        self._mark(self._first_4k, self._shared_4k, unique, thread)
        self._mark(self._first_2m, self._shared_2m, np.unique(unique >> SHIFT_2M), thread)
        self._mark(self._first_1g, self._shared_1g, np.unique(unique >> SHIFT_1G), thread)

    def add_weights(
        self, unique: np.ndarray, counts: np.ndarray, weight_per_access: float
    ) -> None:
        """Accumulate access weight from pre-aggregated stream columns.

        ``unique``/``counts`` are the ``np.unique(granules,
        return_counts=True)`` of one thread-epoch stream.  The
        stream-bank path uses this (plus :meth:`merge_epoch_sharing`)
        so the per-stream aggregation is computed once per shared bank
        rather than once per run; bit-identical to :meth:`update` on
        the same stream because the per-thread accumulation order is
        preserved.
        """
        if unique.size == 0:
            return
        self.weight[unique] += counts * weight_per_access

    def add_epoch(self, ids: np.ndarray, scaled_counts: np.ndarray) -> None:
        """Accumulate one whole epoch's access weight in a single call.

        ``ids``/``scaled_counts`` are the fused tracker columns of
        :meth:`~repro.workloads.streambank.StreamBank.epoch_tracker`:
        every thread's ``np.unique`` ids concatenated in ascending
        thread order, with each thread's ``weight_per_access`` already
        multiplied into its counts.  ``np.add.at`` is unbuffered and
        applies additions in element order — ascending thread order,
        with distinct ids inside each thread's segment — so the
        floating-point accumulation sequence per granule is exactly
        that of the per-thread :meth:`update`/:meth:`add_weights`
        loop, bit for bit.
        """
        if ids.size == 0:
            return
        np.add.at(self.weight, ids, scaled_counts)

    def merge_epoch_sharing(self, packed) -> None:
        """Fold one epoch's sharing information in, all threads at once.

        ``packed`` is ``(ids, epoch_first, multi, level_offsets)`` —
        the three page levels' sharing summaries concatenated, as
        built by
        :meth:`~repro.workloads.streambank.StreamBank.sharing_packed`:
        per level, the sorted distinct ids touched by any thread this
        epoch, the lowest thread id touching each, and whether two or
        more distinct threads touched it.  Produces exactly the
        ``first``/``shared`` state that calling :meth:`update` per
        thread in ascending thread order would: a previously untouched
        id records the epoch's first toucher (and is shared iff
        several threads hit it this epoch); a known id becomes shared
        when the epoch brings any different thread.
        """
        ids, epoch_first, multi, level_offsets = packed
        for level, (first, shared) in enumerate(
            (
                (self._first_4k, self._shared_4k),
                (self._first_2m, self._shared_2m),
                (self._first_1g, self._shared_1g),
            )
        ):
            lo = int(level_offsets[level])
            hi = int(level_offsets[level + 1])
            if hi <= lo:
                continue
            l_ids = ids[lo:hi]
            l_first = epoch_first[lo:hi]
            l_multi = multi[lo:hi]
            current = first[l_ids]
            fresh = current < 0
            first[l_ids[fresh]] = l_first[fresh]
            shared[l_ids[l_multi | (~fresh & (current != l_first))]] = True

    @staticmethod
    def _mark(first: np.ndarray, shared: np.ndarray, ids: np.ndarray, thread: int) -> None:
        current = first[ids]
        fresh = current < 0
        first[ids[fresh]] = thread
        shared[ids[(~fresh) & (current != thread)]] = True

    # ------------------------------------------------------------------
    # Metrics against a backing state
    # ------------------------------------------------------------------
    def _chunk_weights(self) -> np.ndarray:
        pad = (-self.n_granules) % GRANULES_PER_2M
        w = self.weight
        if pad:
            w = np.concatenate([w, np.zeros(pad)])
        return w.reshape(-1, GRANULES_PER_2M).sum(axis=1)

    def hot_page_stats(
        self, address_space: AddressSpace, hot_threshold_pct: float = 6.0
    ) -> HotPageStats:
        """PAMUP / NHP / PSP evaluated at the *current* backing sizes."""
        total = float(self.weight.sum())
        if total <= 0:
            return HotPageStats(0.0, 0, 0.0, 0.0)
        chunk_w = self._chunk_weights()
        n_chunks = chunk_w.size

        # Split weights by current backing level.
        huge = address_space.huge[:n_chunks]
        c1_of_c2 = np.arange(n_chunks) >> (SHIFT_1G - SHIFT_2M)
        giga_of_chunk = address_space.giga[c1_of_c2]
        chunk_is_huge = huge & ~giga_of_chunk

        # Per-page maxima and hot counts at each level.
        g_of_granule = np.arange(self.n_granules) >> SHIFT_2M
        granule_level = (
            ~address_space.huge[g_of_granule]
            & ~address_space.giga[np.arange(self.n_granules) >> SHIFT_1G]
        )
        w4 = self.weight[granule_level]
        w2 = chunk_w[chunk_is_huge]
        pad1 = (-chunk_w.size) % (1 << (SHIFT_1G - SHIFT_2M))
        cw = np.concatenate([chunk_w, np.zeros(pad1)]) if pad1 else chunk_w
        gchunk_w = cw.reshape(-1, 1 << (SHIFT_1G - SHIFT_2M)).sum(axis=1)
        w1 = gchunk_w[address_space.giga[: gchunk_w.size]]

        page_max = 0.0
        hot = 0
        threshold = total * hot_threshold_pct / 100.0
        for w in (w4, w2, w1):
            if w.size:
                page_max = max(page_max, float(w.max()))
                hot += int(np.count_nonzero(w > threshold))

        # PSP: accesses to pages shared by >= 2 threads, at backing size.
        shared_weight = 0.0
        if np.any(granule_level):
            shared_weight += float(
                self.weight[granule_level & self._shared_4k].sum()
            )
        if np.any(chunk_is_huge):
            shared_weight += float(
                chunk_w[chunk_is_huge & self._shared_2m[:n_chunks]].sum()
            )
        giga_mask = address_space.giga[: gchunk_w.size]
        if np.any(giga_mask):
            shared_weight += float(
                gchunk_w[giga_mask & self._shared_1g[: gchunk_w.size]].sum()
            )

        return HotPageStats(
            pamup_pct=100.0 * page_max / total,
            n_hot_pages=hot,
            psp_pct=100.0 * shared_weight / total,
            total_weight=total,
        )
