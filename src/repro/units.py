"""Units-of-measure annotation vocabulary.

Quantities crossing the vm/hardware/core layer boundaries are
dimensioned: byte counts, 4KB granule counts (the package's base
addressing unit), 2MB/1GB chunk counts, NUMA node ids, thread ids and
IBS sample counts.  Two shipped bugs (the ``alloc_small`` carve-pin
leak, the ``PageSampleTable`` thread-pair multiplier overflow) were
unit confusions, so the static analyzer (:mod:`repro.analysis.units`,
rules R102/R103) checks these dimensions mechanically.

Annotate signatures with the aliases below (or the underlying
``Annotated[int, "<unit>"]`` spelling, which the analyzer reads
directly from the AST)::

    from repro.units import Bytes, Pages4K

    def mapped_bytes(self) -> Bytes: ...
    def alloc_small(self, n: Pages4K) -> None: ...

The aliases are plain :data:`typing.Annotated` types: they cost nothing
at runtime and type checkers treat them as their base type.  Array
aliases (``NodeArray`` etc.) dimension numpy arrays whose *elements*
carry the unit.
"""

from __future__ import annotations

from typing import Annotated, Any

#: Canonical unit names understood by the analyzer.
UNIT_BYTES = "bytes"
UNIT_PAGES_4K = "pages4k"
UNIT_PAGES_2M = "pages2m"
UNIT_PAGES_1G = "pages1g"
UNIT_NODE = "node"
UNIT_TID = "tid"
UNIT_SAMPLES = "samples"

#: All canonical unit names.
ALL_UNITS = (
    UNIT_BYTES,
    UNIT_PAGES_4K,
    UNIT_PAGES_2M,
    UNIT_PAGES_1G,
    UNIT_NODE,
    UNIT_TID,
    UNIT_SAMPLES,
)

# Scalar aliases -------------------------------------------------------
Bytes = Annotated[int, UNIT_BYTES]
Pages4K = Annotated[int, UNIT_PAGES_4K]
Pages2M = Annotated[int, UNIT_PAGES_2M]
Pages1G = Annotated[int, UNIT_PAGES_1G]
NodeId = Annotated[int, UNIT_NODE]
ThreadId = Annotated[int, UNIT_TID]
Samples = Annotated[int, UNIT_SAMPLES]

# Array aliases (numpy arrays whose elements carry the unit) -----------
BytesArray = Annotated[Any, UNIT_BYTES]
Pages4KArray = Annotated[Any, UNIT_PAGES_4K]
NodeArray = Annotated[Any, UNIT_NODE]
ThreadArray = Annotated[Any, UNIT_TID]
SamplesArray = Annotated[Any, UNIT_SAMPLES]

#: Alias name -> canonical unit, for the AST-level analyzer (which sees
#: annotation *names*, not resolved types).
ALIAS_UNITS = {
    "Bytes": UNIT_BYTES,
    "Pages4K": UNIT_PAGES_4K,
    "Pages2M": UNIT_PAGES_2M,
    "Pages1G": UNIT_PAGES_1G,
    "NodeId": UNIT_NODE,
    "ThreadId": UNIT_TID,
    "Samples": UNIT_SAMPLES,
    "BytesArray": UNIT_BYTES,
    "Pages4KArray": UNIT_PAGES_4K,
    "NodeArray": UNIT_NODE,
    "ThreadArray": UNIT_TID,
    "SamplesArray": UNIT_SAMPLES,
}
