"""Simulated operating-system virtual-memory subsystem.

This package is the substrate that the paper's kernel changes live in:
a per-node buddy frame allocator, multi-size address spaces (4KB / 2MB /
1GB pages), transparent huge pages (allocation-time backing plus a
khugepaged-style promotion scanner), page-fault cost accounting,
page migration and large-page splitting.
"""

from repro.vm.layout import (
    PAGE_4K,
    PAGE_2M,
    PAGE_1G,
    GRANULES_PER_2M,
    GRANULES_PER_1G,
    PageSize,
)
from repro.vm.frame_allocator import BuddyAllocator, NodeMemory, PhysicalMemory
from repro.vm.address_space import AddressSpace, FaultStats
from repro.vm.page_table import PageTableModel
from repro.vm.thp import ThpState, khugepaged_scan
from repro.vm.page_fault import PageFaultModel
from repro.vm.migration import MigrationCostModel

__all__ = [
    "PAGE_4K",
    "PAGE_2M",
    "PAGE_1G",
    "GRANULES_PER_2M",
    "GRANULES_PER_1G",
    "PageSize",
    "BuddyAllocator",
    "NodeMemory",
    "PhysicalMemory",
    "AddressSpace",
    "FaultStats",
    "PageTableModel",
    "ThpState",
    "khugepaged_scan",
    "PageFaultModel",
    "MigrationCostModel",
]
