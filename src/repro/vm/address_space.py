"""Multi-size virtual address space with NUMA-aware physical backing.

The address space is the central mutable state of the simulation.  It
maps 4KB granules of virtual memory to NUMA nodes at one of three
backing granularities (4KB, 2MB, 1GB) and exposes exactly the
operations the paper's algorithms actuate:

* demand faulting with first-touch placement (optionally THP-backed),
* huge-page **splitting** (2MB -> 4KB, 1GB -> 4KB),
* huge-page **promotion** (collapse of 512 mapped 4KB pages into 2MB),
* page **migration** at any backing granularity.

Representation: flat numpy arrays indexed by granule / 2MB-chunk / 1GB-
chunk, so translation of whole access streams is vectorised.  Physical
capacity is accounted against :class:`repro.vm.frame_allocator.PhysicalMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import AllocationError, MappingError
from repro.vm.frame_allocator import PhysicalMemory
from repro.units import (
    Bytes,
    BytesArray,
    NodeArray,
    NodeId,
    Pages4K,
    Pages4KArray,
)
from repro.vm.layout import (
    CHUNKS_2M_PER_1G,
    GRANULES_PER_1G,
    GRANULES_PER_2M,
    PAGE_4K,
    PageSize,
    SHIFT_1G,
    SHIFT_2M,
)

#: Backing-id encoding offsets (granule counts stay far below 2**36).
BACKING_ID_2M_OFFSET = 1 << 40
BACKING_ID_1G_OFFSET = 1 << 41


@dataclass
class FaultStats:
    """Page-fault counts produced by one fault or premap operation."""

    faults_4k: int = 0
    faults_2m: int = 0
    faults_1g: int = 0

    def merge(self, other: "FaultStats") -> None:
        """Accumulate another operation's counts into this one."""
        self.faults_4k += other.faults_4k
        self.faults_2m += other.faults_2m
        self.faults_1g += other.faults_1g

    @property
    def total(self) -> int:
        """Total number of faults of any size."""
        return self.faults_4k + self.faults_2m + self.faults_1g


class AddressSpace:
    """One process's virtual address space over simulated physical memory."""

    def __init__(
        self, n_granules: Pages4K, phys: PhysicalMemory, label: str = "anon"
    ) -> None:
        if n_granules <= 0:
            raise MappingError("address space must cover at least one granule")
        self.label = label
        self.n_granules: Pages4K = int(n_granules)
        self.n_chunks_2m = -(-self.n_granules // GRANULES_PER_2M)
        self.n_chunks_1g = -(-self.n_granules // GRANULES_PER_1G)
        self.phys = phys
        self.n_nodes = len(phys)

        # Per-granule node when 4KB-mapped; -1 when unmapped or covered
        # by a larger backing page.
        self.node4k = np.full(self.n_granules, -1, dtype=np.int8)
        # 2MB chunks.
        self.huge = np.zeros(self.n_chunks_2m, dtype=bool)
        self.node2m = np.full(self.n_chunks_2m, -1, dtype=np.int8)
        self._block2m = np.full(self.n_chunks_2m, -1, dtype=np.int64)
        # Chunks madvised MADV_NOHUGEPAGE: khugepaged must not
        # re-collapse them (set by policies after deliberate splits).
        self.collapse_blocked = np.zeros(self.n_chunks_2m, dtype=bool)
        # Replication (Carrefour's third mechanism): a replicated page
        # has a copy on every node, so reads are always local; the
        # first write collapses the replicas.
        self.replicated_4k = np.zeros(self.n_granules, dtype=bool)
        self.replicated_2m = np.zeros(self.n_chunks_2m, dtype=bool)
        self._replica_blocks: Dict[int, Dict[int, int]] = {}
        self.replica_bytes: Bytes = 0
        # Count of 4KB-mapped granules per 2MB chunk (promotion check).
        self.mapped_count_2m = np.zeros(self.n_chunks_2m, dtype=np.int32)
        # 1GB chunks.
        self.giga = np.zeros(self.n_chunks_1g, dtype=bool)
        self.node1g = np.full(self.n_chunks_1g, -1, dtype=np.int8)
        self._block1g = np.full(self.n_chunks_1g, -1, dtype=np.int64)
        # Cumulative bytes unmapped by reclaim/teardown.  Mapped
        # footprint alone is no longer monotonic once memory pressure
        # can evict pages; ``mapped_bytes() + reclaimed_bytes`` is, and
        # the invariant checker tracks exactly that sum.
        self.reclaimed_bytes: Bytes = 0
        # Monotonic mutation counter: bumped by every operation that can
        # change translation or backing composition (map, fault, split,
        # collapse, migrate, replicate).  Consumers (the engine's
        # backing-fraction/TLB caches, the resolved home map below) key
        # their caches on it so quiescent epochs skip rescanning the
        # ``huge``/``giga`` bitmaps.
        self._version = 0
        # Resolved per-granule home map, built lazily once the space is
        # observed quiescent (two translations at the same version), so
        # churn phases never pay the O(n_granules) build.
        self._home_map: Optional[np.ndarray] = None
        self._home_map_version = -1
        self._translated_version = -1

    @property
    def version(self) -> int:
        """Monotonic counter of backing-state mutations.

        Any operation that can change what :meth:`home_nodes`,
        :meth:`backing_info` or a backing-composition scan would return
        increments it; pure reads never do.
        """
        return self._version

    def _bump_version(self) -> None:
        self._version += 1

    # ------------------------------------------------------------------
    # Translation (vectorised)
    # ------------------------------------------------------------------
    def _resolved_home_map(self) -> Optional[np.ndarray]:
        """Per-granule resolved home nodes, or None while churning.

        The map is only built on the second translation request at an
        unchanged :attr:`version`: one bulk expansion of the 2MB/1GB
        node arrays then serves every later translation at this version
        with a single gather.
        """
        v = self._version
        if self._home_map is not None and self._home_map_version == v:
            return self._home_map
        if self._translated_version != v:
            self._translated_version = v
            return None
        home_map = self.node4k.copy()
        if np.any(self.huge):
            nodes2 = np.repeat(self.node2m, GRANULES_PER_2M)[: self.n_granules]
            mask2 = np.repeat(self.huge, GRANULES_PER_2M)[: self.n_granules]
            np.copyto(home_map, nodes2, where=mask2)
        if np.any(self.giga):
            nodes1 = np.repeat(self.node1g, GRANULES_PER_1G)[: self.n_granules]
            mask1 = np.repeat(self.giga, GRANULES_PER_1G)[: self.n_granules]
            np.copyto(home_map, nodes1, where=mask1)
        self._home_map = home_map
        self._home_map_version = v
        return home_map

    def home_nodes(self, granules: Pages4KArray) -> NodeArray:
        """Home node per accessed granule; -1 where unmapped."""
        g = np.asarray(granules, dtype=np.int64)
        home_map = self._resolved_home_map()
        if home_map is not None:
            return home_map[g]
        c2 = g >> SHIFT_2M
        c1 = g >> SHIFT_1G
        giga_mask = self.giga[c1]
        huge_mask = self.huge[c2]
        nodes = self.node4k[g].astype(np.int8, copy=True)
        np.copyto(nodes, self.node2m[c2], where=huge_mask)
        np.copyto(nodes, self.node1g[c1], where=giga_mask)
        return nodes

    def backing_info(self, granules: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-access backing-page id and page-size class.

        Ids are unique across size classes: granule index for 4KB pages,
        chunk index offset by :data:`BACKING_ID_2M_OFFSET` for 2MB, and
        by :data:`BACKING_ID_1G_OFFSET` for 1GB.
        """
        g = np.asarray(granules, dtype=np.int64)
        c2 = g >> SHIFT_2M
        c1 = g >> SHIFT_1G
        giga_mask = self.giga[c1]
        huge_mask = self.huge[c2] & ~giga_mask
        ids = g.copy()
        np.copyto(ids, c2 + BACKING_ID_2M_OFFSET, where=huge_mask)
        np.copyto(ids, c1 + BACKING_ID_1G_OFFSET, where=giga_mask)
        sizes = np.full(g.shape, int(PageSize.SIZE_4K), dtype=np.int64)
        sizes[huge_mask] = int(PageSize.SIZE_2M)
        sizes[giga_mask] = int(PageSize.SIZE_1G)
        return ids, sizes

    @staticmethod
    def backing_id_kind(backing_id: int) -> PageSize:
        """Page-size class encoded in a backing id."""
        if backing_id >= BACKING_ID_1G_OFFSET:
            return PageSize.SIZE_1G
        if backing_id >= BACKING_ID_2M_OFFSET:
            return PageSize.SIZE_2M
        return PageSize.SIZE_4K

    def granules_of_backing(self, backing_id: int) -> np.ndarray:
        """All granule indices covered by a backing page."""
        kind = self.backing_id_kind(backing_id)
        if kind is PageSize.SIZE_4K:
            return np.array([backing_id], dtype=np.int64)
        if kind is PageSize.SIZE_2M:
            chunk = backing_id - BACKING_ID_2M_OFFSET
            start = chunk << SHIFT_2M
            return np.arange(start, min(start + GRANULES_PER_2M, self.n_granules))
        chunk = backing_id - BACKING_ID_1G_OFFSET
        start = chunk << SHIFT_1G
        return np.arange(start, min(start + GRANULES_PER_1G, self.n_granules))

    def home_nodes_for(self, granules: Pages4KArray, local_node: NodeId) -> NodeArray:
        """Home node per access for a thread on ``local_node``.

        Identical to :meth:`home_nodes` except that *reads of
        replicated pages* are serviced from the local replica.
        """
        nodes = self.home_nodes(granules)
        g = np.asarray(granules, dtype=np.int64)
        replicated = self.replication_mask(g)
        if np.any(replicated):
            nodes = nodes.copy()
            nodes[replicated] = local_node
        return nodes

    def replication_mask(self, granules: np.ndarray) -> np.ndarray:
        """Whether each accessed granule lies in a replicated page."""
        g = np.asarray(granules, dtype=np.int64)
        c2 = g >> SHIFT_2M
        return self.replicated_4k[g] | (self.huge[c2] & self.replicated_2m[c2])

    def replicate_backing(self, backing_id: int) -> Bytes:
        """Replicate a page onto every other node; returns bytes copied.

        Returns 0 (no change) when the page is already replicated, is a
        1GB page (not supported, as in Carrefour), or some node cannot
        hold a replica.
        """
        kind = self.backing_id_kind(backing_id)
        if kind is PageSize.SIZE_1G:
            return 0
        if not self.backing_is_live(backing_id):
            raise MappingError(f"backing id {backing_id} is not live")
        others = [n for n in range(self.n_nodes)]
        if kind is PageSize.SIZE_4K:
            granule = backing_id
            if self.replicated_4k[granule]:
                return 0
            home = int(self.node4k[granule])
            targets = [n for n in others if n != home]
            if any(self.phys[n].free_bytes < PAGE_4K for n in targets):
                return 0
            for n in targets:
                self.phys[n].alloc_small(1)
            self.replicated_4k[granule] = True
            bytes_copied = PAGE_4K * len(targets)
            self.replica_bytes += bytes_copied
            self._bump_version()
            return bytes_copied
        chunk = backing_id - BACKING_ID_2M_OFFSET
        if self.replicated_2m[chunk]:
            return 0
        home = int(self.node2m[chunk])
        targets = [n for n in others if n != home]
        if any(not self.phys[n].can_alloc_huge() for n in targets):
            return 0
        blocks = {n: self.phys[n].alloc_huge() for n in targets}
        self.replicated_2m[chunk] = True
        self._replica_blocks[backing_id] = blocks
        bytes_copied = int(PageSize.SIZE_2M) * len(targets)
        self.replica_bytes += bytes_copied
        self._bump_version()
        return bytes_copied

    def unreplicate_backing(self, backing_id: int) -> Bytes:
        """Collapse a page's replicas (e.g. on write); returns bytes freed."""
        kind = self.backing_id_kind(backing_id)
        if kind is PageSize.SIZE_4K:
            granule = backing_id
            if not self.replicated_4k[granule]:
                return 0
            home = int(self.node4k[granule])
            freed = 0
            for n in range(self.n_nodes):
                if n != home:
                    self.phys[n].free_small(1)
                    freed += PAGE_4K
            self.replicated_4k[granule] = False
            self.replica_bytes -= freed
            self._bump_version()
            return freed
        if kind is PageSize.SIZE_2M:
            chunk = backing_id - BACKING_ID_2M_OFFSET
            if not self.replicated_2m[chunk]:
                return 0
            blocks = self._replica_blocks.pop(backing_id)
            freed = 0
            for node, block in sorted(blocks.items()):
                self.phys[node].free_huge(block)
                freed += int(PageSize.SIZE_2M)
            self.replicated_2m[chunk] = False
            self.replica_bytes -= freed
            self._bump_version()
            return freed
        return 0

    def backing_is_live(self, backing_id: int) -> bool:
        """Whether a backing id still names an existing page.

        Ids captured in a sample table go stale when the page is split
        or collapsed afterwards; policies must re-check before acting.
        """
        kind = self.backing_id_kind(backing_id)
        if kind is PageSize.SIZE_4K:
            return 0 <= backing_id < self.n_granules and self.node4k[backing_id] >= 0
        if kind is PageSize.SIZE_2M:
            chunk = backing_id - BACKING_ID_2M_OFFSET
            return 0 <= chunk < self.n_chunks_2m and bool(self.huge[chunk])
        gchunk = backing_id - BACKING_ID_1G_OFFSET
        return 0 <= gchunk < self.n_chunks_1g and bool(self.giga[gchunk])

    def node_of_backing(self, backing_id: int) -> NodeId:
        """Home node of a backing page (-1 if unmapped)."""
        kind = self.backing_id_kind(backing_id)
        if kind is PageSize.SIZE_4K:
            return int(self.node4k[backing_id])
        if kind is PageSize.SIZE_2M:
            return int(self.node2m[backing_id - BACKING_ID_2M_OFFSET])
        return int(self.node1g[backing_id - BACKING_ID_1G_OFFSET])

    # ------------------------------------------------------------------
    # Faulting and explicit mapping
    # ------------------------------------------------------------------
    def _alloc_node_for(self, preferred: NodeId, huge: bool) -> NodeId:
        """Pick the node to allocate on, falling back when full."""
        node_mem = self.phys[preferred]
        if huge:
            if node_mem.can_alloc_huge():
                return preferred
        elif node_mem.free_bytes >= PAGE_4K:
            return preferred
        return self.phys.node_with_most_free()

    def fault_in(
        self, granules: Pages4KArray, node: NodeId, thp_alloc: bool
    ) -> FaultStats:
        """Demand-fault any unmapped granules in an access stream.

        First-touch policy: new memory lands on ``node`` (the faulting
        thread's node).  With ``thp_alloc``, a fault in a completely
        unmapped 2MB chunk backs the whole chunk with a huge page when a
        contiguous block is available (THP's allocation-time path);
        otherwise the touched granules are mapped as 4KB pages.
        """
        g = np.asarray(granules, dtype=np.int64)
        if g.size == 0:
            return FaultStats()
        nodes = self.home_nodes(g)
        unmapped = np.unique(g[nodes < 0])
        if unmapped.size == 0:
            return FaultStats()
        stats = FaultStats()
        chunks = np.unique(unmapped >> SHIFT_2M)
        if thp_alloc:
            fresh = chunks[
                ~self.huge[chunks] & (self.mapped_count_2m[chunks] == 0)
            ]
            fresh_set = set(int(c) for c in fresh)
        else:
            fresh_set = set()
        for chunk in chunks:
            chunk = int(chunk)
            in_chunk = unmapped[(unmapped >> SHIFT_2M) == chunk]
            if chunk in fresh_set and self._chunk_fits(chunk):
                target = self._alloc_node_for(node, huge=True)
                if self.phys[target].can_alloc_huge():
                    self._back_huge(chunk, target)
                    stats.faults_2m += 1
                    continue
            target = self._alloc_node_for(node, huge=False)
            self._map_small(in_chunk, target)
            stats.faults_4k += int(in_chunk.size)
        return stats

    def _chunk_fits(self, chunk: int) -> bool:
        """Whether the 2MB chunk lies fully inside the address space."""
        return (chunk + 1) << SHIFT_2M <= self.n_granules

    def _back_huge(self, chunk: int, node: int) -> None:
        block = self.phys[node].alloc_huge()
        self.huge[chunk] = True
        self.node2m[chunk] = node
        self._block2m[chunk] = block
        self._bump_version()

    def _map_small(self, granules: np.ndarray, node: int) -> None:
        self.phys[node].alloc_small(int(granules.size))
        self.node4k[granules] = node
        chunk_ids, counts = np.unique(granules >> SHIFT_2M, return_counts=True)
        self.mapped_count_2m[chunk_ids] += counts.astype(np.int32)
        self._bump_version()

    def premap_range(
        self, start_granule: Pages4K, n_granules: Pages4K, node: NodeId, thp_alloc: bool
    ) -> FaultStats:
        """Map an entire range on one node (bulk first-touch).

        Used by workload allocation phases: the faulting thread sweeps
        a region once, so we map it in bulk and return the fault counts
        the sweep would have produced.
        """
        if n_granules <= 0:
            return FaultStats()
        end = start_granule + n_granules
        if start_granule < 0 or end > self.n_granules:
            raise MappingError("premap range outside the address space")
        stats = FaultStats()
        g = start_granule
        while g < end:
            chunk = g >> SHIFT_2M
            chunk_start = chunk << SHIFT_2M
            chunk_end = chunk_start + GRANULES_PER_2M
            span_end = min(end, chunk_end)
            already = self.home_nodes(np.arange(g, span_end))
            todo = np.arange(g, span_end)[already < 0]
            if todo.size == 0:
                g = span_end
                continue
            whole_chunk = (
                g == chunk_start
                and span_end == chunk_end
                and not self.huge[chunk]
                and self.mapped_count_2m[chunk] == 0
            )
            if thp_alloc and whole_chunk and self._chunk_fits(chunk):
                target = self._alloc_node_for(node, huge=True)
                if self.phys[target].can_alloc_huge():
                    self._back_huge(chunk, target)
                    stats.faults_2m += 1
                    g = span_end
                    continue
            target = self._alloc_node_for(node, huge=False)
            self._map_small(todo, target)
            stats.faults_4k += int(todo.size)
            g = span_end
        return stats

    def premap_pattern_4k(self, start_granule: Pages4K, nodes: NodeArray) -> None:
        """Bulk-map a fully unmapped range as 4KB pages with given homes.

        ``nodes[i]`` is the home node of granule ``start_granule + i``.
        Used by workload allocation phases to materialise first-touch
        placement patterns without per-page Python loops.
        """
        nodes = np.asarray(nodes, dtype=np.int8)
        end = start_granule + nodes.size
        if start_granule < 0 or end > self.n_granules:
            raise MappingError("pattern outside the address space")
        if nodes.size == 0:
            return
        if np.any(nodes < 0) or np.any(nodes >= self.n_nodes):
            raise MappingError("pattern contains invalid node ids")
        span = slice(start_granule, end)
        chunk_lo = start_granule >> SHIFT_2M
        chunk_hi = ((end - 1) >> SHIFT_2M) + 1
        if np.any(self.node4k[span] >= 0) or np.any(self.huge[chunk_lo:chunk_hi]):
            raise MappingError("pattern overlaps existing mappings")
        counts = np.bincount(nodes.astype(np.int64), minlength=self.n_nodes)
        for node, count in enumerate(counts):
            if count:
                self.phys[node].alloc_small(int(count))
        self.node4k[span] = nodes
        g = np.arange(start_granule, end, dtype=np.int64)
        chunk_ids, chunk_counts = np.unique(g >> SHIFT_2M, return_counts=True)
        self.mapped_count_2m[chunk_ids] += chunk_counts.astype(np.int32)
        self._bump_version()

    def premap_pattern_2m(self, chunk_start: int, nodes: NodeArray) -> np.ndarray:
        """Bulk-back fully unmapped 2MB chunks as huge pages.

        ``nodes[i]`` is the home node of chunk ``chunk_start + i``.
        Like the fault path, each chunk falls back to 4KB pages when no
        contiguous 2MB block is available anywhere (THP's allocation
        under fragmentation); on a fresh allocator the fallback never
        triggers and the mapping is bitwise what it always was.
        Returns a boolean array: ``True`` where the chunk was backed
        huge, ``False`` where it fell back to base pages.
        """
        nodes = np.asarray(nodes, dtype=np.int8)
        end = chunk_start + nodes.size
        if chunk_start < 0 or end > self.n_chunks_2m:
            raise MappingError("pattern outside the address space")
        if nodes.size == 0:
            return np.zeros(0, dtype=bool)
        if not self._chunk_fits(end - 1):
            raise MappingError("trailing chunk extends past the address space")
        if np.any(nodes < 0) or np.any(nodes >= self.n_nodes):
            raise MappingError("pattern contains invalid node ids")
        chunks = np.arange(chunk_start, end)
        if np.any(self.huge[chunks]) or np.any(self.mapped_count_2m[chunks] != 0):
            raise MappingError("pattern overlaps existing mappings")
        backed = np.ones(nodes.size, dtype=bool)
        for i, (chunk, node) in enumerate(zip(chunks, nodes)):
            target = self._alloc_node_for(int(node), huge=True)
            if self.phys[target].can_alloc_huge():
                self._back_huge(int(chunk), target)
            else:
                target = self._alloc_node_for(int(node), huge=False)
                granules = np.arange(
                    int(chunk) << SHIFT_2M,
                    (int(chunk) + 1) << SHIFT_2M,
                    dtype=np.int64,
                )
                self._map_small(granules, target)
                backed[i] = False
        return backed

    def map_range_1g(
        self, start_granule: Pages4K, n_granules: Pages4K, node: NodeId
    ) -> FaultStats:
        """Back a range with 1GB pages (hugetlbfs-style pre-allocation).

        The range must be 1GB-aligned and 1GB-sized and fully unmapped.
        """
        if start_granule % GRANULES_PER_1G != 0 or n_granules % GRANULES_PER_1G != 0:
            raise MappingError("1GB mappings must be 1GB-aligned and -sized")
        end = start_granule + n_granules
        if end > self.n_granules:
            raise MappingError("1GB mapping outside the address space")
        stats = FaultStats()
        for gchunk in range(start_granule >> SHIFT_1G, end >> SHIFT_1G):
            if self.giga[gchunk]:
                continue
            span = slice(gchunk << SHIFT_1G, (gchunk + 1) << SHIFT_1G)
            chunk_lo = (gchunk << SHIFT_1G) >> SHIFT_2M
            chunk_hi = ((gchunk + 1) << SHIFT_1G) >> SHIFT_2M
            if (
                np.any(self.node4k[span] >= 0)
                or np.any(self.huge[chunk_lo:chunk_hi])
            ):
                raise MappingError("1GB mapping overlaps existing mappings")
            block = self.phys[node].alloc_giga()
            self.giga[gchunk] = True
            self.node1g[gchunk] = node
            self._block1g[gchunk] = block
            stats.faults_1g += 1
        if stats.faults_1g:
            self._bump_version()
        return stats

    # ------------------------------------------------------------------
    # Splitting, promotion, migration
    # ------------------------------------------------------------------
    def split_chunk(self, chunk: int) -> None:
        """Demote a 2MB page into 512 4KB pages on the same node.

        Physically the data does not move; the huge block's frames are
        handed to the node's small-frame pool.
        """
        if not self.huge[chunk]:
            raise MappingError(f"2MB chunk {chunk} is not huge-backed")
        if self.replicated_2m[chunk]:
            self.unreplicate_backing(chunk + BACKING_ID_2M_OFFSET)
        node = int(self.node2m[chunk])
        node_mem = self.phys[node]
        node_mem.free_huge(int(self._block2m[chunk]))
        node_mem.alloc_small(GRANULES_PER_2M)
        self.huge[chunk] = False
        self.node2m[chunk] = -1
        self._block2m[chunk] = -1
        span = slice(chunk << SHIFT_2M, (chunk + 1) << SHIFT_2M)
        self.node4k[span] = node
        self.mapped_count_2m[chunk] = GRANULES_PER_2M
        self._bump_version()

    def split_gchunk(self, gchunk: int) -> None:
        """Demote a 1GB page into 4KB pages on the same node."""
        if not self.giga[gchunk]:
            raise MappingError(f"1GB chunk {gchunk} is not giga-backed")
        node = int(self.node1g[gchunk])
        node_mem = self.phys[node]
        node_mem.free_giga(int(self._block1g[gchunk]))
        node_mem.alloc_small(GRANULES_PER_1G)
        self.giga[gchunk] = False
        self.node1g[gchunk] = -1
        self._block1g[gchunk] = -1
        span = slice(gchunk << SHIFT_1G, (gchunk + 1) << SHIFT_1G)
        self.node4k[span] = node
        chunk_lo = (gchunk << SHIFT_1G) >> SHIFT_2M
        chunk_hi = ((gchunk + 1) << SHIFT_1G) >> SHIFT_2M
        self.mapped_count_2m[chunk_lo:chunk_hi] = GRANULES_PER_2M
        self._bump_version()

    def collapse_chunk(self, chunk: int, node: Optional[NodeId] = None) -> bool:
        """Promote 512 mapped 4KB pages into one 2MB page (khugepaged).

        ``node`` defaults to the plurality node of the constituent
        pages.  Returns False (without changes) when the chunk is not
        fully 4KB-mapped or no huge block is available on the target.
        """
        if self.huge[chunk] or self.mapped_count_2m[chunk] != GRANULES_PER_2M:
            return False
        if self.collapse_blocked[chunk]:
            return False
        if not self._chunk_fits(chunk):
            return False
        span = slice(chunk << SHIFT_2M, (chunk + 1) << SHIFT_2M)
        if np.any(self.replicated_4k[span]):
            return False
        nodes = self.node4k[span]
        counts = np.bincount(nodes.astype(np.int64), minlength=self.n_nodes)
        if node is None:
            node = int(np.argmax(counts))
        if not self.phys[node].can_alloc_huge():
            return False
        block = self.phys[node].alloc_huge()
        for src, count in enumerate(counts):
            if count:
                self.phys[src].free_small(int(count))
        self.huge[chunk] = True
        self.node2m[chunk] = node
        self._block2m[chunk] = block
        self.node4k[span] = -1
        self.mapped_count_2m[chunk] = 0
        self._bump_version()
        return True

    def migrate_backing(self, backing_id: int, dst_node: NodeId) -> Bytes:
        """Migrate one backing page to ``dst_node``; returns bytes moved.

        Returns 0 when the page is already on the destination or the
        destination cannot hold it (migration is then skipped, matching
        the kernel's best-effort behaviour).
        """
        if not 0 <= dst_node < self.n_nodes:
            raise MappingError(f"destination node {dst_node} out of range")
        kind = self.backing_id_kind(backing_id)
        if kind is PageSize.SIZE_4K:
            granule = backing_id
            src = int(self.node4k[granule])
            if src < 0:
                raise MappingError(f"granule {granule} is not 4KB-mapped")
            if self.replicated_4k[granule]:
                return 0  # already local everywhere
            if src == dst_node:
                return 0
            if self.phys[dst_node].free_bytes < PAGE_4K:
                return 0
            self.phys[dst_node].alloc_small(1)
            self.phys[src].free_small(1)
            self.node4k[granule] = dst_node
            self._bump_version()
            return PAGE_4K
        if kind is PageSize.SIZE_2M:
            chunk = backing_id - BACKING_ID_2M_OFFSET
            if not self.huge[chunk]:
                raise MappingError(f"2MB chunk {chunk} is not huge-backed")
            if self.replicated_2m[chunk]:
                return 0  # already local everywhere
            src = int(self.node2m[chunk])
            if src == dst_node:
                return 0
            if not self.phys[dst_node].can_alloc_huge():
                return 0
            block = self.phys[dst_node].alloc_huge()
            self.phys[src].free_huge(int(self._block2m[chunk]))
            self.node2m[chunk] = dst_node
            self._block2m[chunk] = block
            self._bump_version()
            return int(PageSize.SIZE_2M)
        gchunk = backing_id - BACKING_ID_1G_OFFSET
        if not self.giga[gchunk]:
            raise MappingError(f"1GB chunk {gchunk} is not giga-backed")
        src = int(self.node1g[gchunk])
        if src == dst_node:
            return 0
        if not self.phys[dst_node].can_alloc_giga():
            return 0
        block = self.phys[dst_node].alloc_giga()
        self.phys[src].free_giga(int(self._block1g[gchunk]))
        self.node1g[gchunk] = dst_node
        self._block1g[gchunk] = block
        self._bump_version()
        return int(PageSize.SIZE_1G)

    def migrate_granules(self, granules: Pages4KArray, dst_nodes: NodeArray) -> Bytes:
        """Bulk-migrate 4KB-mapped granules; returns bytes moved.

        Granules must currently be 4KB-mapped.  Used after splitting a
        hot page to interleave its constituents.
        """
        g = np.asarray(granules, dtype=np.int64)
        dst = np.asarray(dst_nodes, dtype=np.int64)
        if g.shape != dst.shape:
            raise MappingError("granules and dst_nodes must align")
        src = self.node4k[g].astype(np.int64)
        if np.any(src < 0):
            raise MappingError("bulk migration requires 4KB-mapped granules")
        moving = (src != dst) & ~self.replicated_4k[g]
        if not np.any(moving):
            return 0
        g, src, dst = g[moving], src[moving], dst[moving]
        for node in range(self.n_nodes):
            incoming = int(np.count_nonzero(dst == node))
            if incoming:
                self.phys[node].alloc_small(incoming)
            outgoing = int(np.count_nonzero(src == node))
            if outgoing:
                self.phys[node].free_small(outgoing)
        self.node4k[g] = dst.astype(np.int8)
        self._bump_version()
        return int(g.size) * PAGE_4K

    # ------------------------------------------------------------------
    # Reclaim and teardown
    # ------------------------------------------------------------------
    def reclaim_granules(self, granules: Pages4KArray) -> Bytes:
        """Unmap 4KB-mapped granules and return their frames; bytes freed.

        Models memory-pressure reclaim (the tenant-scoped
        ``ReclaimPages`` decision): only plain 4KB mappings are
        eligible — granules that are unmapped, covered by a larger
        backing page, or replicated are silently skipped, matching the
        kernel's behaviour of splitting/collapsing before evicting.
        Reclaimed granules fault back in on the next touch.
        """
        g = np.unique(np.asarray(granules, dtype=np.int64))
        if g.size == 0:
            return 0
        if int(g[0]) < 0 or int(g[-1]) >= self.n_granules:
            raise MappingError("reclaim outside the address space")
        eligible = (self.node4k[g] >= 0) & ~self.replicated_4k[g]
        g = g[eligible]
        if g.size == 0:
            return 0
        nodes = self.node4k[g].astype(np.int64)
        counts = np.bincount(nodes, minlength=self.n_nodes)
        for node, count in enumerate(counts):
            if count:
                self.phys[node].free_small(int(count))
        self.node4k[g] = -1
        chunk_ids, chunk_counts = np.unique(g >> SHIFT_2M, return_counts=True)
        self.mapped_count_2m[chunk_ids] -= chunk_counts.astype(np.int32)
        freed = int(g.size) * PAGE_4K
        self.reclaimed_bytes += freed
        self._bump_version()
        return freed

    def release_all(self) -> Bytes:
        """Tear down every mapping and return all frames (process exit).

        Collapses every replica, frees every 4KB/2MB/1GB backing, and
        resets the space to its freshly-constructed (empty) state.
        Returns the mapped bytes released.  The multi-tenant host calls
        this when a tenant exits, so the frames age the shared allocator
        that later tenants draw from.
        """
        for granule in np.flatnonzero(self.replicated_4k):
            self.unreplicate_backing(int(granule))
        for backing_id in sorted(list(self._replica_blocks)):
            self.unreplicate_backing(backing_id)
        released = self.mapped_bytes()
        mapped4k = self.node4k[self.node4k >= 0].astype(np.int64)
        counts = np.bincount(mapped4k, minlength=self.n_nodes)
        for node, count in enumerate(counts):
            if count:
                self.phys[node].free_small(int(count))
        for chunk in np.flatnonzero(self.huge):
            self.phys[int(self.node2m[chunk])].free_huge(
                int(self._block2m[chunk])
            )
        for gchunk in np.flatnonzero(self.giga):
            self.phys[int(self.node1g[gchunk])].free_giga(
                int(self._block1g[gchunk])
            )
        self.node4k[:] = -1
        self.huge[:] = False
        self.node2m[:] = -1
        self._block2m[:] = -1
        self.collapse_blocked[:] = False
        self.mapped_count_2m[:] = 0
        self.giga[:] = False
        self.node1g[:] = -1
        self._block1g[:] = -1
        self.reclaimed_bytes += released
        self._bump_version()
        return released

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def block_collapse(self, chunk: int) -> None:
        """madvise(MADV_NOHUGEPAGE): prevent khugepaged re-collapse.

        Carrefour-LP marks ranges it deliberately demoted so the
        promotion scanner does not silently undo the split.
        """
        self.collapse_blocked[chunk] = True

    def clear_collapse_blocks(self) -> None:
        """Re-allow promotion everywhere (MADV_HUGEPAGE).

        Called when the conservative component decides large pages are
        worth re-creating.
        """
        self.collapse_blocked[:] = False

    def page_table_bytes(self) -> Bytes:
        """Estimated size of the process's live page tables.

        One 4KB PTE page per 2MB chunk holding 4KB entries, plus one
        PMD page per 1GB region with live PTE pages or 2MB entries;
        the handful of upper-level pages is noise at these footprints.
        Used to cost Mitosis-style page-table replication.
        """
        pte_chunks = np.flatnonzero(self.mapped_count_2m > 0)
        huge_chunks = np.flatnonzero(self.huge)
        pmd_regions = np.union1d(
            pte_chunks >> (SHIFT_1G - SHIFT_2M),
            huge_chunks >> (SHIFT_1G - SHIFT_2M),
        )
        return (int(pte_chunks.size) + int(pmd_regions.size)) * PAGE_4K

    def mapped_bytes(self) -> Bytes:
        """Total mapped bytes at any granularity."""
        small = int(np.count_nonzero(self.node4k >= 0)) * PAGE_4K
        huge = int(np.count_nonzero(self.huge)) * int(PageSize.SIZE_2M)
        giga = int(np.count_nonzero(self.giga)) * int(PageSize.SIZE_1G)
        return small + huge + giga

    def page_counts(self) -> Dict[PageSize, int]:
        """Number of mapped pages per size class."""
        return {
            PageSize.SIZE_4K: int(np.count_nonzero(self.node4k >= 0)),
            PageSize.SIZE_2M: int(np.count_nonzero(self.huge)),
            PageSize.SIZE_1G: int(np.count_nonzero(self.giga)),
        }

    def bytes_per_node(self) -> BytesArray:
        """Mapped bytes per home node."""
        out = np.zeros(self.n_nodes, dtype=np.int64)
        mapped4k = self.node4k[self.node4k >= 0].astype(np.int64)
        out += np.bincount(mapped4k, minlength=self.n_nodes) * PAGE_4K
        huge_nodes = self.node2m[self.huge].astype(np.int64)
        out += np.bincount(huge_nodes, minlength=self.n_nodes) * int(PageSize.SIZE_2M)
        giga_nodes = self.node1g[self.giga].astype(np.int64)
        out += np.bincount(giga_nodes, minlength=self.n_nodes) * int(PageSize.SIZE_1G)
        return out

    def check_invariants(self) -> None:
        """Raise if mapping invariants are violated (test helper)."""
        for chunk in np.flatnonzero(self.huge):
            span = slice(int(chunk) << SHIFT_2M, (int(chunk) + 1) << SHIFT_2M)
            if np.any(self.node4k[span] >= 0):
                raise AssertionError(f"huge chunk {chunk} has 4KB mappings")
            if self.mapped_count_2m[chunk] != 0:
                raise AssertionError(f"huge chunk {chunk} has nonzero mapped count")
            if self.node2m[chunk] < 0:
                raise AssertionError(f"huge chunk {chunk} has no node")
        for gchunk in np.flatnonzero(self.giga):
            chunk_lo = (int(gchunk) << SHIFT_1G) >> SHIFT_2M
            chunk_hi = ((int(gchunk) + 1) << SHIFT_1G) >> SHIFT_2M
            if np.any(self.huge[chunk_lo:chunk_hi]):
                raise AssertionError(f"1GB chunk {gchunk} overlaps 2MB pages")
        counted = np.zeros(self.n_chunks_2m, dtype=np.int32)
        mapped = np.flatnonzero(self.node4k >= 0)
        if mapped.size:
            ids, counts = np.unique(mapped >> SHIFT_2M, return_counts=True)
            counted[ids] = counts.astype(np.int32)
        if not np.array_equal(counted, self.mapped_count_2m):
            raise AssertionError("mapped_count_2m out of sync")
        # Replication accounting.
        if np.any(self.replicated_4k & (self.node4k < 0)):
            raise AssertionError("replicated granule without a mapping")
        if np.any(self.replicated_2m & ~self.huge):
            raise AssertionError("replicated 2MB chunk is not huge-backed")
        expected_replicas = (
            int(np.count_nonzero(self.replicated_4k)) * (self.n_nodes - 1) * PAGE_4K
            + int(np.count_nonzero(self.replicated_2m))
            * (self.n_nodes - 1)
            * int(PageSize.SIZE_2M)
        )
        if expected_replicas != self.replica_bytes:
            raise AssertionError("replica byte counter out of sync")


def split_backing_page(
    address_space: AddressSpace, page_id: int, block_collapse: bool = True
) -> int:
    """Split one 2MB or 1GB backing page into 4KB pages.

    Returns the number of 2MB-equivalents split (1 for a 2MB page, 512
    for a 1GB page) for cost accounting; 0 when the id names a 4KB page.

    With ``block_collapse`` (the default for policy-driven splits) the
    demoted range is madvised NOHUGEPAGE so khugepaged does not
    immediately undo the decision; the conservative component clears
    the marks when it re-enables promotion.
    """
    kind = AddressSpace.backing_id_kind(page_id)
    if kind is PageSize.SIZE_4K:
        return 0
    if kind is PageSize.SIZE_2M:
        chunk = page_id - BACKING_ID_2M_OFFSET
        address_space.split_chunk(chunk)
        if block_collapse:
            address_space.block_collapse(chunk)
        return 1
    gchunk = page_id - BACKING_ID_1G_OFFSET
    address_space.split_gchunk(gchunk)
    if block_collapse:
        base = gchunk * CHUNKS_2M_PER_1G
        for chunk in range(base, base + CHUNKS_2M_PER_1G):
            address_space.block_collapse(chunk)
    return 512
