"""Physical memory: a per-node buddy frame allocator.

Each NUMA node's DRAM is managed by a :class:`BuddyAllocator` over 4KB
frames (order 0) up to 1GB blocks (order 18), exactly like the Linux
page allocator's order hierarchy.  Huge-page allocation succeeds only
when a sufficiently large contiguous block exists, which is how THP's
fallback-to-4KB behaviour and fragmentation sensitivity arise.

For scattered base pages, :class:`NodeMemory` adds a small-frame pool
that carves order-9 (2MB) buddy blocks and hands out 4KB frames from
them by count.  This amortises allocator work (one buddy operation per
512 base-page operations) while keeping capacity accounting exact; the
identity of individual 4KB frames is not tracked because nothing in the
simulation depends on physical frame numbers — only on the *node* and
the *page size*.  The pool returns blocks to the buddy allocator once
it holds at least a full block of free frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import AllocationError, ConfigurationError
from repro.units import Bytes, NodeId, Pages4K
from repro.vm.layout import ORDER_1G, ORDER_2M, PAGE_4K


class BuddyAllocator:
    """A classic binary buddy allocator over a frame index space.

    Frames are indexed ``0 .. total_frames-1``.  A block of order ``k``
    covers ``2**k`` frames and is aligned to a ``2**k`` boundary.
    """

    def __init__(self, total_frames: int, max_order: int = ORDER_1G) -> None:
        if total_frames <= 0:
            raise ConfigurationError("total_frames must be positive")
        if not 0 <= max_order <= 30:
            raise ConfigurationError("max_order out of supported range")
        self.total_frames = total_frames
        self.max_order = max_order
        self._free: List[Set[int]] = [set() for _ in range(max_order + 1)]
        self._allocated: Dict[int, int] = {}  # block start -> order
        self._free_frames = 0
        self._seed_free_lists()

    def _seed_free_lists(self) -> None:
        """Greedily cover [0, total_frames) with maximal aligned blocks."""
        start = 0
        remaining = self.total_frames
        while remaining > 0:
            order = min(self.max_order, remaining.bit_length() - 1)
            # The block must also be aligned to its own size.
            while order > 0 and start % (1 << order) != 0:
                order -= 1
            self._free[order].add(start)
            self._free_frames += 1 << order
            start += 1 << order
            remaining -= 1 << order

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def free_frames(self) -> Pages4K:
        """Number of free 4KB frames."""
        return self._free_frames

    @property
    def allocated_frames(self) -> Pages4K:
        """Number of allocated 4KB frames."""
        return self.total_frames - self._free_frames

    def free_blocks(self, order: int) -> int:
        """Number of free blocks currently on the given order's list."""
        self._check_order(order)
        return len(self._free[order])

    def largest_free_order(self) -> int:
        """Largest order with a free block; -1 when memory is exhausted."""
        for order in range(self.max_order, -1, -1):
            if self._free[order]:
                return order
        return -1

    def can_alloc(self, order: int) -> bool:
        """Whether an allocation of the given order would succeed."""
        self._check_order(order)
        return any(self._free[k] for k in range(order, self.max_order + 1))

    def _check_order(self, order: int) -> None:
        if not 0 <= order <= self.max_order:
            raise ConfigurationError(
                f"order {order} out of range 0..{self.max_order}"
            )

    # ------------------------------------------------------------------
    # Allocation / free
    # ------------------------------------------------------------------
    def alloc(self, order: int) -> int:
        """Allocate a block; returns its start frame index.

        Raises :class:`AllocationError` when no block of the requested
        order (or larger, to split) is free — i.e. under fragmentation
        or exhaustion.
        """
        self._check_order(order)
        source = order
        while source <= self.max_order and not self._free[source]:
            source += 1
        if source > self.max_order:
            raise AllocationError(
                f"no free block of order >= {order} "
                f"({self._free_frames} frames free)"
            )
        start = self._free[source].pop()
        # Split down to the requested order, freeing the upper buddies.
        while source > order:
            source -= 1
            buddy = start + (1 << source)
            self._free[source].add(buddy)
        self._allocated[start] = order
        self._free_frames -= 1 << order
        return start

    def free(self, start: int, order: int) -> None:
        """Free a previously allocated block, merging with free buddies."""
        self._check_order(order)
        recorded = self._allocated.pop(start, None)
        if recorded is None:
            raise AllocationError(f"block at frame {start} is not allocated")
        if recorded != order:
            self._allocated[start] = recorded
            raise AllocationError(
                f"block at frame {start} was allocated with order {recorded}, "
                f"not {order}"
            )
        self._free_frames += 1 << order
        while order < self.max_order:
            buddy = start ^ (1 << order)
            if buddy not in self._free[order]:
                break
            # Merging past the end of an irregular (non-power-of-two)
            # memory size is impossible because such buddies were never
            # seeded as free; the membership test above covers it.
            self._free[order].remove(buddy)
            start = min(start, buddy)
            order += 1
        self._free[order].add(start)

    def check_accounting(self) -> None:
        """Cheap counter consistency check (safe to run every epoch).

        Verifies the free-frame counter against the free lists and that
        allocated + free covers the node exactly, without the O(frames)
        overlap scan of :meth:`check_invariants`.
        """
        counted = sum(
            len(blocks) << order for order, blocks in enumerate(self._free)
        )
        if counted != self._free_frames:
            raise AssertionError("free-frame counter out of sync with lists")
        allocated = sum(1 << order for order in sorted(self._allocated.values()))
        if allocated + self._free_frames != self.total_frames:
            raise AssertionError("allocated + free != total frames")

    def check_invariants(self) -> None:
        """Raise if internal bookkeeping is inconsistent (test helper)."""
        self.check_accounting()
        seen: Set[int] = set()
        for order, blocks in enumerate(self._free):
            for start in blocks:
                if start % (1 << order) != 0:
                    raise AssertionError(f"misaligned free block {start}@{order}")
                span = set(range(start, start + (1 << order)))
                if seen & span:
                    raise AssertionError("overlapping free blocks")
                seen |= span


@dataclass
class PoolStats:
    """Small-frame pool statistics for one node (debug/test aid)."""

    free_frames_in_pool: int
    reserved_blocks: int


class NodeMemory:
    """One NUMA node's DRAM: buddy allocator plus a small-frame pool."""

    def __init__(
        self, node_id: NodeId, dram_bytes: Bytes, max_order: int = ORDER_1G
    ) -> None:
        if dram_bytes < PAGE_4K:
            raise ConfigurationError("a node needs at least one frame of DRAM")
        self.node_id = node_id
        self.dram_bytes = dram_bytes
        self.buddy = BuddyAllocator(dram_bytes // PAGE_4K, max_order=max_order)
        self._pool_free = 0
        self._pool_blocks: List[int] = []
        self._pool_carves: List[int] = []
        self._fragmentation_pins: List[int] = []
        #: Bytes held by explicit :meth:`inject_fragmentation` pins —
        #: allocator usage not backed by any mapping, which the runtime
        #: page-conservation invariant must account for separately.
        self.test_pinned_bytes: Bytes = 0

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> Bytes:
        """Bytes allocated to pages (pool-held free frames do not count)."""
        return (self.buddy.allocated_frames - self._pool_free) * PAGE_4K

    @property
    def free_bytes(self) -> Bytes:
        """Bytes available for new allocations (buddy free + pool free)."""
        return (self.buddy.free_frames + self._pool_free) * PAGE_4K

    def pool_stats(self) -> PoolStats:
        """Current small-frame pool statistics."""
        return PoolStats(self._pool_free, len(self._pool_blocks))

    # ------------------------------------------------------------------
    # Small (4KB) frames — pooled, count-based
    # ------------------------------------------------------------------
    def alloc_small(self, n: Pages4K) -> None:
        """Allocate ``n`` 4KB frames (identity untracked)."""
        if n < 0:
            raise ConfigurationError("frame count must be non-negative")
        while self._pool_free < n:
            # Prefer carving 2MB blocks; fall back to whatever is left.
            order = ORDER_2M if self.buddy.can_alloc(ORDER_2M) else (
                self.buddy.largest_free_order()
            )
            if order < 0:
                raise AllocationError(
                    f"node {self.node_id}: out of memory allocating {n} frames"
                )
            start = self.buddy.alloc(order)
            if order == ORDER_2M:
                self._pool_blocks.append(start)
            else:
                # Odd-order carve (rare path).  These frames belong to
                # the pool's accounting, so they must never be released
                # by release_fragmentation.
                self._pool_carves.append((start << 6) | order)
            self._pool_free += 1 << order
        self._pool_free -= n

    def free_small(self, n: Pages4K) -> None:
        """Free ``n`` 4KB frames back to the pool."""
        if n < 0:
            raise ConfigurationError("frame count must be non-negative")
        self._pool_free += n
        # Return whole blocks to the buddy while the pool is over-full.
        while self._pool_blocks and self._pool_free >= (1 << ORDER_2M):
            start = self._pool_blocks.pop()
            self.buddy.free(start, ORDER_2M)
            self._pool_free -= 1 << ORDER_2M

    # ------------------------------------------------------------------
    # Huge (2MB) and giga (1GB) pages — identity-tracked buddy blocks
    # ------------------------------------------------------------------
    def can_alloc_huge(self) -> bool:
        """Whether a 2MB page could be allocated right now."""
        return self.buddy.can_alloc(ORDER_2M)

    def alloc_huge(self) -> int:
        """Allocate one 2MB page; returns the block's start frame."""
        return self.buddy.alloc(ORDER_2M)

    def free_huge(self, start: int) -> None:
        """Free a 2MB page previously returned by :meth:`alloc_huge`."""
        self.buddy.free(start, ORDER_2M)

    def can_alloc_giga(self) -> bool:
        """Whether a 1GB page could be allocated right now."""
        return self.buddy.can_alloc(ORDER_1G)

    def alloc_giga(self) -> int:
        """Allocate one 1GB page; returns the block's start frame."""
        return self.buddy.alloc(ORDER_1G)

    def free_giga(self, start: int) -> None:
        """Free a 1GB page previously returned by :meth:`alloc_giga`."""
        self.buddy.free(start, ORDER_1G)

    # ------------------------------------------------------------------
    # Test support
    # ------------------------------------------------------------------
    def inject_fragmentation(self, n_blocks: int, order: int = 0) -> None:
        """Pin ``n_blocks`` blocks of the given order to fragment memory.

        Used by tests and examples to exercise THP's fallback path:
        after pinning enough scattered small blocks, no order-9 block
        remains and huge allocations fail.
        """
        for _ in range(n_blocks):
            start = self.buddy.alloc(order)
            self._fragmentation_pins.append((start << 6) | order)
            self.test_pinned_bytes += (1 << order) * PAGE_4K

    def pin_fragmented(self, target_bytes: Bytes) -> Bytes:
        """Pin ~``target_bytes`` so the *free* remainder is fragmented.

        Sequential buddy allocations return adjacent blocks, so naive
        pinning leaves the unpinned memory contiguous and THP-friendly.
        This helper instead holds both 1MB halves of a 2MB block and
        then releases the upper half: the freed halves can never merge
        back (their buddies stay pinned), so every byte pinned this way
        destroys two bytes of huge-page contiguity — the occupancy
        profile of a long-running host rather than a fresh boot.  Pins
        are accounted as :attr:`test_pinned_bytes` like
        :meth:`inject_fragmentation` and released the same way.
        Returns the bytes actually pinned.
        """
        if target_bytes < 0:
            raise ConfigurationError("target_bytes must be non-negative")
        half_order = ORDER_2M - 1
        half_bytes = (1 << half_order) * PAGE_4K
        # Phase 1: hold half-blocks worth twice the target, breaking a
        # proportional share of the node's 2MB blocks.
        held: List[int] = []
        while (
            len(held) * half_bytes < 2 * target_bytes
            and self.buddy.can_alloc(half_order)
        ):
            held.append(self.buddy.alloc(half_order))
        # Phase 2: release the upper half of every fully-held pair.
        held_set = set(held)
        pinned: Bytes = 0
        for start in held:
            upper = bool(start & (1 << half_order))
            if upper and (start ^ (1 << half_order)) in held_set:
                self.buddy.free(start, half_order)
            else:
                self._fragmentation_pins.append((start << 6) | half_order)
                pinned += half_bytes
        # Phase 3: top up from the now-scattered free halves (re-pinning
        # them cannot restore contiguity — their buddies stay pinned).
        while (
            pinned + half_bytes <= target_bytes
            and self.buddy.can_alloc(half_order)
        ):
            start = self.buddy.alloc(half_order)
            self._fragmentation_pins.append((start << 6) | half_order)
            pinned += half_bytes
        # Half-block pins so far; inject_fragmentation accounts its own.
        self.test_pinned_bytes += pinned
        # Phase 4: sub-1MB remainder as individual 4KB frames.  Phase 2
        # keeps unpaired upper halves, so ``pinned`` may already exceed
        # the target by a fraction of a half-block.
        remainder = min(
            max(0, target_bytes - pinned) // PAGE_4K,
            self.buddy.free_frames,
        )
        if remainder > 0:
            self.inject_fragmentation(remainder, order=0)
            pinned += remainder * PAGE_4K
        return pinned

    def release_fragmentation(self) -> None:
        """Release all pins created by :meth:`inject_fragmentation`."""
        for token in self._fragmentation_pins:
            self.buddy.free(token >> 6, token & 0x3F)
        self._fragmentation_pins.clear()
        self.test_pinned_bytes = 0


class PhysicalMemory:
    """All nodes' memory, indexed by node id."""

    def __init__(self, dram_bytes_per_node: List[int]) -> None:
        if not dram_bytes_per_node:
            raise ConfigurationError("at least one node required")
        self.nodes = [
            NodeMemory(node_id, dram) for node_id, dram in enumerate(dram_bytes_per_node)
        ]

    @classmethod
    def for_topology(cls, topology) -> "PhysicalMemory":
        """Build physical memory matching a :class:`NumaTopology`."""
        return cls([node.dram_bytes for node in topology.nodes])

    def __getitem__(self, node: int) -> NodeMemory:
        return self.nodes[node]

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def total_used_bytes(self) -> Bytes:
        """Bytes in use across all nodes."""
        return sum(node.used_bytes for node in self.nodes)

    @property
    def total_free_bytes(self) -> Bytes:
        """Bytes free across all nodes."""
        return sum(node.free_bytes for node in self.nodes)

    def node_with_most_free(self, exclude: Optional[NodeId] = None) -> NodeId:
        """Node id with the most free memory (fallback allocation target)."""
        best, best_free = -1, -1
        for node in self.nodes:
            if node.node_id == exclude:
                continue
            if node.free_bytes > best_free:
                best, best_free = node.node_id, node.free_bytes
        if best < 0:
            raise AllocationError("no eligible node")
        return best
