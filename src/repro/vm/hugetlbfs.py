"""libhugetlbfs-style explicit 1GB page backing (paper Section 4.4).

The paper's very-large-page study pre-allocates 1GB pages through
libhugetlbfs (THP does not support 1GB pages).  We model the same
behaviour: a region is backed with 1GB pages at map time, spread
round-robin or first-touch across nodes; splitting support — which
libhugetlbfs lacks and the paper calls out as a gap — *is* implemented
here so Carrefour-LP can be evaluated with 1GB pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import AllocationError, MappingError
from repro.vm.address_space import AddressSpace, FaultStats
from repro.vm.layout import GRANULES_PER_1G, SHIFT_1G


@dataclass(frozen=True)
class HugetlbRegion:
    """A 1GB-page-backed virtual range."""

    start_granule: int
    n_granules: int


def reserve_1g_region(
    address_space: AddressSpace,
    start_granule: int,
    n_granules: int,
    preferred_node: int,
    spread: bool = False,
) -> FaultStats:
    """Back a region with 1GB pages at map time.

    With ``spread`` the pages are placed round-robin across nodes
    (numactl --interleave style); otherwise they all land on
    ``preferred_node`` — the libhugetlbfs default, which is exactly what
    produces the paper's catastrophic hot-node behaviour.
    """
    if n_granules % GRANULES_PER_1G or start_granule % GRANULES_PER_1G:
        raise MappingError("hugetlbfs regions must be 1GB-aligned and -sized")
    stats = FaultStats()
    n_nodes = address_space.n_nodes
    for i, gchunk in enumerate(
        range(start_granule >> SHIFT_1G, (start_granule + n_granules) >> SHIFT_1G)
    ):
        node = (preferred_node + i) % n_nodes if spread else preferred_node
        base = gchunk << SHIFT_1G
        try:
            stats.merge(
                address_space.map_range_1g(base, GRANULES_PER_1G, node)
            )
        except AllocationError:
            # libhugetlbfs fails hard when the pool is exhausted; the
            # paper reports exactly such reliability problems.  Surface
            # the failure to the caller.
            raise
    return stats


def round_up_granules_1g(n_granules: int) -> int:
    """Round a granule count up to a whole number of 1GB pages."""
    if n_granules < 0:
        raise MappingError("granule count must be non-negative")
    return -(-n_granules // GRANULES_PER_1G) * GRANULES_PER_1G


def list_1g_pages(address_space: AddressSpace) -> List[int]:
    """Backing ids of all live 1GB pages (for policy iteration)."""
    import numpy as np

    from repro.vm.address_space import BACKING_ID_1G_OFFSET

    return [
        int(g) + BACKING_ID_1G_OFFSET
        for g in np.flatnonzero(address_space.giga)
    ]
