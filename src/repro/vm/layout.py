"""Page-size constants and granule arithmetic.

Throughout the package, virtual memory is addressed in *granules* of 4KB
(the base page size on x86).  A 2MB huge page covers 512 consecutive
granules aligned to a 512-granule boundary; a 1GB page covers 262144
granules.  Working in granule indices (plain int64 arrays) keeps every
translation step vectorisable with numpy.
"""

from __future__ import annotations

import enum

PAGE_4K = 4 * 1024
PAGE_2M = 2 * 1024 * 1024
PAGE_1G = 1024 * 1024 * 1024

#: Number of 4KB granules per 2MB huge page.
GRANULES_PER_2M = PAGE_2M // PAGE_4K  # 512
#: Number of 4KB granules per 1GB huge page.
GRANULES_PER_1G = PAGE_1G // PAGE_4K  # 262144
#: Number of 2MB chunks per 1GB chunk.
CHUNKS_2M_PER_1G = PAGE_1G // PAGE_2M  # 512

#: log2(granules per 2MB page)
SHIFT_2M = 9
#: log2(granules per 1GB page)
SHIFT_1G = 18

# Buddy-allocator orders, in units of 4KB frames (order 0 = one frame).
ORDER_4K = 0
ORDER_2M = 9
ORDER_1G = 18


class PageSize(enum.IntEnum):
    """Backing-page size classes understood by the address space and TLBs."""

    SIZE_4K = PAGE_4K
    SIZE_2M = PAGE_2M
    SIZE_1G = PAGE_1G

    @property
    def granules(self) -> int:
        """Number of 4KB granules covered by one page of this size."""
        return int(self) // PAGE_4K

    @property
    def order(self) -> int:
        """Buddy-allocator order of one page of this size."""
        return {PAGE_4K: ORDER_4K, PAGE_2M: ORDER_2M, PAGE_1G: ORDER_1G}[int(self)]


def granules_of_bytes(n_bytes: int) -> int:
    """Number of 4KB granules needed to cover ``n_bytes`` (rounded up)."""
    if n_bytes < 0:
        raise ValueError("byte count must be non-negative")
    return -(-n_bytes // PAGE_4K)


def chunks_2m_of_granules(n_granules: int) -> int:
    """Number of 2MB chunks needed to cover ``n_granules`` (rounded up)."""
    if n_granules < 0:
        raise ValueError("granule count must be non-negative")
    return -(-n_granules // GRANULES_PER_2M)


def chunks_1g_of_granules(n_granules: int) -> int:
    """Number of 1GB chunks needed to cover ``n_granules`` (rounded up)."""
    if n_granules < 0:
        raise ValueError("granule count must be non-negative")
    return -(-n_granules // GRANULES_PER_1G)


def chunk_2m_of(granule):
    """2MB-chunk index containing a granule (scalar or ndarray)."""
    return granule >> SHIFT_2M


def chunk_1g_of(granule):
    """1GB-chunk index containing a granule (scalar or ndarray)."""
    return granule >> SHIFT_1G
