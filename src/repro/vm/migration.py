"""Cost model for page migration, splitting and promotion.

Carrefour's actions are not free: migrating a page copies its bytes
across the interconnect, and THP split/collapse manipulates page tables
under the page-table lock (the paper flags the global PTL as a
scalability concern in Section 4.3).  These costs feed the overhead
assessment of Section 4.2 — Carrefour-2M "spends too much time
migrating large pages" on FT and IS, which we reproduce by charging
per-byte copy costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.vm.layout import PAGE_2M, PAGE_4K


@dataclass(frozen=True)
class MigrationCostModel:
    """Time costs for VM maintenance operations.

    ``copy_bytes_per_sec`` models the memcpy + interconnect transfer
    rate; fixed per-operation costs model unmap/remap/TLB-shootdown
    work.
    """

    copy_bytes_per_sec: float = 2.5e9
    fixed_cost_per_migration_s: float = 6.0e-6
    split_cost_s: float = 4.0e-5
    collapse_fixed_cost_s: float = 5.0e-5
    #: Page-table-lock contention multiplier applied to split/collapse
    #: when many threads run (coarse PTL model).
    ptl_contention_per_thread: float = 0.02
    max_ptl_multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.copy_bytes_per_sec <= 0:
            raise ConfigurationError("copy rate must be positive")
        if min(
            self.fixed_cost_per_migration_s,
            self.split_cost_s,
            self.collapse_fixed_cost_s,
        ) < 0:
            raise ConfigurationError("fixed costs must be non-negative")

    def _ptl_multiplier(self, n_threads: int) -> float:
        return min(
            1.0 + self.ptl_contention_per_thread * max(0, n_threads - 1),
            self.max_ptl_multiplier,
        )

    def migration_time_s(self, bytes_moved: int, n_migrations: int) -> float:
        """Time to migrate ``n_migrations`` pages totalling ``bytes_moved``."""
        if bytes_moved < 0 or n_migrations < 0:
            raise ConfigurationError("migration accounting must be non-negative")
        return (
            bytes_moved / self.copy_bytes_per_sec
            + n_migrations * self.fixed_cost_per_migration_s
        )

    def split_time_s(self, n_splits: int, n_threads: int = 1) -> float:
        """Time to split ``n_splits`` huge pages (no data copy needed)."""
        if n_splits < 0:
            raise ConfigurationError("split count must be non-negative")
        return n_splits * self.split_cost_s * self._ptl_multiplier(n_threads)

    def collapse_time_s(self, n_collapses: int, n_threads: int = 1) -> float:
        """Time to promote ``n_collapses`` 2MB ranges (copy + remap)."""
        if n_collapses < 0:
            raise ConfigurationError("collapse count must be non-negative")
        per_collapse = (
            self.collapse_fixed_cost_s + PAGE_2M / self.copy_bytes_per_sec
        )
        return n_collapses * per_collapse * self._ptl_multiplier(n_threads)

    def migration_time_for_pages_s(self, n_4k: int, n_2m: int) -> float:
        """Convenience: migration time for counts of 4KB and 2MB pages."""
        return self.migration_time_s(
            n_4k * PAGE_4K + n_2m * PAGE_2M, n_4k + n_2m
        )
