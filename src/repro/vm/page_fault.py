"""Page-fault handler cost model.

Soft (demand-zero) faults cost CPU time in the handler and, crucially
for the paper, serialise on page-table locks: the paper cites
[Boyd-Wickizer et al.] and uses the *maximum per-core* time in the
fault handler as its signal because "lock contention will be
determined by the slowest core that holds page table locks".

We charge a base handler cost per fault (huge-page faults cost more
each — the kernel zeroes 2MB — but 512x fewer of them happen), plus a
contention multiplier that grows with the number of threads faulting
concurrently in the same epoch.  This makes allocation-heavy phases
(Metis wordcount's ingest, for example) dramatically cheaper under THP,
reproducing the paper's Table 1 (WC: 8.7s in the handler at 4KB vs 3.7s
at 2MB) and the observation in Section 3.2 that it pays to *start* with
large pages because of startup allocation storms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PageFaultModel:
    """Cost constants for the simulated fault handler.

    Defaults give a 4KB soft fault of ~1.6us uncontended and a 2MB
    fault of ~85us (dominated by zeroing 2MB), matching the order of
    magnitude of Linux measurements on Opteron-class hardware.
    """

    base_cost_4k_s: float = 1.6e-6
    base_cost_2m_s: float = 8.5e-5
    base_cost_1g_s: float = 3.0e-2
    #: Additional fractional cost per concurrently faulting thread
    #: (page-table lock contention).
    contention_per_thread: float = 0.35
    #: Cap on the contention multiplier.
    max_contention_multiplier: float = 24.0

    def __post_init__(self) -> None:
        if min(self.base_cost_4k_s, self.base_cost_2m_s, self.base_cost_1g_s) <= 0:
            raise ConfigurationError("fault costs must be positive")
        if self.contention_per_thread < 0:
            raise ConfigurationError("contention_per_thread must be non-negative")
        if self.max_contention_multiplier < 1:
            raise ConfigurationError("max_contention_multiplier must be >= 1")

    def contention_multiplier(self, concurrent_faulting_threads: int) -> float:
        """Lock-contention multiplier given concurrently faulting threads."""
        if concurrent_faulting_threads < 0:
            raise ConfigurationError("thread count must be non-negative")
        extra = max(0, concurrent_faulting_threads - 1)
        return min(
            1.0 + self.contention_per_thread * extra,
            self.max_contention_multiplier,
        )

    def handler_time_s(
        self,
        faults_4k: float,
        faults_2m: float,
        faults_1g: float,
        concurrent_faulting_threads: int,
    ) -> float:
        """Total fault-handler time for one thread-epoch."""
        if min(faults_4k, faults_2m, faults_1g) < 0:
            raise ConfigurationError("fault counts must be non-negative")
        base = (
            faults_4k * self.base_cost_4k_s
            + faults_2m * self.base_cost_2m_s
            + faults_1g * self.base_cost_1g_s
        )
        return base * self.contention_multiplier(concurrent_faulting_threads)
