"""Page-table footprint model.

x86-64 uses a four-level radix page table.  Backing memory with 2MB
pages removes the leaf (PTE) level for those ranges; 1GB pages remove
two levels.  The paper's motivation cites an Oracle installation whose
page tables alone consumed 7GB of RAM — this model quantifies exactly
that effect, and feeds the simulator's page-walk cost (larger tables
mean walk references miss caches more).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.vm.address_space import AddressSpace
from repro.vm.layout import GRANULES_PER_2M, PAGE_4K, PageSize

#: Bytes per page-table entry on x86-64.
PTE_BYTES = 8
#: Entries per page-table page (4KB / 8B).
ENTRIES_PER_TABLE = PAGE_4K // PTE_BYTES  # 512


@dataclass(frozen=True)
class PageTableFootprint:
    """Sizes of each page-table level for one address space."""

    pte_tables: int  # level-1 tables (4KB leaf entries)
    pmd_tables: int  # level-2 tables (2MB leaf entries or PTE pointers)
    pud_tables: int  # level-3 tables
    pgd_tables: int  # level-4 table (always 1 when anything is mapped)

    @property
    def total_tables(self) -> int:
        """Total number of 4KB table pages."""
        return self.pte_tables + self.pmd_tables + self.pud_tables + self.pgd_tables

    @property
    def total_bytes(self) -> int:
        """Total page-table memory in bytes."""
        return self.total_tables * PAGE_4K

    @property
    def leaf_entries(self) -> int:
        """Approximate count of live leaf translations (PTE + PMD + PUD)."""
        return self.pte_tables * ENTRIES_PER_TABLE


class PageTableModel:
    """Derives page-table footprints from an address space.

    A PTE table exists for every 2MB chunk that holds at least one 4KB
    mapping; 2MB-backed chunks are represented directly by a PMD entry
    and need no PTE table.  Upper levels are counted by the number of
    child tables they must point to.
    """

    def footprint(self, address_space: AddressSpace) -> PageTableFootprint:
        """Compute the page-table footprint of an address space."""
        has_pte = address_space.mapped_count_2m > 0
        pte_tables = int(np.count_nonzero(has_pte))
        # PMD entries cover 2MB each: one per PTE table plus one per
        # huge-backed chunk.  512 PMD entries per PMD table.
        pmd_entries_chunks = has_pte | address_space.huge
        # Group 2MB chunks by their parent PMD table (1GB span).
        n_pmd_parents = address_space.n_chunks_1g
        pmd_tables = 0
        for parent in range(n_pmd_parents):
            lo = parent * ENTRIES_PER_TABLE
            hi = min(lo + ENTRIES_PER_TABLE, address_space.n_chunks_2m)
            if address_space.giga[parent] or np.any(pmd_entries_chunks[lo:hi]):
                if not address_space.giga[parent]:
                    pmd_tables += 1
        # PUD entries cover 1GB each: one per PMD table or 1GB page.
        pud_entries = pmd_tables + int(np.count_nonzero(address_space.giga))
        pud_tables = max(1, -(-pud_entries // ENTRIES_PER_TABLE)) if pud_entries else 0
        pgd_tables = 1 if (pud_tables or pud_entries) else 0
        return PageTableFootprint(
            pte_tables=pte_tables,
            pmd_tables=pmd_tables,
            pud_tables=pud_tables,
            pgd_tables=pgd_tables,
        )

    def bytes_for_fully_mapped(
        self, mapped_bytes: int, page_size: PageSize
    ) -> int:
        """Closed-form page-table bytes for a fully mapped flat region.

        Handy for examples (e.g. reproducing the "7GB of page tables"
        motivation): how much table memory does mapping ``mapped_bytes``
        with a uniform page size cost, ignoring sharing?
        """
        if mapped_bytes <= 0:
            return 0
        granules = -(-mapped_bytes // PAGE_4K)
        chunks_2m = -(-granules // GRANULES_PER_2M)
        if page_size is PageSize.SIZE_4K:
            pte = chunks_2m
        else:
            pte = 0
        pmd_entries = chunks_2m if page_size is not PageSize.SIZE_1G else 0
        pmd = -(-pmd_entries // ENTRIES_PER_TABLE) if pmd_entries else 0
        gig_entries = -(-granules // (ENTRIES_PER_TABLE * GRANULES_PER_2M))
        pud = -(-max(pmd, gig_entries) // ENTRIES_PER_TABLE) or 1
        return (pte + pmd + pud + 1) * PAGE_4K

    def footprint_per_process(
        self, mapped_bytes: int, page_size: PageSize, n_processes: int
    ) -> Dict[str, int]:
        """Aggregate table cost for many processes mapping the same region.

        Models the Oracle-style scenario: each of ``n_processes``
        connections maps the shared buffer cache with private tables.
        """
        per_process = self.bytes_for_fully_mapped(mapped_bytes, page_size)
        return {
            "per_process_bytes": per_process,
            "total_bytes": per_process * n_processes,
        }
