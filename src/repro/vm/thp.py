"""Transparent Huge Pages state machine and the khugepaged scanner.

Linux THP has two mechanisms (paper Section 2.1):

* **allocation-time backing** — anonymous faults in an empty, aligned
  2MB range are backed by a huge page when one is available;
* **promotion** — a kernel thread (khugepaged) periodically scans for
  2MB ranges fully populated with 4KB pages and collapses them into
  huge pages (the paper sets the promotion check frequency to 10ms).

Carrefour-LP toggles the two independently: Algorithm 1 re-enables
"2MB page allocation" and "2MB page promotion" separately, and its
split path disables allocation only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.vm.address_space import AddressSpace


@dataclass
class ThpState:
    """Dynamic THP configuration, mutated by Carrefour-LP at runtime."""

    alloc_enabled: bool = True
    promotion_enabled: bool = True
    #: Chunks scanned per khugepaged invocation.
    scan_batch: int = 512
    #: Cursor so successive scans cover the whole space round-robin.
    _scan_cursor: int = field(default=0, repr=False)

    def disable_alloc(self) -> None:
        """Stop backing new faults with huge pages."""
        self.alloc_enabled = False

    def enable_alloc(self) -> None:
        """Resume backing new faults with huge pages."""
        self.alloc_enabled = True

    def disable_promotion(self) -> None:
        """Stop khugepaged collapses."""
        self.promotion_enabled = False

    def enable_promotion(self) -> None:
        """Resume khugepaged collapses."""
        self.promotion_enabled = True


def khugepaged_scan(
    state: ThpState,
    address_space: AddressSpace,
    max_collapses: Optional[int] = None,
) -> int:
    """One khugepaged pass: collapse eligible 2MB chunks.

    Scans ``state.scan_batch`` chunks starting at the saved cursor and
    collapses every fully 4KB-mapped chunk (to the plurality node of
    its constituent pages).  Returns the number of collapses performed.
    """
    if not state.promotion_enabled:
        return 0
    n_chunks = address_space.n_chunks_2m
    if n_chunks == 0:
        return 0
    start = state._scan_cursor % n_chunks
    indices = (start + np.arange(min(state.scan_batch, n_chunks))) % n_chunks
    state._scan_cursor = int((start + len(indices)) % n_chunks)
    collapsed = 0
    from repro.vm.layout import GRANULES_PER_2M

    eligible = indices[
        (~address_space.huge[indices])
        & (address_space.mapped_count_2m[indices] == GRANULES_PER_2M)
    ]
    for chunk in eligible:
        if max_collapses is not None and collapsed >= max_collapses:
            break
        if address_space.collapse_chunk(int(chunk)):
            collapsed += 1
    return collapsed
