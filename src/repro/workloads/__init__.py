"""Synthetic models of the paper's benchmark applications.

Each benchmark is modelled as a set of memory *regions* with
characteristic access patterns (per-thread partitions, shared
zipf-skewed heaps, compact hot arrays, growing streams) plus a cost
profile (instruction rate, memory intensity).  The parameters are
chosen so that the *published traits* of each benchmark emerge: the
hot-page effect for CG, page-level false sharing for UA, TLB pressure
for SSCA and WC, allocation storms for the Metis suite, and so on.
See ``DESIGN.md`` section 6 for the modelling rationale.
"""

from repro.workloads.base import (
    CostProfile,
    FaultBatch,
    TlbGroup,
    Workload,
    WorkloadInstance,
)
from repro.workloads.regions import (
    HotRegion,
    PartitionedRegion,
    Region,
    SharedRegion,
    StreamRegion,
)
from repro.workloads.registry import available_workloads, get_workload
from repro.workloads.streambank import (
    StreamBank,
    clear_stream_banks,
    get_stream_bank,
    stream_bank_enabled,
)
from repro.workloads.trace import TraceData, TraceRecorder, TraceWorkloadInstance

__all__ = [
    "CostProfile",
    "FaultBatch",
    "TlbGroup",
    "Workload",
    "WorkloadInstance",
    "Region",
    "PartitionedRegion",
    "SharedRegion",
    "HotRegion",
    "StreamRegion",
    "available_workloads",
    "get_workload",
    "TraceData",
    "TraceRecorder",
    "TraceWorkloadInstance",
    "StreamBank",
    "clear_stream_banks",
    "get_stream_bank",
    "stream_bank_enabled",
]
