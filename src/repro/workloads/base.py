"""Workload abstractions: cost profiles, TLB geometry, instances.

A :class:`Workload` is a named factory; instantiating it for a machine
produces a :class:`WorkloadInstance` that the simulation engine drives:

* :meth:`WorkloadInstance.premap_epoch` materialises first-touch
  allocation (the allocation phase, and growth for streaming regions),
  returning per-thread page-fault counts;
* :meth:`WorkloadInstance.epoch_stream` yields each thread's sampled
  DRAM-access stream for an epoch;
* :meth:`WorkloadInstance.tlb_groups` describes each thread's working
  set analytically (grouped popularity + extent geometry) so the TLB
  model can be evaluated against the *current backing state* without
  materialising billions of accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import rng_for
from repro.errors import ConfigurationError
from repro.hardware.topology import NumaTopology
from repro.vm.address_space import AddressSpace
from repro.vm.layout import GRANULES_PER_2M


@dataclass(frozen=True)
class CostProfile:
    """Per-thread, per-epoch execution-cost constants at reference speed.

    Attributes
    ----------
    cpu_seconds:
        Base compute time per epoch (work off the memory system).
    mem_accesses:
        Total memory references per epoch (drives TLB pressure).
    dram_accesses:
        References that reach DRAM per epoch (drives traffic and
        latency stalls); also the count of L2 data misses.
    instructions:
        Instructions per epoch (reporting only).
    mlp:
        Memory-level parallelism: how many DRAM accesses overlap, i.e.
        the divisor turning latency x accesses into stall time.
    """

    cpu_seconds: float
    mem_accesses: float
    dram_accesses: float
    instructions: float = 0.0
    mlp: float = 4.0

    def __post_init__(self) -> None:
        if self.cpu_seconds < 0 or self.mem_accesses < 0 or self.dram_accesses < 0:
            raise ConfigurationError("cost profile values must be non-negative")
        if self.dram_accesses > self.mem_accesses:
            raise ConfigurationError("DRAM accesses cannot exceed memory accesses")
        if self.mlp <= 0:
            raise ConfigurationError("mlp must be positive")


@dataclass(frozen=True)
class TlbGroup:
    """One group of equally popular pages in a thread's working set.

    ``distinct_4k`` / ``distinct_2m`` / ``distinct_1g`` give the number
    of distinct translations the group would need if its extent were
    entirely backed by that page size; the engine interpolates using
    the extent's actual backing composition.

    ``run_length`` is the group's spatial locality: the average number
    of consecutive accesses that land in the same 4KB page.  Sequential
    numeric sweeps have long runs (hundreds — one TLB fill serves the
    whole page) while pointer-chasing workloads have runs near 1 (every
    access needs a fresh translation); this is the knob that separates
    TLB-bound applications (SSCA, SPECjbb) from dense HPC kernels.
    """

    lo: int
    hi: int
    weight: float
    distinct_4k: float
    distinct_2m: float
    distinct_1g: float
    run_length: float = 1.0
    #: Whether page visits proceed in address order (sequential sweep).
    #: Sequential groups keep visiting the *same* large page for many
    #: consecutive 4KB-page runs, multiplying the effective run length
    #: at larger page sizes; random-order groups do not.
    sequential: bool = False

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise ConfigurationError("invalid TLB group extent")
        if self.weight < 0:
            raise ConfigurationError("TLB group weight must be non-negative")
        if min(self.distinct_4k, self.distinct_2m, self.distinct_1g) < 0:
            raise ConfigurationError("distinct page counts must be non-negative")
        if self.run_length < 1.0:
            raise ConfigurationError("run_length must be >= 1")


@dataclass
class FaultBatch:
    """Per-thread page-fault counts from one premap/growth operation."""

    faults_4k: np.ndarray
    faults_2m: np.ndarray
    faults_1g: np.ndarray

    @classmethod
    def zeros(cls, n_threads: int) -> "FaultBatch":
        """A batch with no faults for ``n_threads`` threads."""
        return cls(
            faults_4k=np.zeros(n_threads, dtype=np.float64),
            faults_2m=np.zeros(n_threads, dtype=np.float64),
            faults_1g=np.zeros(n_threads, dtype=np.float64),
        )

    def merge(self, other: "FaultBatch") -> None:
        """Accumulate another batch's counts."""
        self.faults_4k += other.faults_4k
        self.faults_2m += other.faults_2m
        self.faults_1g += other.faults_1g

    @property
    def total(self) -> float:
        """Total faults of any size across threads."""
        return float(
            self.faults_4k.sum() + self.faults_2m.sum() + self.faults_1g.sum()
        )

    def faulting_threads(self) -> int:
        """Number of threads that incurred at least one fault."""
        any_fault = (self.faults_4k + self.faults_2m + self.faults_1g) > 0
        return int(np.count_nonzero(any_fault))


class WorkloadInstance:
    """A workload bound to a machine: regions laid out, costs fixed."""

    def __init__(
        self,
        name: str,
        machine: NumaTopology,
        regions: Sequence["Region"],
        cost: CostProfile,
        total_epochs: int,
        seed: int = 0,
        n_threads: Optional[int] = None,
        backing_1g: bool = False,
    ) -> None:
        from repro.workloads.regions import Region  # cycle guard

        if total_epochs <= 0:
            raise ConfigurationError("total_epochs must be positive")
        if not regions:
            raise ConfigurationError("a workload needs at least one region")
        self.name = name
        self.machine = machine
        self.cost = cost
        self.total_epochs = int(total_epochs)
        self.seed = seed
        self.n_threads = n_threads if n_threads is not None else machine.n_cores
        if not 0 < self.n_threads <= machine.n_cores:
            raise ConfigurationError(
                f"n_threads {self.n_threads} must be in 1..{machine.n_cores}"
            )
        self.backing_1g = backing_1g
        self.regions: List[Region] = list(regions)

        align = (1 << 18) if backing_1g else GRANULES_PER_2M
        cursor = 0
        for region in self.regions:
            if not isinstance(region, Region):
                raise ConfigurationError(f"{region!r} is not a Region")
            region.bind(self, cursor, align)
            cursor = region.hi
            # Keep regions in separate chunks so page-level sharing only
            # arises from the access pattern, never from packing.
            cursor = -(-cursor // align) * align
        self.n_granules = max(cursor, align)

        total_share = sum(r.access_share for r in self.regions)
        if total_share <= 0:
            raise ConfigurationError("total region access share must be positive")
        self._norm_shares = [r.access_share / total_share for r in self.regions]
        # Shares are immutable after bind; keep the array form (and the
        # per-length floor/deficit split derived from it) precomputed so
        # the per-(thread, epoch) hot path never rebuilds them.
        self._shares_array = np.asarray(self._norm_shares, dtype=np.float64)
        self._counts_base: dict = {}
        # CDF form of the shares: ``rng.choice(k, p=shares)`` rebuilds
        # this cumsum per call; ``searchsorted`` over the stored CDF
        # consumes the same uniform draws and picks identical indices.
        shares_cdf = self._shares_array.cumsum()
        shares_cdf /= shares_cdf[-1]
        self._shares_cdf = shares_cdf
        # TLB group lists memoized per (thread, per-region epoch keys):
        # most regions' geometry never changes across epochs, so one
        # list object serves every epoch (and downstream memos can
        # compare it by identity).
        self._tlb_groups_cache: dict = {}

    # ------------------------------------------------------------------
    # Engine-facing API
    # ------------------------------------------------------------------
    def thread_node(self, thread: int) -> int:
        """NUMA node of the core running a thread (threads pinned 1:1)."""
        return self.machine.node_of_core(thread)

    def premap_epoch(
        self,
        epoch: int,
        address_space: AddressSpace,
        thread_nodes: np.ndarray,
        thp_alloc: bool,
        interleave: bool = False,
    ) -> FaultBatch:
        """Allocation work for this epoch, across regions.

        ``interleave`` places new memory round-robin across nodes
        (numactl --interleave) instead of first-touch.
        """
        batch = FaultBatch.zeros(self.n_threads)
        for region in self.regions:
            batch.merge(
                region.premap_epoch(
                    epoch, address_space, thread_nodes, thp_alloc, interleave
                )
            )
        return batch

    def epoch_stream(
        self, thread: int, epoch: int, rng: np.random.Generator, length: int
    ) -> np.ndarray:
        """Sampled DRAM-access stream (granule indices) for a thread-epoch."""
        granules, _ = self.epoch_stream_with_writes(thread, epoch, rng, length)
        return granules

    def epoch_stream_with_writes(
        self, thread: int, epoch: int, rng: np.random.Generator, length: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Access stream plus a per-access store mask.

        The store mask follows each region's ``write_fraction``; the
        replication machinery needs it to tell read-mostly pages apart.
        """
        if not 0 <= thread < self.n_threads:
            raise ConfigurationError(f"thread {thread} out of range")
        if length <= 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        counts = self._region_counts(length, rng)
        parts = []
        write_parts = []
        for region, n in zip(self.regions, counts):
            if n <= 0:
                continue
            part = region.sample(thread, int(n), epoch, rng)
            if part.size:
                parts.append(part)
                if region.write_fraction <= 0.0:
                    write_parts.append(np.zeros(part.size, dtype=bool))
                else:
                    write_parts.append(rng.random(part.size) < region.write_fraction)
        if not parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        return np.concatenate(parts), np.concatenate(write_parts)

    def epoch_stream_into(
        self,
        thread: int,
        epoch: int,
        rng: np.random.Generator,
        length: int,
        out_granules: np.ndarray,
        out_writes: np.ndarray,
    ) -> int:
        """Batched-assembly variant of :meth:`epoch_stream_with_writes`.

        Draws from ``rng`` in exactly the same order but writes the
        stream directly into the caller's preallocated row buffers (the
        stream-bank arrays) instead of concatenating per-region parts.
        ``out_writes`` must arrive zeroed (regions with
        ``write_fraction <= 0`` rely on it).  Returns the stream size;
        entries past it are left untouched.
        """
        if not 0 <= thread < self.n_threads:
            raise ConfigurationError(f"thread {thread} out of range")
        if length <= 0:
            return 0
        counts = self._region_counts(length, rng)
        pos = 0
        for region, n in zip(self.regions, counts):
            if n <= 0:
                continue
            size = region.sample_into(
                thread, int(n), epoch, rng, out_granules[pos : pos + int(n)]
            )
            if size:
                if region.write_fraction > 0.0:
                    out_writes[pos : pos + size] = (
                        rng.random(size) < region.write_fraction
                    )
                pos += size
        return pos

    def _region_counts(self, length: int, rng: np.random.Generator) -> np.ndarray:
        base = self._counts_base.get(length)
        if base is None:
            floor_counts = np.floor(self._shares_array * length).astype(np.int64)
            base = (floor_counts, length - int(floor_counts.sum()))
            self._counts_base[length] = base
        counts = base[0].copy()
        deficit = base[1]
        if deficit > 0:
            extra = self._shares_cdf.searchsorted(rng.random(deficit), side="right")
            np.add.at(counts, extra, 1)
        return counts

    def tlb_groups(self, thread: int, epoch: int) -> List[TlbGroup]:
        """Analytic working-set description of a thread for the TLB model.

        Lists are memoized per ``(thread, epoch key)`` — see
        :meth:`Region.tlb_epoch_key` — and shared with callers, who
        must treat them as immutable.  Repeated calls with an unchanged
        key return the *same* list object, so the engine's per-thread
        TLB memo can compare group lists by identity.
        """
        key = (thread, tuple(r.tlb_epoch_key(epoch) for r in self.regions))
        groups = self._tlb_groups_cache.get(key)
        if groups is None:
            groups = []
            for region, share in zip(self.regions, self._norm_shares):
                groups.extend(region.tlb_groups(thread, epoch, share))
            self._tlb_groups_cache[key] = groups
        return groups

    def stream_rng(self, thread: int, epoch: int) -> np.random.Generator:
        """Deterministic RNG for one thread-epoch's stream."""
        return rng_for(self.seed, self.name, "stream", thread, epoch)

    def with_1g_backing(self) -> "WorkloadInstance":
        """A copy of this instance backed by 1GB pages (hugetlbfs mode).

        Regions are re-bound with 1GB alignment; used by the paper's
        Section 4.4 very-large-page study.
        """
        return WorkloadInstance(
            name=self.name,
            machine=self.machine,
            regions=self.regions,
            cost=self.cost,
            total_epochs=self.total_epochs,
            seed=self.seed,
            n_threads=self.n_threads,
            backing_1g=True,
        )

    def region_named(self, name: str) -> "Region":
        """Look up a region by name (test and example helper)."""
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r} in {self.name}")


@dataclass(frozen=True)
class Workload:
    """A named workload factory.

    ``builder(machine, scale, seed)`` returns a fresh
    :class:`WorkloadInstance`; ``scale`` in (0, 1] shrinks footprints
    and epoch counts for quick runs while preserving the pattern
    structure.
    """

    name: str
    description: str
    builder: Callable[[NumaTopology, float, int], WorkloadInstance]
    suite: str = "misc"
    tags: tuple = field(default_factory=tuple)

    def instantiate(
        self, machine: NumaTopology, scale: float = 1.0, seed: int = 0
    ) -> WorkloadInstance:
        """Build an instance of this workload for a machine."""
        if not 0 < scale <= 1.0:
            raise ConfigurationError("scale must be in (0, 1]")
        return self.builder(machine, scale, seed)
