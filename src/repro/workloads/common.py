"""Shared helpers for benchmark model definitions."""

from __future__ import annotations

from repro.hardware.mem_controller import MemoryControllerModel
from repro.hardware.topology import NumaTopology
from repro.workloads.base import CostProfile

#: Reference epoch length the cost profiles are calibrated against.
EPOCH_S = 0.25

MIB = 1024 * 1024
GIB = 1024 * MIB


def reference_cost(
    machine: NumaTopology,
    rho: float,
    cpu_s: float = 0.08,
    dram_to_mem: float = 30.0,
    mlp: float = 4.0,
) -> CostProfile:
    """Cost profile hitting a target aggregate controller utilisation.

    ``rho`` is the machine-wide memory-controller utilisation the
    workload would impose if its traffic were perfectly balanced; the
    per-thread DRAM intensity is derived from the controller capacity
    so the same *pressure* is exerted on both machines despite their
    different core counts.
    """
    capacity = MemoryControllerModel().capacity_requests_per_sec
    dram = rho * machine.n_nodes * capacity * EPOCH_S / machine.n_cores
    mem = dram * dram_to_mem
    return CostProfile(
        cpu_seconds=cpu_s,
        mem_accesses=mem,
        dram_accesses=dram,
        instructions=mem * 4.0,
        mlp=mlp,
    )


def epochs_for(scale: float, base: int = 40, floor: int = 16) -> int:
    """Number of work epochs, shrunk with the scale factor."""
    return max(floor, round(base * scale))


def scaled_bytes(n_bytes: float, scale: float, floor: int = 4 * MIB) -> int:
    """Scale a footprint, keeping at least ``floor`` bytes."""
    return int(max(n_bytes * scale, floor))
