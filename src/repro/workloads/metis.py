"""Models of the Metis MapReduce benchmarks (WC, WR, wrmem, kmeans,
matrixmultiply, pca).

Metis maps input files, runs map tasks that insert into a shared hash
table, then reduces.  The defining VM traits the paper reports:

* **WC (wordcount)** spends 37.6% of its time in the page-fault
  handler at 4KB (allocation storm while ingesting and inserting) and
  more than doubles with THP; its memory-controller traffic is wildly
  imbalanced under both page sizes (imbalance ~140%) because the
  master-allocated hash table concentrates on one node.
* **WR (wordreverse)** is a milder WC.
* **wrmem** generates its input in memory: large allocation phase,
  big THP win, but THP skews its NUMA metrics (it is in the paper's
  "affected" set) — its intermediate table is hot and clustered.
* **matrixmultiply** is blocked and locality-friendly; THP slightly
  disturbs its balance (affected set, small effects).
* **kmeans** has small shared centroids and partitioned points:
  neutral.
* **pca** master-initialises its matrix: a pre-existing NUMA problem
  that the Carrefour component of Carrefour-LP fixes at any page size
  (Figure 5's large gains).
"""

from __future__ import annotations

from repro.hardware.topology import NumaTopology
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.common import (
    GIB,
    MIB,
    epochs_for,
    reference_cost,
    scaled_bytes,
)
from repro.workloads.regions import (
    PartitionedRegion,
    SharedRegion,
    StreamRegion,
)


def _wc(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    total_epochs = epochs_for(scale)
    regions = [
        # Input ingest + intermediate pairs: keeps growing all run.
        StreamRegion(
            "ingest",
            bytes_per_thread=scaled_bytes(224 * MIB, scale),
            access_share=0.50,
            grow_epochs=max(2, (total_epochs * 4) // 5),
            window_bytes=scaled_bytes(24 * MIB, scale),
            recency=0.75,
        ),
        # Hash table allocated by the master thread: one hot node.
        SharedRegion(
            "hash-table",
            total_bytes=scaled_bytes(1.5 * GIB, scale),
            access_share=0.50,
            zipf_s=0.7,
            clustered=False,
            master_init=True,
            tlb_run_length=115.0,
        ),
    ]
    return WorkloadInstance(
        name="WC",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.45, cpu_s=0.05, dram_to_mem=40.0),
        total_epochs=total_epochs,
        seed=seed,
    )


def _wr(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    total_epochs = epochs_for(scale)
    regions = [
        StreamRegion(
            "ingest",
            bytes_per_thread=scaled_bytes(128 * MIB, scale),
            access_share=0.55,
            grow_epochs=max(2, (total_epochs * 3) // 5),
            window_bytes=scaled_bytes(16 * MIB, scale),
            recency=0.75,
        ),
        SharedRegion(
            "reverse-index",
            total_bytes=scaled_bytes(1.0 * GIB, scale),
            access_share=0.45,
            zipf_s=0.6,
            clustered=False,
            master_init=True,
            tlb_run_length=200.0,
        ),
    ]
    return WorkloadInstance(
        name="WR",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.40, cpu_s=0.07, dram_to_mem=35.0),
        total_epochs=total_epochs,
        seed=seed,
    )


def _wrmem(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    total_epochs = epochs_for(scale)
    regions = [
        # Input is generated in memory: one large allocation phase.
        StreamRegion(
            "generated-input",
            bytes_per_thread=scaled_bytes(192 * MIB, scale),
            access_share=0.55,
            grow_epochs=max(2, total_epochs // 3),
            window_bytes=scaled_bytes(32 * MIB, scale),
            recency=0.7,
        ),
        # Hot intermediate table, clustered: THP skews its placement.
        SharedRegion(
            "intermediate",
            total_bytes=scaled_bytes(768 * MIB, scale),
            access_share=0.45,
            zipf_s=0.55,
            clustered=True,
            stripe_bytes=32 * 1024,
            tlb_run_length=110.0,
        ),
    ]
    return WorkloadInstance(
        name="wrmem",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.42, cpu_s=0.05, dram_to_mem=42.0),
        total_epochs=total_epochs,
        seed=seed,
    )


def _matrixmultiply(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        PartitionedRegion(
            "tiles",
            bytes_per_thread=scaled_bytes(32 * MIB, scale),
            access_share=0.70,
            contiguous=True,
        ),
        # Result matrix written through a clustered shared region.
        SharedRegion(
            "result",
            total_bytes=scaled_bytes(512 * MIB, scale),
            access_share=0.30,
            zipf_s=0.6,
            clustered=True,
            tlb_run_length=350.0,
        ),
    ]
    return WorkloadInstance(
        name="MatrixMultiply",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.35, cpu_s=0.12, dram_to_mem=30.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


def _kmeans(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        PartitionedRegion(
            "points",
            bytes_per_thread=scaled_bytes(48 * MIB, scale),
            access_share=0.96,
            contiguous=True,
        ),
        # Centroids are tiny and cache-resident: nearly invisible to
        # the memory system regardless of page size.
        SharedRegion(
            "centroids",
            total_bytes=scaled_bytes(8 * MIB, scale, floor=8 * MIB),
            access_share=0.04,
            clustered=False,
            write_fraction=0.0,
        ),
    ]
    return WorkloadInstance(
        name="Kmeans",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.25, cpu_s=0.15, dram_to_mem=30.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


def _pca(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        # Matrix allocated and filled by the master before the
        # parallel phase: the textbook pre-existing NUMA problem.
        SharedRegion(
            "matrix",
            total_bytes=scaled_bytes(2.0 * GIB, scale),
            access_share=0.9,
            master_init=True,
            tlb_run_length=600.0,
            write_fraction=0.02,
        ),
        PartitionedRegion(
            "partial-sums",
            bytes_per_thread=scaled_bytes(2 * MIB, scale, floor=1 * MIB),
            access_share=0.1,
            contiguous=True,
        ),
    ]
    return WorkloadInstance(
        name="pca",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.55, cpu_s=0.05, dram_to_mem=25.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


METIS_WORKLOADS = [
    Workload("WC", "Metis wordcount (page-fault bound, THP doubles it)", _wc, suite="metis"),
    Workload("WR", "Metis wordreverse", _wr, suite="metis"),
    Workload("Kmeans", "Metis k-means clustering", _kmeans, suite="metis"),
    Workload("MatrixMultiply", "Metis blocked matrix multiply", _matrixmultiply, suite="metis"),
    Workload("pca", "Metis principal component analysis", _pca, suite="metis"),
    Workload("wrmem", "Metis wordreverse with in-memory input", _wrmem, suite="metis"),
]
