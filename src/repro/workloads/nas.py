"""Models of the NAS Parallel Benchmarks used in the paper.

The paper runs BT.B, CG.D, DC.A, EP.C, FT.C, IS.D, LU.B, MG.D, SP.B,
UA.B and UA.C on both machines.  Each model below encodes the traits
the paper measures for that benchmark (Table 1/2 and Figures 1-5):

* **CG** — memory-intensive sparse solver, LAR ~40-45%, perfectly
  balanced controllers at 4KB, but its heavily accessed vectors fit in
  ~3 huge pages: the *hot-page effect* (NHP=3, PAMUP 0%->8%).
* **UA** — unstructured adaptive mesh with per-thread element lists
  interleaved at sub-2MB granularity: LAR ~90% at 4KB, massive
  *page-level false sharing* under THP (PSP 16%->70%, LAR ->61-66%).
* **LU** — well-partitioned stencil with a shared boundary structure;
  mildly affected, and the case where Carrefour-2M's large-page
  migrations cost measurable overhead.
* **EP / SP** — master-initialised shared state: pre-existing NUMA
  issues at any page size, fixed by the Carrefour component.
* **BT / DC / FT / IS / MG** — neutral with respect to THP-induced
  NUMA trouble (Figure 5 set): compute-bound, I/O-ish, or naturally
  balanced; FT and IS have large allocation phases.
"""

from __future__ import annotations

from repro.hardware.topology import NumaTopology
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.common import (
    GIB,
    MIB,
    epochs_for,
    reference_cost,
    scaled_bytes,
)
from repro.workloads.regions import (
    HotRegion,
    PartitionedRegion,
    SharedRegion,
    StreamRegion,
)


def _cg(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        # The handful of heavily accessed solver vectors: ~3 x 2MB.
        HotRegion("hot-vectors", total_bytes=6 * MIB, access_share=0.30),
        # Per-thread matrix slabs: contiguous, local after first touch.
        PartitionedRegion(
            "matrix-slabs",
            bytes_per_thread=scaled_bytes(64 * MIB, scale),
            access_share=0.37,
            contiguous=True,
        ),
        # Sparse index structure shared by everyone.
        SharedRegion(
            "sparse-index",
            total_bytes=scaled_bytes(1.5 * GIB, scale),
            access_share=0.33,
            zipf_s=0.0,
            clustered=False,
            tlb_run_length=800.0,
        ),
    ]
    return WorkloadInstance(
        name="CG.D",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.55, cpu_s=0.06, dram_to_mem=25.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


def _ua(class_name: str, footprint_per_thread: int):
    def build(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
        regions = [
            # Per-thread element lists, interleaved in 512KB blocks:
            # high locality at 4KB, false sharing at 2MB.
            PartitionedRegion(
                "elements",
                bytes_per_thread=scaled_bytes(footprint_per_thread, scale),
                access_share=0.92,
                block_bytes=512 * 1024,
                neighbor_share=0.08,
            ),
            SharedRegion(
                "mesh-metadata",
                total_bytes=scaled_bytes(192 * MIB, scale),
                access_share=0.08,
                clustered=False,
            ),
        ]
        return WorkloadInstance(
            name=f"UA.{class_name}",
            machine=machine,
            regions=regions,
            cost=reference_cost(machine, rho=0.40, cpu_s=0.09, dram_to_mem=28.0),
            total_epochs=epochs_for(scale),
            seed=seed,
        )

    return build


def _lu(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        PartitionedRegion(
            "blocks",
            bytes_per_thread=scaled_bytes(48 * MIB, scale),
            access_share=0.72,
            contiguous=True,
        ),
        SharedRegion(
            "boundaries",
            total_bytes=scaled_bytes(768 * MIB, scale),
            access_share=0.28,
            zipf_s=0.5,
            clustered=True,
            tlb_run_length=350.0,
        ),
    ]
    return WorkloadInstance(
        name="LU.B",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.42, cpu_s=0.10, dram_to_mem=30.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


def _ep(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        # Master-initialised tables: everything on node 0 under default
        # Linux (a pre-existing NUMA problem at any page size).
        SharedRegion(
            "random-tables",
            total_bytes=scaled_bytes(384 * MIB, scale),
            access_share=0.85,
            master_init=True,
            tlb_run_length=500.0,
            write_fraction=0.0,
        ),
        PartitionedRegion(
            "private-state",
            bytes_per_thread=scaled_bytes(2 * MIB, scale, floor=1 * MIB),
            access_share=0.15,
            contiguous=True,
        ),
    ]
    return WorkloadInstance(
        name="EP.C",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.35, cpu_s=0.16, dram_to_mem=40.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


def _sp(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        SharedRegion(
            "grids",
            total_bytes=scaled_bytes(1.0 * GIB, scale),
            access_share=0.55,
            master_init=True,
            tlb_run_length=500.0,
        ),
        PartitionedRegion(
            "slabs",
            bytes_per_thread=scaled_bytes(24 * MIB, scale),
            access_share=0.45,
            contiguous=True,
        ),
    ]
    return WorkloadInstance(
        name="SP.B",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.40, cpu_s=0.11, dram_to_mem=32.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


def _bt(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        PartitionedRegion(
            "blocks",
            bytes_per_thread=scaled_bytes(40 * MIB, scale),
            access_share=0.9,
            contiguous=True,
        ),
        SharedRegion(
            "faces",
            total_bytes=scaled_bytes(256 * MIB, scale),
            access_share=0.1,
            clustered=False,
            tlb_run_length=250.0,
        ),
    ]
    return WorkloadInstance(
        name="BT.B",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.30, cpu_s=0.14, dram_to_mem=35.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


def _dc(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        StreamRegion(
            "tuples",
            bytes_per_thread=scaled_bytes(96 * MIB, scale),
            access_share=0.6,
            grow_epochs=epochs_for(scale) // 2,
            window_bytes=scaled_bytes(16 * MIB, scale),
        ),
        SharedRegion(
            "cube-index",
            total_bytes=scaled_bytes(256 * MIB, scale),
            access_share=0.4,
            zipf_s=0.8,
            clustered=False,
            tlb_run_length=250.0,
        ),
    ]
    return WorkloadInstance(
        name="DC.A",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.20, cpu_s=0.16, dram_to_mem=25.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


def _ft(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        PartitionedRegion(
            "fft-planes",
            bytes_per_thread=scaled_bytes(80 * MIB, scale),
            access_share=0.8,
            contiguous=True,
        ),
        SharedRegion(
            "transpose-buffer",
            total_bytes=scaled_bytes(1.0 * GIB, scale),
            access_share=0.2,
            clustered=False,
            tlb_run_length=400.0,
        ),
    ]
    return WorkloadInstance(
        name="FT.C",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.45, cpu_s=0.09, dram_to_mem=26.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


def _is(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    # IS.D is the suite's biggest footprint (34GB on machine B): a
    # bucket sort streaming over huge key arrays.
    regions = [
        StreamRegion(
            "keys",
            bytes_per_thread=scaled_bytes(384 * MIB, scale),
            access_share=0.7,
            grow_epochs=0,
            window_bytes=scaled_bytes(64 * MIB, scale),
            recency=0.8,
        ),
        SharedRegion(
            "buckets",
            total_bytes=scaled_bytes(512 * MIB, scale),
            access_share=0.3,
            clustered=False,
            tlb_run_length=300.0,
        ),
    ]
    return WorkloadInstance(
        name="IS.D",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.50, cpu_s=0.06, dram_to_mem=15.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


def _mg(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        PartitionedRegion(
            "grid-levels",
            bytes_per_thread=scaled_bytes(56 * MIB, scale),
            access_share=0.90,
            contiguous=True,
        ),
        SharedRegion(
            "coarse-grids",
            total_bytes=scaled_bytes(256 * MIB, scale, floor=128 * MIB),
            access_share=0.10,
            clustered=False,
        ),
    ]
    return WorkloadInstance(
        name="MG.D",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.38, cpu_s=0.10, dram_to_mem=24.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


NAS_WORKLOADS = [
    Workload("BT.B", "NAS block tri-diagonal solver, class B", _bt, suite="nas"),
    Workload("CG.D", "NAS conjugate gradient, class D (hot-page effect)", _cg, suite="nas"),
    Workload("DC.A", "NAS data cube, class A", _dc, suite="nas"),
    Workload("EP.C", "NAS embarrassingly parallel, class C", _ep, suite="nas"),
    Workload("FT.C", "NAS 3-D FFT, class C", _ft, suite="nas"),
    Workload("IS.D", "NAS integer sort, class D (34GB footprint)", _is, suite="nas"),
    Workload("LU.B", "NAS LU solver, class B", _lu, suite="nas"),
    Workload("MG.D", "NAS multigrid, class D", _mg, suite="nas"),
    Workload("SP.B", "NAS scalar penta-diagonal solver, class B", _sp, suite="nas"),
    Workload("UA.B", "NAS unstructured adaptive, class B (false sharing)", _ua("B", 32 * MIB), suite="nas"),
    Workload("UA.C", "NAS unstructured adaptive, class C (false sharing)", _ua("C", 72 * MIB), suite="nas"),
]
