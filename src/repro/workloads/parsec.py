"""Model of PARSEC streamcluster (used only in the paper's Section 4.4).

The PARSEC suite showed no THP-vs-4KB differences at 2MB (footnote 6),
so only streamcluster appears in the paper — in the very-large-page
study, where backing it with 1GB pages collapses its per-thread point
blocks onto one or two NUMA nodes and performance drops by a factor
of ~4.  At 4KB or 2MB the workload is well partitioned and balanced.
"""

from __future__ import annotations

from repro.hardware.topology import NumaTopology
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.common import GIB, MIB, epochs_for, reference_cost, scaled_bytes
from repro.workloads.regions import PartitionedRegion, SharedRegion


def _streamcluster(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        # Per-thread point blocks: nicely partitioned at 4KB/2MB, but a
        # 1GB page swallows many threads' blocks at once.
        PartitionedRegion(
            "points",
            bytes_per_thread=scaled_bytes(40 * MIB, scale),
            access_share=0.88,
            block_bytes=4 * MIB,
            neighbor_share=0.02,
        ),
        SharedRegion(
            "centers",
            total_bytes=scaled_bytes(128 * MIB, scale, floor=64 * MIB),
            access_share=0.12,
            clustered=False,
        ),
    ]
    return WorkloadInstance(
        name="streamcluster",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.50, cpu_s=0.06, dram_to_mem=25.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


PARSEC_WORKLOADS = [
    Workload(
        "streamcluster",
        "PARSEC streamcluster (used in the 1GB-page study)",
        _streamcluster,
        suite="parsec",
    )
]
