"""Region primitives that compose into benchmark models.

Each region owns a contiguous granule extent inside the workload's
address space and defines three things:

* a **first-touch pattern** (which thread faults which granule first —
  this is what determines NUMA placement under Linux's default policy);
* an **access distribution** (who reads what, how often, how skewed);
* its **TLB geometry** (how many distinct translations a thread needs
  at each backing granularity).

Four region kinds cover the paper's benchmark traits:

:class:`PartitionedRegion`
    Per-thread data interleaved in small blocks — the source of
    page-level *false sharing* under 2MB pages (UA).
:class:`SharedRegion`
    A heap shared by all threads with optional zipf skew — clustered
    skew concentrates traffic on few 2MB chunks (SPECjbb imbalance).
:class:`HotRegion`
    A compact, uniformly hot array — coalesces into fewer hot 2MB
    pages than NUMA nodes (CG's *hot-page effect*).
:class:`StreamRegion`
    Per-thread streams that may keep growing — allocation-storm and
    TLB-pressure behaviour (Metis WC/WR/wrmem, SSCA).
"""

from __future__ import annotations

import math
from typing import List, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, MappingError
from repro.vm.address_space import AddressSpace
from repro.vm.layout import (
    GRANULES_PER_1G,
    GRANULES_PER_2M,
    PAGE_4K,
    SHIFT_1G,
    SHIFT_2M,
)
from repro.workloads.base import FaultBatch, TlbGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.base import WorkloadInstance

_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _hash_owner(indices: np.ndarray, n_threads: int, salt: int) -> np.ndarray:
    """Deterministic pseudo-random owner assignment for stripes/chunks."""
    x = indices.astype(np.uint64) + np.uint64(salt)
    x = (x * _HASH_MULT) >> np.uint64(29)
    return (x % np.uint64(n_threads)).astype(np.int64)


def granules_of(n_bytes: int) -> int:
    """Granules covering ``n_bytes`` (rounded up, at least 1)."""
    if n_bytes <= 0:
        raise ConfigurationError("region sizes must be positive")
    return max(1, -(-n_bytes // PAGE_4K))


class Region:
    """Base region: extent bookkeeping and premap helpers."""

    #: Fraction of this region's accesses that are stores.  Subclasses
    #: and workload specs override it; the replication logic only
    #: replicates pages whose samples contain no stores.
    write_fraction: float = 0.25

    def __init__(self, name: str, access_share: float) -> None:
        if access_share < 0:
            raise ConfigurationError("access_share must be non-negative")
        self.name = name
        self.access_share = access_share
        self.lo = -1
        self.hi = -1
        self.n_threads = 0
        self.backing_1g = False
        self.seed = 0

    # -- binding -------------------------------------------------------
    def logical_granules(self) -> int:
        """Granules the access pattern addresses (pre-alignment)."""
        raise NotImplementedError

    def bind(self, instance: "WorkloadInstance", lo: int, align: int) -> None:
        """Place the region at granule ``lo`` and finish construction."""
        self.n_threads = instance.n_threads
        self.backing_1g = instance.backing_1g
        self.seed = instance.seed
        self.lo = lo
        logical = self.logical_granules()
        rounded = -(-logical // align) * align
        self.hi = lo + rounded
        self._on_bind(logical)

    def _on_bind(self, logical_granules: int) -> None:
        """Hook for subclasses to build internal tables."""

    @property
    def n_granules(self) -> int:
        """Total granules in the (aligned) extent."""
        return self.hi - self.lo

    # -- first-touch placement ----------------------------------------
    def owner_of_local(self, local_granules: np.ndarray) -> np.ndarray:
        """First-touch owner thread per region-local granule index."""
        raise NotImplementedError

    def premap_epoch(
        self,
        epoch: int,
        address_space: AddressSpace,
        thread_nodes: np.ndarray,
        thp_alloc: bool,
        interleave: bool = False,
    ) -> FaultBatch:
        """Default: materialise the whole region at epoch 0."""
        if epoch != 0:
            return FaultBatch.zeros(self.n_threads)
        return self._premap_range(
            address_space, thread_nodes, thp_alloc, 0, self.n_granules, interleave
        )

    def _premap_range(
        self,
        address_space: AddressSpace,
        thread_nodes: np.ndarray,
        thp_alloc: bool,
        local_lo: int,
        local_hi: int,
        interleave: bool = False,
    ) -> FaultBatch:
        """Map local range [local_lo, local_hi) per the first-touch pattern.

        With ``interleave`` the *placement* is numactl-style round-robin
        over nodes (the faulting thread — hence the fault accounting —
        is unchanged; only where the memory lands differs).
        """
        batch = FaultBatch.zeros(self.n_threads)
        n_nodes = len(address_space.phys)
        if local_hi <= local_lo:
            return batch
        if self.backing_1g:
            lo_g = self.lo + local_lo
            hi_g = self.lo + local_hi
            if lo_g % GRANULES_PER_1G or hi_g % GRANULES_PER_1G:
                raise MappingError("1GB-backed regions must grow in 1GB units")
            for gchunk in range(lo_g >> SHIFT_1G, hi_g >> SHIFT_1G):
                local = (gchunk << SHIFT_1G) - self.lo
                owner = int(self.owner_of_local(np.array([local]))[0])
                node = (gchunk % n_nodes) if interleave else int(thread_nodes[owner])
                address_space.map_range_1g(gchunk << SHIFT_1G, GRANULES_PER_1G, node)
                batch.faults_1g[owner] += 1
            return batch
        if thp_alloc:
            lo_g = self.lo + local_lo
            hi_g = self.lo + local_hi
            if lo_g % GRANULES_PER_2M or hi_g % GRANULES_PER_2M:
                raise MappingError("THP premap ranges must be 2MB-aligned")
            chunk_lo = lo_g >> SHIFT_2M
            chunk_hi = hi_g >> SHIFT_2M
            chunks = np.arange(chunk_lo, chunk_hi, dtype=np.int64)
            chunk_first_local = (chunks << SHIFT_2M) - self.lo
            owners = self.owner_of_local(chunk_first_local)
            if interleave:
                nodes = (chunks % n_nodes).astype(np.int8)
            else:
                nodes = thread_nodes[owners].astype(np.int8)
            backed = address_space.premap_pattern_2m(chunk_lo, nodes)
            np.add.at(batch.faults_2m, owners[backed], 1.0)
            # Chunks that fell back to base pages fault granule by
            # granule, exactly as an un-THP'd premap would.
            np.add.at(
                batch.faults_4k, owners[~backed], float(GRANULES_PER_2M)
            )
            return batch
        local = np.arange(local_lo, local_hi, dtype=np.int64)
        owners = self.owner_of_local(local)
        if interleave:
            nodes = ((self.lo + local) % n_nodes).astype(np.int8)
        else:
            nodes = thread_nodes[owners].astype(np.int8)
        address_space.premap_pattern_4k(self.lo + local_lo, nodes)
        counts = np.bincount(owners, minlength=self.n_threads)
        batch.faults_4k += counts
        return batch

    # -- access generation --------------------------------------------
    def sample(
        self, thread: int, n: int, epoch: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` accessed granule indices for a thread-epoch."""
        raise NotImplementedError

    def sample_into(
        self,
        thread: int,
        n: int,
        epoch: int,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> int:
        """Batched path: draw ``n`` indices directly into ``out``.

        Draws from ``rng`` in exactly the same order as :meth:`sample`;
        the builtins override this to skip the per-part concatenation.
        Returns the number of entries written (``sample`` may return
        fewer than ``n`` for exotic subclasses).
        """
        part = self.sample(thread, n, epoch, rng)
        out[: part.size] = part
        return int(part.size)

    def tlb_groups(self, thread: int, epoch: int, norm_share: float) -> List[TlbGroup]:
        """Working-set groups for the TLB model (weights sum to share)."""
        raise NotImplementedError

    def tlb_epoch_key(self, epoch: int):
        """Hashable summary of :meth:`tlb_groups`' epoch dependence.

        :class:`~repro.workloads.base.WorkloadInstance` memoizes group
        lists per ``(thread, key)``; regions whose geometry is
        epoch-invariant return ``None`` so one list serves every
        epoch.  The base default keys on the epoch itself — no
        cross-epoch reuse, so unknown subclasses can never be served
        stale groups.
        """
        return epoch


class PartitionedRegion(Region):
    """Per-thread partitions laid out in interleaved blocks.

    Thread ``t`` owns and accesses every block whose shifted index maps
    to ``t``; blocks are ``block_bytes`` long.  Small blocks mean a 2MB
    chunk holds blocks of many different threads: private data, shared
    page — the paper's *page-level false sharing*.  ``neighbor_share``
    sends a fraction of accesses into the two adjacent threads'
    partitions (boundary sharing that exists even at 4KB).

    With ``contiguous=True`` each thread's partition is one dense slice
    (no false sharing; models well-partitioned HPC codes).
    """

    def __init__(
        self,
        name: str,
        bytes_per_thread: int,
        access_share: float,
        block_bytes: int = 64 * 1024,
        neighbor_share: float = 0.0,
        contiguous: bool = False,
        boundary_fraction: float = 0.1,
        tlb_run_length: float = 2000.0,
    ) -> None:
        super().__init__(name, access_share)
        if not 0 <= neighbor_share < 1:
            raise ConfigurationError("neighbor_share must be in [0, 1)")
        if not 0 < boundary_fraction <= 1:
            raise ConfigurationError("boundary_fraction must be in (0, 1]")
        self.bytes_per_thread = bytes_per_thread
        self.block_granules = max(1, granules_of(block_bytes))
        self.neighbor_share = neighbor_share
        self.contiguous = contiguous
        self.boundary_fraction = boundary_fraction
        self.tlb_run_length = tlb_run_length
        self._per_thread_granules = granules_of(bytes_per_thread)
        self._blocks_per_thread = 0
        self._block_lists: List[np.ndarray] = []
        self._boundary_lists: List[np.ndarray] = []

    def logical_granules(self) -> int:
        # Known only after bind gives n_threads; bind calls this after
        # setting n_threads.
        per_g = self._per_thread_granules
        blocks = -(-per_g // self.block_granules)
        return blocks * self.block_granules * self.n_threads

    def _on_bind(self, logical_granules: int) -> None:
        self._blocks_per_thread = -(-self._per_thread_granules // self.block_granules)
        n_blocks = self._blocks_per_thread * self.n_threads
        block_idx = np.arange(n_blocks, dtype=np.int64)
        if self.contiguous:
            owners = block_idx // self._blocks_per_thread
        else:
            # Round-robin within each group of T consecutive blocks,
            # rotated by a per-group hash.  Every thread owns exactly
            # blocks_per_thread blocks (each group covers all threads
            # once), while chunk first-touchers vary pseudo-randomly —
            # no degenerate owner subsets for any block size.
            group = block_idx // self.n_threads
            rotation = _hash_owner(group, self.n_threads, salt=7)
            owners = ((block_idx % self.n_threads) + rotation) % self.n_threads
        self._owners = owners
        self._block_lists = [
            np.flatnonzero(owners == t) for t in range(self.n_threads)
        ]
        # Boundary blocks: the slice of each partition that neighbours
        # touch.  Only these become shared pages at 4KB, giving the
        # moderate baseline PSP the paper reports for UA.
        self._boundary_lists = [
            blocks[: max(1, int(len(blocks) * self.boundary_fraction))]
            for blocks in self._block_lists
        ]

    def owner_of_local(self, local_granules: np.ndarray) -> np.ndarray:
        block = np.asarray(local_granules, dtype=np.int64) // self.block_granules
        block = np.minimum(block, len(self._owners) - 1)
        return self._owners[block]

    def _sample_from_blocks_into(
        self, blocks: np.ndarray, n: int, rng: np.random.Generator, out: np.ndarray
    ) -> None:
        chosen = blocks[rng.integers(0, len(blocks), size=n)]
        np.multiply(chosen, self.block_granules, out=out)
        out += rng.integers(0, self.block_granules, size=n)
        out += self.lo

    def _sample_from_blocks(
        self, blocks: np.ndarray, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        self._sample_from_blocks_into(blocks, n, rng, out)
        return out

    def sample(
        self, thread: int, n: int, epoch: int, rng: np.random.Generator
    ) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        size = self.sample_into(thread, n, epoch, rng, out)
        return out[:size]

    def sample_into(
        self,
        thread: int,
        n: int,
        epoch: int,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> int:
        n_neighbor = (
            int(rng.binomial(n, self.neighbor_share)) if self.neighbor_share else 0
        )
        pos = 0
        if n - n_neighbor > 0:
            pos = n - n_neighbor
            self._sample_from_blocks_into(
                self._block_lists[thread], pos, rng, out[:pos]
            )
        if n_neighbor > 0:
            half = n_neighbor // 2
            for neighbor, m in (
                ((thread + 1) % self.n_threads, n_neighbor - half),
                ((thread - 1) % self.n_threads, half),
            ):
                if m > 0:
                    self._sample_from_blocks_into(
                        self._boundary_lists[neighbor], m, rng, out[pos : pos + m]
                    )
                    pos += m
        return pos

    def _distincts(self, n_blocks: float) -> tuple:
        granules = n_blocks * self.block_granules
        n_chunks = self.n_granules / GRANULES_PER_2M
        n_gchunks = max(1.0, self.n_granules / GRANULES_PER_1G)
        if self.contiguous:
            return (granules, max(1.0, granules / GRANULES_PER_2M),
                    max(1.0, granules / GRANULES_PER_1G))
        return (granules, min(n_chunks, n_blocks), min(n_gchunks, n_blocks))

    def tlb_groups(self, thread: int, epoch: int, norm_share: float) -> List[TlbGroup]:
        d4, d2, d1 = self._distincts(float(self._blocks_per_thread))
        groups = [
            TlbGroup(
                lo=self.lo,
                hi=self.hi,
                weight=norm_share * (1.0 - self.neighbor_share),
                distinct_4k=d4,
                distinct_2m=d2,
                distinct_1g=d1,
                run_length=self.tlb_run_length,
                sequential=True,
            )
        ]
        if self.neighbor_share > 0:
            boundary_blocks = 2.0 * len(self._boundary_lists[thread])
            nd4, nd2, nd1 = self._distincts(boundary_blocks)
            groups.append(
                TlbGroup(
                    lo=self.lo,
                    hi=self.hi,
                    weight=norm_share * self.neighbor_share,
                    distinct_4k=nd4,
                    distinct_2m=nd2,
                    distinct_1g=nd1,
                    run_length=self.tlb_run_length,
                    sequential=True,
                )
            )
        return groups

    def tlb_epoch_key(self, epoch: int):
        """Partition geometry never changes across epochs."""
        return None


class SharedRegion(Region):
    """A region accessed by every thread, optionally zipf-skewed.

    Popularity follows ``rank^-zipf_s`` over granules.  With
    ``clustered=True`` hot ranks occupy consecutive addresses (hot data
    that coalesces into few 2MB chunks under THP); otherwise ranks are
    spread by a bijective multiplicative hash (hot 4KB pages scattered
    across the extent).

    First-touch striping: granule stripes of ``stripe_bytes`` are
    first-touched by pseudo-randomly assigned threads, as happens when
    a parallel loop initialises a shared array.  With
    ``master_init=True`` the master thread initialises everything
    (single-threaded setup code): the whole region lands on one node —
    a pre-existing NUMA problem that exists at any page size and that
    Carrefour fixes regardless of THP (the paper's EP/SP/pca cases).
    """

    def __init__(
        self,
        name: str,
        total_bytes: int,
        access_share: float,
        zipf_s: float = 0.0,
        clustered: bool = True,
        stripe_bytes: int = 64 * 1024,
        n_buckets: int = 24,
        master_init: bool = False,
        tlb_run_length: float = 200.0,
        private_consumers: bool = False,
        chunk_header_bias: float = 0.0,
        write_fraction: float = 0.25,
    ) -> None:
        super().__init__(name, access_share)
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        self.write_fraction = write_fraction
        if zipf_s < 0:
            raise ConfigurationError("zipf_s must be non-negative")
        if n_buckets <= 0:
            raise ConfigurationError("n_buckets must be positive")
        self.total_bytes = total_bytes
        self.zipf_s = zipf_s
        self.clustered = clustered
        self.stripe_granules = max(1, granules_of(stripe_bytes))
        self.n_buckets = n_buckets
        self.master_init = master_init
        self.tlb_run_length = tlb_run_length
        #: Each rank is accessed by exactly one thread (rank mod T), but
        #: *placement* follows the striping hash — the managed-heap /
        #: GC-compaction pattern (SPECjbb): single-consumer data whose
        #: physical location is unrelated to its consumer.  At 4KB no
        #: page is shared (low PSP) yet locality is ~1/n_nodes; a 2MB
        #: page mixes many consumers (PSP jumps under THP).
        self.private_consumers = private_consumers
        #: Probability that the *first stripe of each 2MB chunk* is
        #: first-touched by thread 0 (an allocator/GC master writing
        #: chunk headers).  At 4KB this affects a sliver of memory and
        #: leaves placement balanced; under THP the whole chunk follows
        #: its header onto the master's node — the correlated placement
        #: that drives SPECjbb's imbalance from 16% to 39% in the paper.
        if not 0.0 <= chunk_header_bias <= 1.0:
            raise ConfigurationError("chunk_header_bias must be in [0, 1]")
        self.chunk_header_bias = chunk_header_bias
        self._logical = granules_of(total_bytes)

    def logical_granules(self) -> int:
        return self._logical

    def _on_bind(self, logical_granules: int) -> None:
        u = self._logical
        if self.zipf_s == 0:
            edges = np.array([0, u], dtype=np.int64)
        else:
            # Geometric rank buckets: [0,1), [1,2), [2,4), ... capped at U.
            raw = [0, 1]
            while raw[-1] < u:
                raw.append(min(u, raw[-1] * 2))
            edges = np.array(sorted(set(raw)), dtype=np.int64)
            if len(edges) - 1 > self.n_buckets:
                # Merge the smallest-weight tail buckets to the cap.
                keep = np.concatenate(
                    [edges[: self.n_buckets], edges[-1:]]
                )
                edges = np.unique(keep)
        self._bucket_lo = edges[:-1]
        self._bucket_hi = edges[1:]
        self._bucket_span = self._bucket_hi - self._bucket_lo
        self._bucket_sizes = self._bucket_span.astype(np.float64)
        if self.zipf_s == 0:
            weights = self._bucket_sizes.copy()
        else:
            weights = np.array(
                [
                    _zipf_mass(float(a), float(b), self.zipf_s)
                    for a, b in zip(self._bucket_lo, self._bucket_hi)
                ]
            )
        self._bucket_weights = weights / weights.sum()
        # Precomputed CDF for bucket selection.  ``Generator.choice``
        # with ``p=`` rebuilds (and re-validates) this cumsum on every
        # call; ``searchsorted`` over the stored CDF consumes the same
        # ``rng.random(n)`` draws and returns bit-identical buckets.
        cdf = self._bucket_weights.cumsum()
        cdf /= cdf[-1]
        self._bucket_cdf = cdf
        # Bijective multiplicative hash for the non-clustered layout.
        mult = 2654435761 % u
        if mult in (0, 1):
            mult = max(3, u // 3) | 1
        while math.gcd(mult, u) != 1:
            mult += 1
        self._perm_mult = mult

    def _rank_to_local(self, ranks: np.ndarray) -> np.ndarray:
        if self.clustered:
            return ranks
        # Affine bijection mod U: multiplicative spread plus an offset
        # so the hottest rank does not sit at the region base.
        offset = (self._logical * 5) // 7
        return (ranks * self._perm_mult + offset) % self._logical

    def owner_of_local(self, local_granules: np.ndarray) -> np.ndarray:
        local = np.asarray(local_granules, dtype=np.int64)
        if self.master_init:
            return np.zeros(local.shape, dtype=np.int64)
        stripes = local // self.stripe_granules
        owners = _hash_owner(stripes, self.n_threads, salt=self.seed + 101)
        if self.chunk_header_bias > 0.0:
            chunk = local // GRANULES_PER_2M
            in_header_stripe = stripes == (
                chunk * GRANULES_PER_2M // self.stripe_granules
            )
            coin = _hash_owner(chunk, 1000, salt=self.seed + 777)
            master_owned = in_header_stripe & (
                coin < int(self.chunk_header_bias * 1000)
            )
            owners = np.where(master_owned, 0, owners)
        return owners

    def sample(
        self, thread: int, n: int, epoch: int, rng: np.random.Generator
    ) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        size = self.sample_into(thread, n, epoch, rng, out)
        return out[:size]

    def sample_into(
        self,
        thread: int,
        n: int,
        epoch: int,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> int:
        buckets = self._bucket_cdf.searchsorted(rng.random(n), side="right")
        lo = self._bucket_lo[buckets]
        size = self._bucket_span[buckets]
        if self.private_consumers:
            # Thread t owns ranks congruent to t modulo n_threads.
            t = np.int64(self.n_threads)
            offset = (thread - lo) % t
            slots = np.maximum((size - offset + t - 1) // t, 1)
            ranks = lo + offset + (rng.random(n) * slots).astype(np.int64) * t
            ranks = np.minimum(ranks, self._logical - 1)
        else:
            ranks = lo + (rng.random(n) * size).astype(np.int64)
        np.add(self._rank_to_local(ranks), self.lo, out=out[:n])
        return n

    def tlb_groups(self, thread: int, epoch: int, norm_share: float) -> List[TlbGroup]:
        groups = []
        n_chunks = max(1.0, self.n_granules / GRANULES_PER_2M)
        n_gchunks = max(1.0, self.n_granules / GRANULES_PER_1G)
        for lo, hi, w in zip(self._bucket_lo, self._bucket_hi, self._bucket_weights):
            extent = float(hi - lo)
            count = extent
            if self.private_consumers:
                # The thread only touches its own ranks, which are
                # strided across the whole bucket extent.
                count = max(1.0, extent / self.n_threads)
            if self.clustered:
                d2 = min(count, max(1.0, extent / GRANULES_PER_2M))
                d1 = min(count, max(1.0, extent / GRANULES_PER_1G))
            else:
                d2 = min(n_chunks, count)
                d1 = min(n_gchunks, count)
            groups.append(
                TlbGroup(
                    lo=self.lo,
                    hi=self.hi,
                    weight=norm_share * float(w),
                    distinct_4k=count,
                    distinct_2m=d2,
                    distinct_1g=d1,
                    run_length=self.tlb_run_length,
                    sequential=False,
                )
            )
        return groups

    def tlb_epoch_key(self, epoch: int):
        """Bucket geometry is fixed at bind time."""
        return None


def _zipf_mass(a: float, b: float, s: float) -> float:
    """Approximate sum of (i+1)^-s for integer ranks i in [a, b)."""
    if b <= a:
        return 0.0
    if abs(s - 1.0) < 1e-9:
        return math.log(b + 1.0) - math.log(a + 1.0)
    return ((b + 1.0) ** (1.0 - s) - (a + 1.0) ** (1.0 - s)) / (1.0 - s)


class HotRegion(SharedRegion):
    """A compact, uniformly hot shared array (the hot-page substrate).

    Small stripes spread the constituent 4KB pages across all nodes
    under first-touch, so load is balanced at 4KB; under THP the whole
    array collapses into a handful of 2MB pages, each pinned to one
    node — fewer hot pages than nodes means imbalance that migration
    cannot fix (paper Section 3.1, CG).
    """

    def __init__(
        self,
        name: str,
        total_bytes: int,
        access_share: float,
        stripe_bytes: int = 32 * 1024,
        tlb_run_length: float = 32.0,
    ) -> None:
        super().__init__(
            name,
            total_bytes=total_bytes,
            access_share=access_share,
            zipf_s=0.0,
            clustered=True,
            stripe_bytes=stripe_bytes,
            tlb_run_length=tlb_run_length,
        )


class StreamRegion(Region):
    """Per-thread streaming data, optionally growing over the run.

    Each thread owns a contiguous slice.  With ``grow_epochs > 0`` the
    slice is faulted in gradually (``1/grow_epochs`` per epoch), which
    keeps the page-fault handler busy for the whole run — the Metis
    ingest pattern that makes WC spend 37% of its time in the fault
    handler under 4KB pages.  Accesses favour the most recently grown
    window (``recency`` fraction).
    """

    def __init__(
        self,
        name: str,
        bytes_per_thread: int,
        access_share: float,
        grow_epochs: int = 0,
        window_bytes: Optional[int] = None,
        recency: float = 0.7,
        tlb_run_length: float = 1200.0,
    ) -> None:
        super().__init__(name, access_share)
        if grow_epochs < 0:
            raise ConfigurationError("grow_epochs must be non-negative")
        if not 0 <= recency <= 1:
            raise ConfigurationError("recency must be in [0, 1]")
        self.bytes_per_thread = bytes_per_thread
        self.grow_epochs = grow_epochs
        self.recency = recency
        self.tlb_run_length = tlb_run_length
        self._per_g = granules_of(bytes_per_thread)
        # Round per-thread slices to chunk multiples so growth and THP
        # premaps stay aligned.
        self._per_g = -(-self._per_g // GRANULES_PER_2M) * GRANULES_PER_2M
        self.window_granules = (
            granules_of(window_bytes) if window_bytes else self._per_g
        )

    def logical_granules(self) -> int:
        if self.backing_1g:
            # 1GB growth units: round each slice up to 1GB.
            self._per_g = -(-self._per_g // GRANULES_PER_1G) * GRANULES_PER_1G
        return self._per_g * self.n_threads

    def owner_of_local(self, local_granules: np.ndarray) -> np.ndarray:
        owners = np.asarray(local_granules, dtype=np.int64) // self._per_g
        return np.minimum(owners, self.n_threads - 1)

    def grown_granules(self, epoch: int) -> int:
        """Granules of each thread's slice mapped by the end of ``epoch``."""
        if self.grow_epochs <= 0:
            return self._per_g
        steps = min(epoch + 1, self.grow_epochs)
        grown = (self._per_g * steps) // self.grow_epochs
        grown = -(-grown // GRANULES_PER_2M) * GRANULES_PER_2M
        if self.backing_1g:
            grown = -(-grown // GRANULES_PER_1G) * GRANULES_PER_1G
        return min(grown, self._per_g)

    def premap_epoch(
        self,
        epoch: int,
        address_space: AddressSpace,
        thread_nodes: np.ndarray,
        thp_alloc: bool,
        interleave: bool = False,
    ) -> FaultBatch:
        prev = 0 if epoch == 0 else self.grown_granules(epoch - 1)
        now = self.grown_granules(epoch)
        batch = FaultBatch.zeros(self.n_threads)
        if now <= prev and epoch > 0:
            return batch
        for t in range(self.n_threads):
            base = t * self._per_g
            batch.merge(
                self._premap_range(
                    address_space,
                    thread_nodes,
                    thp_alloc,
                    base + prev,
                    base + now,
                    interleave,
                )
            )
        return batch

    def sample(
        self, thread: int, n: int, epoch: int, rng: np.random.Generator
    ) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        size = self.sample_into(thread, n, epoch, rng, out)
        return out[:size]

    def sample_into(
        self,
        thread: int,
        n: int,
        epoch: int,
        rng: np.random.Generator,
        out: np.ndarray,
    ) -> int:
        grown = self.grown_granules(epoch)
        base = self.lo + thread * self._per_g
        window = min(self.window_granules, grown)
        n_recent = int(rng.binomial(n, self.recency)) if self.recency > 0 else 0
        if n_recent:
            np.add(
                rng.integers(0, window, size=n_recent),
                base + (grown - window),
                out=out[:n_recent],
            )
        if n - n_recent:
            np.add(
                rng.integers(0, grown, size=n - n_recent),
                base,
                out=out[n_recent:n],
            )
        return n

    def tlb_groups(self, thread: int, epoch: int, norm_share: float) -> List[TlbGroup]:
        grown = self.grown_granules(epoch)
        window = min(self.window_granules, grown)
        base = self.lo + thread * self._per_g
        groups = [
            TlbGroup(
                lo=base + grown - window,
                hi=base + grown,
                weight=norm_share * self.recency,
                distinct_4k=float(window),
                distinct_2m=max(1.0, window / GRANULES_PER_2M),
                distinct_1g=max(1.0, window / GRANULES_PER_1G),
                run_length=self.tlb_run_length,
                sequential=True,
            )
        ]
        if self.recency < 1.0:
            groups.append(
                TlbGroup(
                    lo=base,
                    hi=base + grown,
                    weight=norm_share * (1.0 - self.recency),
                    distinct_4k=float(grown),
                    distinct_2m=max(1.0, grown / GRANULES_PER_2M),
                    distinct_1g=max(1.0, grown / GRANULES_PER_1G),
                    run_length=self.tlb_run_length,
                    sequential=True,
                )
            )
        return groups

    def tlb_epoch_key(self, epoch: int):
        """Groups depend on the epoch only through the grown extent."""
        return self.grown_granules(epoch)
