"""Registry of all modelled benchmarks, keyed by the paper's names."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import UnknownWorkloadError
from repro.workloads.base import Workload
from repro.workloads.metis import METIS_WORKLOADS
from repro.workloads.nas import NAS_WORKLOADS
from repro.workloads.parsec import PARSEC_WORKLOADS
from repro.workloads.specjbb import SPECJBB_WORKLOADS
from repro.workloads.ssca import SSCA_WORKLOADS

_ALL: List[Workload] = (
    NAS_WORKLOADS + METIS_WORKLOADS + SSCA_WORKLOADS + SPECJBB_WORKLOADS + PARSEC_WORKLOADS
)

_BY_NAME: Dict[str, Workload] = {w.name: w for w in _ALL}
# Case-insensitive aliases for convenience.
_BY_NAME.update({w.name.lower(): w for w in _ALL})

#: The order used by Figure 1 of the paper.
FIGURE1_ORDER = [
    "BT.B",
    "CG.D",
    "DC.A",
    "EP.C",
    "FT.C",
    "IS.D",
    "LU.B",
    "MG.D",
    "SP.B",
    "UA.B",
    "UA.C",
    "WC",
    "WR",
    "Kmeans",
    "MatrixMultiply",
    "pca",
    "wrmem",
    "SSCA.20",
    "SPECjbb",
]

#: Applications whose NUMA metrics are affected by THP (Figures 2-4).
AFFECTED_SET = [
    "CG.D",
    "LU.B",
    "UA.B",
    "UA.C",
    "MatrixMultiply",
    "wrmem",
    "SSCA.20",
    "SPECjbb",
]

#: Applications unaffected by THP-induced NUMA issues (Figure 5).
UNAFFECTED_SET = [
    "BT.B",
    "DC.A",
    "EP.C",
    "FT.C",
    "IS.D",
    "MG.D",
    "SP.B",
    "WC",
    "WR",
    "Kmeans",
    "pca",
]


def available_workloads() -> List[str]:
    """All benchmark names, in Figure 1 order plus extras."""
    extras = [w.name for w in _ALL if w.name not in FIGURE1_ORDER]
    return FIGURE1_ORDER + extras


def get_workload(name: str) -> Workload:
    """Look up a benchmark by name (case-insensitive)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        try:
            return _BY_NAME[name.lower()]
        except KeyError:
            raise UnknownWorkloadError(
                f"unknown workload {name!r}; available: {available_workloads()}"
            ) from None
