"""Model of SPECjbb (Java business benchmark).

The paper's profile (Table 1/2, machine A): a large Java heap with
real TLB pressure (7% of L2 misses from walks at 4KB, 0% with THP),
low locality (LAR 12-26% — warehouses share the heap), moderate
sharing (PSP 10% at 4KB, 36% under THP), and the key trait: THP raises
controller imbalance from 16% to 39%, which erases the TLB benefit.
Carrefour-2M restores balance (39% -> 19%) and unlocks the win —
SPECjbb is the paper's "could benefit from large pages if NUMA effects
were reduced" case.
"""

from __future__ import annotations

from repro.hardware.topology import NumaTopology
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.common import GIB, MIB, epochs_for, reference_cost, scaled_bytes
from repro.workloads.regions import PartitionedRegion, SharedRegion


def _specjbb(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        # The young generation: a compact, very hot allocation area.
        # Its 4KB pages are spread across nodes by TLAB striping, but
        # THP coalesces it into a handful of 2MB chunks whose placement
        # luck produces the paper's controller imbalance (16% -> 39%)
        # while no single page exceeds the 6% hot threshold (NHP = 0,
        # PAMUP ~6%).
        SharedRegion(
            "nursery",
            total_bytes=3 * MIB * machine.n_cores,
            access_share=0.38,
            zipf_s=0.0,
            clustered=True,
            stripe_bytes=64 * 1024,
            tlb_run_length=150.0,
            private_consumers=True,
            chunk_header_bias=0.35,
        ),
        # The tenured heap: large, mildly skewed, GC-scrambled
        # placement (single-consumer objects, random location).
        SharedRegion(
            "tenured",
            total_bytes=scaled_bytes(2.5 * GIB, scale),
            access_share=0.47,
            zipf_s=0.4,
            clustered=True,
            stripe_bytes=64 * 1024,
            tlb_run_length=100.0,
            private_consumers=True,
        ),
        # Per-warehouse (thread) working state.
        PartitionedRegion(
            "warehouses",
            bytes_per_thread=scaled_bytes(20 * MIB, scale),
            access_share=0.15,
            block_bytes=256 * 1024,
            neighbor_share=0.05,
        ),
    ]
    return WorkloadInstance(
        name="SPECjbb",
        machine=machine,
        regions=regions,
        cost=reference_cost(machine, rho=0.45, cpu_s=0.07, dram_to_mem=50.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


SPECJBB_WORKLOADS = [
    Workload(
        "SPECjbb",
        "SPECjbb Java business benchmark (imbalance masks TLB win)",
        _specjbb,
        suite="specjbb",
    )
]
