"""Model of SSCA v2.2 (graph analysis benchmark, problem size 20).

SSCA walks a large scale-free graph: an enormous, sparsely accessed
working set.  The paper's measurements (Table 1, machine A): 15% of L2
misses come from page-table walks at 4KB versus 2% with THP — the
textbook TLB-bound application — so THP is worth +17% by itself.  But
THP also concentrates the skewed adjacency data onto few 2MB chunks:
controller imbalance jumps from 8% to 52%.  NUMA-aware placement on
top of THP (Carrefour-2M / Carrefour-LP) recovers both benefits.

SSCA is also the paper's example of the reactive component's sampling
blind spot: with few samples per 4KB sub-page, the predicted
post-split LAR (59%) vastly exceeds the real one (25%), so the
reactive component may split pages it should not — the conservative
component then re-enables them.
"""

from __future__ import annotations

from repro.hardware.topology import NumaTopology
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.common import GIB, MIB, epochs_for, reference_cost, scaled_bytes
from repro.workloads.regions import PartitionedRegion, SharedRegion


def _ssca(machine: NumaTopology, scale: float, seed: int) -> WorkloadInstance:
    regions = [
        # The graph: scale-free degree distribution means zipf-skewed
        # vertex popularity; high-degree vertices are allocated early
        # and contiguously (clustered), which is what THP coalesces
        # into hot chunks.
        SharedRegion(
            "graph",
            total_bytes=scaled_bytes(3.0 * GIB, scale),
            access_share=0.80,
            zipf_s=0.60,
            clustered=True,
            stripe_bytes=32 * 1024,
            tlb_run_length=215.0,
            # The graph generator allocates chunk headers from the main
            # thread: correlated placement under THP (imbalance 8->52%
            # in the paper) that is invisible at 4KB.
            chunk_header_bias=0.12,
        ),
        # Per-thread traversal state.
        PartitionedRegion(
            "frontiers",
            bytes_per_thread=scaled_bytes(24 * MIB, scale),
            access_share=0.20,
            contiguous=True,
        ),
    ]
    return WorkloadInstance(
        name="SSCA.20",
        machine=machine,
        regions=regions,
        # Very high memory-access count relative to DRAM traffic: most
        # accesses hit caches but still need translations, which is
        # what makes the TLB the bottleneck at 4KB.
        cost=reference_cost(machine, rho=0.50, cpu_s=0.05, dram_to_mem=60.0),
        total_epochs=epochs_for(scale),
        seed=seed,
    )


SSCA_WORKLOADS = [
    Workload(
        "SSCA.20",
        "SSCA v2.2 graph analysis, problem size 20 (TLB-bound)",
        _ssca,
        suite="ssca",
    )
]
