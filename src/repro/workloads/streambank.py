"""Epoch-batched, memoized access-stream banks.

Profiling (``BENCH_engine.json``) showed ~74% of cold grid wall-clock
in the ``streams`` phase — per-(thread, epoch) Python-loop stream
generation repeated *per run*, even though the streams themselves are
policy-independent: generation never reads the address space, so a
``linux-4k`` and a ``thp`` run of the same workload on the same machine
draw exactly the same streams.  A :class:`StreamBank` generates each
(epoch, thread) stream once, stores the ``(granules, writes, size)``
rows in preallocated ``(n_threads, length)`` arrays the engine consumes
directly, and memoizes banks process-wide keyed by a fingerprint of
everything generation depends on: workload identity and scalars, the
simulation seed, and the stream length.

Three fidelity rules keep banked runs bit-identical to inline runs:

* streams are drawn with the engine's own per-thread generators
  (``rng_for(sim_seed, instance.seed, instance.name, "stream", t,
  epoch)``) through :meth:`WorkloadInstance.epoch_stream_into`, which
  draws in exactly the order of ``epoch_stream_with_writes``;
* the IBS sampler continues each thread's generator *after* stream
  generation, so the bank captures every generator's
  ``bit_generator.state`` post-generation and replays it through
  :func:`repro._util.rng_from_state` on demand;
* the engine treats bank arrays as read-only (it keeps its own
  ``stream_homes`` scratch), so one bank serves any number of
  concurrent runs.

Fused epoch aggregation: alongside the streams, every epoch row stores
the access tracker's whole-epoch inputs, pre-merged at fill time —

* :meth:`StreamBank.epoch_tracker` — one COO triplet ``(ids,
  thread_offsets, counts)`` of all per-thread ``np.unique`` columns in
  ascending thread order, plus the per-thread weight scaling already
  folded in (``scaled_counts``), so the engine feeds the tracker with
  a single :meth:`~repro.sim.tracker.AccessTracker.add_epoch` call per
  epoch instead of an ``n_threads`` Python loop;
* :meth:`StreamBank.sharing_packed` — the three page-level sharing
  summaries packed into flat ``(ids, first, multi)`` arrays with level
  offsets, consumed whole by
  :meth:`~repro.sim.tracker.AccessTracker.merge_epoch_sharing`.

Pipelined fill: rows materialize lazily and concurrently.  Each row is
filled exactly once by whichever thread claims it (a per-row
``filling`` flag under the bank lock; generation itself runs outside
the lock), so cold thread-backend shards fill different epochs of a
shared bank in parallel, and a per-bank background prefill worker
(:meth:`StreamBank._prefill_worker`, registered as a lint-deep thread
entry point) keeps up to one :data:`EPOCH_WINDOW` of rows ahead of the
consuming simulation — generation overlaps the engine's GIL-released
``tracker``/``tlb`` numpy phases instead of preceding them.

Environment knobs:

* ``REPRO_STREAM_BANK=0`` disables banking (the engine falls back to
  inline per-thread generation; results are bit-identical either way);
* ``REPRO_STREAM_CACHE=<dir>`` persists completed epoch blocks to disk
  (``.npy`` columns loaded back memmapped, fused aggregation columns
  alongside), so banks survive across processes of a grid sweep;
* ``REPRO_STREAM_PREFETCH=0`` disables the background prefill worker
  (rows still fill lazily, on demand, in the consuming thread).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._util import SeedHasher, rng_from_state, stable_seed
from repro.vm.layout import SHIFT_1G, SHIFT_2M

#: Set to ``0``/``false`` to disable stream banking entirely.
STREAM_BANK_ENV = "REPRO_STREAM_BANK"
#: Directory for the optional on-disk block store (unset = memory only).
STREAM_CACHE_ENV = "REPRO_STREAM_CACHE"
#: Set to ``0``/``false`` to disable the background prefill worker.
STREAM_PREFETCH_ENV = "REPRO_STREAM_PREFETCH"

#: Epochs per storage block.  Blocks are filled lazily epoch by epoch,
#: so a short run never generates past what it consumes; the window
#: only bounds allocation and disk-store granularity.
EPOCH_WINDOW = 16

#: How far ahead of the consuming simulation the prefill worker keeps
#: the bank: one full window, i.e. double-buffering at block
#: granularity (block k+1 fills while block k simulates).
_PREFILL_LOOKAHEAD = EPOCH_WINDOW

_FALSE_VALUES = frozenset({"0", "false", "off", "no"})

_MAX_BANKS = 12
_MAX_BLOCKS_PER_BANK = 4

_LOCK = threading.Lock()
_BANKS: "OrderedDict[str, StreamBank]" = OrderedDict()
#: Banks for instances without a stable fingerprint (e.g. trace
#: replays): keyed by identity, garbage-collected with the instance.
_INSTANCE_BANKS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Lint-deep (R105-R108) thread entry points: the background prefill
#: worker runs concurrently with every consumer of the bank, so the
#: static race analysis must walk it.
_THREAD_ENTRY_POINTS = ("StreamBank._prefill_worker",)


def stream_bank_enabled() -> bool:
    """Whether the engine should route stream generation through banks."""
    value = os.environ.get(STREAM_BANK_ENV, "").strip().lower()
    return value not in _FALSE_VALUES


def stream_cache_dir() -> Optional[str]:
    """The on-disk block-store directory, or ``None`` when disabled."""
    path = os.environ.get(STREAM_CACHE_ENV, "").strip()
    return path or None


def stream_prefetch_enabled() -> bool:
    """Whether banks run the background prefill worker.

    Unset means *auto*: on when a spare core exists to run the worker,
    off on single-core hosts where a background fill thread only adds
    scheduler contention to the consuming simulation (mirrors the
    parallel runner's auto backend fallback).  An explicit value wins
    in both directions.
    """
    value = os.environ.get(STREAM_PREFETCH_ENV, "").strip().lower()
    if not value:
        return (os.cpu_count() or 1) > 1
    return value not in _FALSE_VALUES


def clear_stream_banks() -> None:
    """Drop every memoized bank (benchmarks and tests use this to
    measure or exercise cold generation)."""
    with _LOCK:
        _BANKS.clear()
        _INSTANCE_BANKS.clear()


def _dedupe_sorted(values: np.ndarray) -> np.ndarray:
    """Distinct values of an already-sorted array (``np.unique`` minus
    the redundant sort)."""
    if values.size <= 1:
        return values
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


_SCALAR_TYPES = (bool, int, float, str, bytes, type(None))


def _region_signature(region: object) -> tuple:
    """Scalar attributes of a region, in sorted order.

    Every array/list a builtin region holds is derived deterministically
    from these scalars in ``_on_bind``, so the scalars (plus the class
    name) pin the region's sampling behaviour.
    """
    scalars = tuple(
        (key, value)
        for key, value in sorted(vars(region).items())
        if isinstance(value, _SCALAR_TYPES)
    )
    return (type(region).__name__, scalars)


def bank_fingerprint(instance: object, sim_seed: int, length: int) -> Optional[str]:
    """Stable identity of everything stream generation depends on.

    Returns ``None`` for instances without a ``regions`` list (trace
    replays and other duck-typed instances): their streams depend on
    payload data we cannot cheaply fingerprint, so they get per-object
    banks instead of shareable ones.

    The workload's ``cost.dram_accesses`` is part of the key: the
    bank's fused tracker columns bake the per-thread weight scaling
    (``dram_accesses / stream_size``) into ``scaled_counts``, so two
    instances may only share a bank when they would scale identically.
    """
    regions = getattr(instance, "regions", None)
    if regions is None:
        return None
    cost = getattr(instance, "cost", None)
    parts = (
        type(instance).__name__,
        instance.name,
        instance.seed,
        sim_seed,
        length,
        instance.n_threads,
        instance.n_granules,
        instance.backing_1g,
        instance.total_epochs,
        None if cost is None else float(cost.dram_accesses),
        tuple(_region_signature(region) for region in regions),
    )
    return f"{stable_seed(*parts):016x}"


def get_stream_bank(instance: object, sim_seed: int, length: int) -> "StreamBank":
    """The process-wide bank for ``(instance, sim_seed, length)``.

    Fingerprinted instances share one bank per fingerprint (this is
    what lets the two policy runs of a grid cell reuse each other's
    streams); unfingerprintable instances get a bank tied to the object
    itself.
    """
    fingerprint = bank_fingerprint(instance, sim_seed, length)
    with _LOCK:
        if fingerprint is None:
            per_instance = _INSTANCE_BANKS.get(instance)
            if per_instance is None:
                per_instance = {}
                _INSTANCE_BANKS[instance] = per_instance
            bank = per_instance.get((sim_seed, length))
            if bank is None:
                bank = StreamBank(instance, sim_seed, length)
                per_instance[(sim_seed, length)] = bank
            return bank
        bank = _BANKS.get(fingerprint)
        if bank is not None and (
            bank_fingerprint(bank.instance, sim_seed, length) != fingerprint
        ):
            # The stored instance's regions were re-bound (e.g. via
            # ``with_1g_backing``) after the bank memoized them; its
            # future fills would no longer match the key.  Rebuild.
            bank = None
        if bank is None:
            bank = StreamBank(
                instance,
                sim_seed,
                length,
                fingerprint=fingerprint,
                cache_dir=stream_cache_dir(),
            )
            _BANKS[fingerprint] = bank
            while len(_BANKS) > _MAX_BANKS:
                _BANKS.popitem(last=False)
        else:
            _BANKS.move_to_end(fingerprint)
        return bank


class _Block:
    """Storage for one ``EPOCH_WINDOW``-sized range of epochs."""

    __slots__ = ("epoch0", "n_epochs", "streams", "writes", "sizes",
                 "rng_states", "tracker", "sharing", "filled", "filling",
                 "persisted")

    def __init__(self, epoch0: int, n_epochs: int, n_threads: int,
                 length: int) -> None:
        self.epoch0 = epoch0
        self.n_epochs = n_epochs
        self.streams = np.zeros((n_epochs, n_threads, length), dtype=np.int64)
        self.writes = np.zeros((n_epochs, n_threads, length), dtype=bool)
        self.sizes = np.zeros((n_epochs, n_threads), dtype=np.int64)
        self.rng_states: List[Optional[List[dict]]] = [None] * n_epochs
        #: Per-row fused tracker columns: ``(ids, thread_offsets,
        #: counts, scaled_counts)``.
        self.tracker: List[Optional[tuple]] = [None] * n_epochs
        #: Per-row packed sharing summary: ``(ids, first, multi,
        #: level_offsets)`` over the three page levels.
        self.sharing: List[Optional[tuple]] = [None] * n_epochs
        self.filled = np.zeros(n_epochs, dtype=bool)
        #: Row claimed by a filler (generation runs outside the bank
        #: lock; the flag makes each row single-writer).
        self.filling = np.zeros(n_epochs, dtype=bool)
        self.persisted = False

    @classmethod
    def from_store(
        cls,
        epoch0: int,
        streams: np.ndarray,
        writes: np.ndarray,
        sizes: np.ndarray,
        rng_states: List[List[dict]],
        tracker: List[tuple],
        sharing: List[tuple],
    ) -> "_Block":
        block = cls.__new__(cls)
        block.epoch0 = epoch0
        block.n_epochs = streams.shape[0]
        block.streams = streams
        block.writes = writes
        block.sizes = sizes
        block.rng_states = list(rng_states)
        block.tracker = list(tracker)
        block.sharing = list(sharing)
        block.filled = np.ones(block.n_epochs, dtype=bool)
        block.filling = np.zeros(block.n_epochs, dtype=bool)
        block.persisted = True
        return block


class StreamBank:
    """Memoized per-epoch access streams for one workload instance."""

    def __init__(
        self,
        instance: object,
        sim_seed: int,
        length: int,
        fingerprint: Optional[str] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.instance = instance
        self.sim_seed = sim_seed
        self.length = length
        self.n_threads = int(instance.n_threads)
        self.total_epochs = int(instance.total_epochs)
        self.fingerprint = fingerprint
        cost = getattr(instance, "cost", None)
        #: Baked into ``scaled_counts`` exactly as the engine computes
        #: its per-thread scale (``dram_accesses / stream_size``).
        self._dram = 0.0 if cost is None else float(cost.dram_accesses)
        #: Prefix-memoized seeder: per-row generators vary only in the
        #: ``(thread, epoch)`` suffix, so the fixed parts hash once.
        self._seed_hasher = SeedHasher(
            sim_seed, instance.seed, instance.name, "stream"
        )
        self._dir = (
            os.path.join(cache_dir, fingerprint)
            if cache_dir is not None and fingerprint is not None
            else None
        )
        self._lock = threading.Lock()
        #: Fillers signal row completion here; waiters re-check under
        #: ``self._lock`` (the condition wraps that same lock).
        self._cond = threading.Condition(self._lock)
        self._blocks: "OrderedDict[int, _Block]" = OrderedDict()
        #: Completed blocks awaiting persistence.  Rows complete while
        #: holding ``self._lock`` and must not do disk I/O there
        #: (R108), so the block is queued and the public entry points
        #: drain the queue after releasing the lock.
        self._pending_persist: List[_Block] = []
        #: Background prefill: highest epoch requested so far, scan
        #: cursor, and whether a worker thread is currently alive.
        self._prefill_target = -1
        self._prefill_pos = 0
        self._prefill_alive = False

    # ------------------------------------------------------------------
    # Engine-facing API
    # ------------------------------------------------------------------
    def epoch_arrays(
        self, epoch: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(streams, writes, sizes)`` views for one epoch.

        Shapes ``(n_threads, length)``, ``(n_threads, length)`` and
        ``(n_threads,)``; rows past each thread's size are zero.  The
        arrays are shared — callers must treat them as read-only.
        """
        block, i = self._ensure_row(epoch)
        self._drain_persist()
        self._request_prefill(epoch)
        return (block.streams[i], block.writes[i], block.sizes[i])

    def ibs_rngs(self, epoch: int) -> List[np.random.Generator]:
        """Fresh per-thread generators positioned after stream draws.

        Each call rebuilds the generators from the captured states, so
        every run's IBS sampler consumes its own copies — exactly the
        values the inline path would have drawn.
        """
        block, i = self._ensure_row(epoch)
        states = block.rng_states[i]
        self._drain_persist()
        return [rng_from_state(state) for state in states]

    def epoch_tracker(self, epoch: int) -> tuple:
        """Fused tracker columns ``(ids, thread_offsets, counts,
        scaled_counts)`` for one epoch.

        ``ids``/``counts`` are every thread's ``np.unique(stream,
        return_counts=True)`` concatenated in ascending thread order
        (``thread_offsets`` has ``n_threads + 1`` entries delimiting
        the segments); ``scaled_counts`` is ``counts`` with each
        thread's weight scale (``dram_accesses / stream_size``, zero
        for idle threads) already multiplied in.  Feeding ``(ids,
        scaled_counts)`` to
        :meth:`~repro.sim.tracker.AccessTracker.add_epoch` is
        bit-identical to the per-thread ``update``/``add_weights``
        loop: ``np.add.at`` applies additions in element order, which
        is exactly ascending thread order, and each thread's segment
        holds distinct ids.
        """
        block, i = self._ensure_row(epoch)
        columns = block.tracker[i]
        self._drain_persist()
        return columns

    def sharing_packed(self, epoch: int) -> tuple:
        """Packed epoch sharing summary ``(ids, first, multi,
        level_offsets)``.

        The three page levels (4KB granule, 2MB chunk, 1GB chunk) are
        concatenated; ``level_offsets`` (4 entries) delimits them.  Per
        level: the sorted distinct ids touched by *any* thread this
        epoch, the lowest thread id touching each, and whether two or
        more distinct threads touched it.  Consumed whole by
        :meth:`~repro.sim.tracker.AccessTracker.merge_epoch_sharing`;
        policy-independent, so runs sharing a bank pay the aggregation
        once, at fill time.
        """
        block, i = self._ensure_row(epoch)
        packed = block.sharing[i]
        self._drain_persist()
        return packed

    def tracker_columns(self, epoch: int, thread: int) -> tuple:
        """``(unique, counts, unique_2m, unique_1g)`` of one stream.

        Compatibility view over :meth:`epoch_tracker`: slices one
        thread's segment out of the fused columns and re-derives the
        shifted levels (sorted input, so a neighbour-diff dedupe equals
        ``np.unique`` without re-sorting).
        """
        ids, offsets, counts, _ = self.epoch_tracker(epoch)
        lo, hi = int(offsets[thread]), int(offsets[thread + 1])
        unique = ids[lo:hi]
        return (
            unique,
            counts[lo:hi],
            _dedupe_sorted(unique >> SHIFT_2M),
            _dedupe_sorted(unique >> SHIFT_1G),
        )

    def sharing_columns(self, epoch: int) -> tuple:
        """Per-level epoch sharing summary: three ``(ids, first, multi)``.

        Compatibility view over :meth:`sharing_packed` (the packed
        levels, sliced apart).
        """
        ids, first, multi, offsets = self.sharing_packed(epoch)
        return tuple(
            (
                ids[offsets[level]:offsets[level + 1]],
                first[offsets[level]:offsets[level + 1]],
                multi[offsets[level]:offsets[level + 1]],
            )
            for level in range(3)
        )

    # ------------------------------------------------------------------
    # Row materialization (pipelined fill)
    # ------------------------------------------------------------------
    def _ensure_row(self, epoch: int) -> Tuple[_Block, int]:
        """The (block, row-index) holding ``epoch``, filled.

        Rows fill outside the bank lock under a per-row ``filling``
        claim, so concurrent shards of a cold grid cell materialize
        *different* epochs of one shared bank in parallel; a thread
        needing a row that another thread is generating waits on the
        bank condition instead of duplicating the work.
        """
        while True:
            with self._lock:
                block = self._block_at(epoch)
                i = epoch - block.epoch0
                if block.filled[i]:
                    return block, i
                if block.filling[i]:
                    self._cond.wait()
                    continue
                block.filling[i] = True
            self._fill_row(block, i)
            return block, i

    def _block_at(self, epoch: int) -> _Block:
        """Locate/create/load the block holding ``epoch``.  Caller
        holds ``self._lock``."""
        epoch0 = (epoch // EPOCH_WINDOW) * EPOCH_WINDOW
        block = self._blocks.get(epoch0)
        if block is None:
            block = self._load(epoch0)
            if block is None:
                n_epochs = max(1, min(EPOCH_WINDOW, self.total_epochs - epoch0))
                block = _Block(epoch0, n_epochs, self.n_threads, self.length)
            self._blocks[epoch0] = block
            while len(self._blocks) > _MAX_BLOCKS_PER_BANK:
                self._blocks.popitem(last=False)
        else:
            self._blocks.move_to_end(epoch0)
        return block

    def _fill_row(self, block: _Block, i: int) -> None:
        """Generate one claimed epoch row outside the lock, then
        publish it.

        The claiming protocol makes this row single-writer, so the
        generation writes into ``block`` need no lock; the row only
        becomes visible (``filled``) under the lock, after every
        column — streams, RNG states, fused tracker and sharing — is
        complete.  A failed fill releases the claim so another thread
        can retry (generation is deterministic).
        """
        published = False
        try:
            states = self._generate_row(block, i)
            tracker = self._aggregate_tracker(block, i)
            sharing = self._aggregate_sharing(tracker[0], tracker[1])
            published = True
        finally:
            with self._lock:
                block.filling[i] = False
                if published:
                    block.rng_states[i] = states
                    block.tracker[i] = tracker
                    block.sharing[i] = sharing
                    block.filled[i] = True
                    if (
                        self._dir is not None
                        and not block.persisted
                        and bool(block.filled.all())
                    ):
                        self._pending_persist.append(block)
                self._cond.notify_all()

    def _generate_row(self, block: _Block, i: int) -> List[dict]:
        """Draw every thread's stream for one epoch row; returns the
        captured post-generation RNG states."""
        epoch = block.epoch0 + i
        instance = self.instance
        into = getattr(instance, "epoch_stream_into", None)
        states: List[dict] = []
        for t in range(self.n_threads):
            rng = self._seed_hasher.rng_for(t, epoch)
            if into is not None:
                n = into(
                    t, epoch, rng, self.length,
                    block.streams[i, t], block.writes[i, t],
                )
            else:
                granules, writes = instance.epoch_stream_with_writes(
                    t, epoch, rng, self.length
                )
                n = int(granules.size)
                if n:
                    block.streams[i, t, :n] = granules
                    block.writes[i, t, :n] = writes
            block.sizes[i, t] = n
            states.append(rng.bit_generator.state)
        return states

    def _aggregate_tracker(self, block: _Block, i: int) -> tuple:
        """Fused tracker columns for one generated row.

        Full rows (every thread drew exactly ``length`` accesses — all
        builtin region workloads) take a vectorized path: one row-wise
        sort plus a neighbour-diff keep mask computes every thread's
        ``np.unique(..., return_counts=True)`` at once (identical
        values — sorting and run-length counting are exact integer
        operations).  Ragged rows (trace replays) fall back to
        per-thread ``np.unique``.
        """
        sizes = block.sizes[i]
        n_threads = self.n_threads
        length = self.length
        if length > 0 and bool((sizes == length).all()):
            srt = np.sort(block.streams[i], axis=1)
            keep = np.empty((n_threads, length), dtype=bool)
            keep[:, 0] = True
            np.not_equal(srt[:, 1:], srt[:, :-1], out=keep[:, 1:])
            starts = np.flatnonzero(keep.reshape(-1))
            ids = srt.reshape(-1)[starts]
            counts = np.diff(np.append(starts, n_threads * length))
            offsets = np.zeros(n_threads + 1, dtype=np.int64)
            np.cumsum(keep.sum(axis=1), out=offsets[1:])
        else:
            ids_list: List[np.ndarray] = []
            counts_list: List[np.ndarray] = []
            offsets = np.zeros(n_threads + 1, dtype=np.int64)
            for t in range(n_threads):
                n = int(sizes[t])
                unique, counts_t = np.unique(
                    block.streams[i, t, :n], return_counts=True
                )
                ids_list.append(unique)
                counts_list.append(counts_t)
                offsets[t + 1] = offsets[t] + unique.size
            ids = (
                np.concatenate(ids_list)
                if ids_list else np.empty(0, dtype=np.int64)
            )
            counts = (
                np.concatenate(counts_list)
                if counts_list else np.empty(0, dtype=np.int64)
            )
        scaled = self._scaled_counts(sizes, offsets, counts)
        return (ids, offsets, counts, scaled)

    def _scaled_counts(
        self, sizes: np.ndarray, offsets: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """``counts`` with each thread's weight scale multiplied in.

        The scale vector is computed exactly as the engine's:
        ``dram_accesses / stream_size`` per active thread, zero for
        idle ones; each element of a thread's segment is multiplied by
        the same float64, so the products match the per-thread
        ``counts * weight_per_access`` bitwise.
        """
        scale = np.zeros(self.n_threads)
        active = sizes > 0
        scale[active] = self._dram / sizes[active]
        return counts * np.repeat(scale, np.diff(offsets))

    def _aggregate_sharing(
        self, ids: np.ndarray, offsets: np.ndarray
    ) -> tuple:
        """Packed three-level sharing summary from fused tracker ids.

        Only the 4KB level sorts: per-thread id segments are unique
        within each segment, so packing ``(id << tbits) | thread`` into
        one int64 key and sorting it is the stable by-id merge (equal
        ids order by thread; no two keys tie).  Each id run then yields
        its lowest (``first``) and highest (``last``) toucher, and a
        run of length >= 2 means >= 2 distinct threads (``multi``).

        The coarser levels never re-sort: a 2MB chunk's touching-thread
        set is the union over its 4KB granules, so its lowest toucher
        is the min of per-granule ``first``, its highest the max of
        per-granule ``last``, and it is multi-touched iff max > min —
        all segment reductions (``reduceat``) over the already-sorted
        granule runs.  1GB folds from 2MB the same way.
        """
        level_ids: List[np.ndarray] = []
        level_first: List[np.ndarray] = []
        level_multi: List[np.ndarray] = []
        if ids.size:
            seg_threads = np.repeat(
                np.arange(self.n_threads, dtype=np.int64), np.diff(offsets)
            )
            tbits = max(1, (self.n_threads - 1).bit_length())
            key = (ids << tbits) | seg_threads
            key.sort()
            lvl_ids = key >> tbits
            lvl_threads = (key & ((1 << tbits) - 1)).astype(np.int16)
            keep = np.empty(lvl_ids.size, dtype=bool)
            keep[0] = True
            np.not_equal(lvl_ids[1:], lvl_ids[:-1], out=keep[1:])
            starts = np.flatnonzero(keep)
            ends = np.empty_like(starts)
            ends[:-1] = starts[1:] - 1
            ends[-1] = lvl_ids.size - 1
            lvl_ids = lvl_ids[starts]
            lvl_first = lvl_threads[starts]
            lvl_last = lvl_threads[ends]
            for shift in (0, SHIFT_2M, SHIFT_1G - SHIFT_2M):
                if shift:
                    shifted = lvl_ids >> shift
                    keep = np.empty(shifted.size, dtype=bool)
                    keep[0] = True
                    np.not_equal(shifted[1:], shifted[:-1], out=keep[1:])
                    starts = np.flatnonzero(keep)
                    lvl_ids = shifted[starts]
                    lvl_first = np.minimum.reduceat(lvl_first, starts)
                    lvl_last = np.maximum.reduceat(lvl_last, starts)
                level_ids.append(lvl_ids)
                level_first.append(lvl_first)
                level_multi.append(lvl_last > lvl_first)
        else:
            for _ in range(3):
                level_ids.append(np.empty(0, dtype=np.int64))
                level_first.append(np.empty(0, dtype=np.int16))
                level_multi.append(np.empty(0, dtype=bool))
        level_offsets = np.zeros(4, dtype=np.int64)
        np.cumsum([a.size for a in level_ids], out=level_offsets[1:])
        return (
            np.concatenate(level_ids),
            np.concatenate(level_first),
            np.concatenate(level_multi),
            level_offsets,
        )

    # ------------------------------------------------------------------
    # Background prefill
    # ------------------------------------------------------------------
    def _request_prefill(self, epoch: int) -> None:
        """Advance the prefill horizon past ``epoch`` and (re)start the
        worker if it has gone idle."""
        if self.total_epochs <= 1 or not stream_prefetch_enabled():
            return
        target = min(epoch + _PREFILL_LOOKAHEAD, self.total_epochs - 1)
        start = False
        with self._lock:
            if target > self._prefill_target:
                self._prefill_target = target
            if not self._prefill_alive and self._next_unfilled() is not None:
                self._prefill_alive = True
                start = True
        if start:
            worker = threading.Thread(
                target=self._prefill_worker,
                name=f"streambank-prefill-{self.fingerprint or hex(id(self))}",
                daemon=True,
            )
            worker.start()

    def _next_unfilled(self) -> Optional[int]:
        """First epoch <= the prefill target needing a fill (neither
        filled nor claimed).  Caller holds ``self._lock``."""
        pos = int(self._prefill_pos)
        while pos <= self._prefill_target and pos < self.total_epochs:
            epoch0 = (pos // EPOCH_WINDOW) * EPOCH_WINDOW
            block = self._blocks.get(epoch0)
            if block is None:
                return pos
            i = pos - epoch0
            if block.filled[i]:
                pos += 1
                self._prefill_pos = pos
                continue
            if block.filling[i]:
                # Another thread is generating it; look past without
                # committing the cursor (the claim may fail).
                pos += 1
                continue
            return pos
        return None

    def _prefill_worker(self) -> None:
        """Background fill loop: materialize rows up to the requested
        horizon, then exit (consumers restart the worker as the horizon
        advances)."""
        while True:
            with self._lock:
                epoch = self._next_unfilled()
                if epoch is None:
                    self._prefill_alive = False
                    return
            self._ensure_row(epoch)
            self._drain_persist()

    def _drain_persist(self) -> None:
        """Persist queued blocks *outside* the lock.

        Rows complete blocks while holding ``self._lock``; doing the
        disk writes there would stall every concurrent shard on the
        bank's critical section (R108), so completed blocks are queued
        and written here after the caller releases the lock.  Draining
        is race-free: each block enters the queue exactly once (when
        its last row fills), and ``_persist`` writes via atomic
        temp-file renames.
        """
        while True:
            with self._lock:
                if not self._pending_persist:
                    return
                block = self._pending_persist.pop()
            self._persist(block)

    # ------------------------------------------------------------------
    # Optional on-disk store (REPRO_STREAM_CACHE)
    # ------------------------------------------------------------------
    def _paths(self, epoch0: int) -> Dict[str, str]:
        base = os.path.join(self._dir, f"b{epoch0}")
        return {
            "streams": base + ".streams.npy",
            "writes": base + ".writes.npy",
            "sizes": base + ".sizes.npy",
            "rng": base + ".rng.json",
            "agg": base + ".agg.npz",
            "ok": base + ".ok",
        }

    def _agg_payload(self, block: _Block) -> Dict[str, np.ndarray]:
        """Flatten a completed block's fused aggregation columns for
        the disk store (``scaled_counts`` is derived, recomputed on
        load)."""
        n_threads = self.n_threads
        t_row = np.zeros(block.n_epochs + 1, dtype=np.int64)
        t_off = np.zeros((block.n_epochs, n_threads + 1), dtype=np.int64)
        s_row = np.zeros(block.n_epochs + 1, dtype=np.int64)
        s_lvl = np.zeros((block.n_epochs, 4), dtype=np.int64)
        t_ids: List[np.ndarray] = []
        t_counts: List[np.ndarray] = []
        s_ids: List[np.ndarray] = []
        s_first: List[np.ndarray] = []
        s_multi: List[np.ndarray] = []
        for i in range(block.n_epochs):
            ids, offsets, counts, _ = block.tracker[i]
            t_ids.append(ids)
            t_counts.append(counts)
            t_off[i] = offsets
            t_row[i + 1] = t_row[i] + ids.size
            p_ids, p_first, p_multi, lvl = block.sharing[i]
            s_ids.append(p_ids)
            s_first.append(p_first)
            s_multi.append(p_multi)
            s_row[i + 1] = s_row[i] + p_ids.size
            s_lvl[i] = lvl
        return {
            "t_ids": np.concatenate(t_ids),
            "t_counts": np.concatenate(t_counts),
            "t_row": t_row,
            "t_off": t_off,
            "s_ids": np.concatenate(s_ids),
            "s_first": np.concatenate(s_first),
            "s_multi": np.concatenate(s_multi),
            "s_row": s_row,
            "s_lvl": s_lvl,
        }

    def _persist(self, block: _Block) -> None:
        """Best-effort write of a completed block (atomic per file; the
        ``.ok`` marker lands last so readers never see partial blocks)."""
        paths = self._paths(block.epoch0)
        agg = self._agg_payload(block)
        try:
            os.makedirs(self._dir, exist_ok=True)
            for key, array in (
                ("streams", block.streams),
                ("writes", block.writes),
                ("sizes", block.sizes),
            ):
                _atomic_write(
                    paths[key], self._dir,
                    lambda fh, a=array: np.save(fh, a),
                )
            _atomic_write(
                paths["agg"], self._dir,
                lambda fh: np.savez(fh, **agg),
            )
            _atomic_write(
                paths["rng"], self._dir,
                lambda fh: fh.write(
                    json.dumps(block.rng_states).encode("ascii")
                ),
            )
            _atomic_write(paths["ok"], self._dir, lambda fh: fh.write(b"ok"))
            block.persisted = True
        except OSError:
            pass

    def _load(self, epoch0: int) -> Optional[_Block]:
        """Load a persisted block memmapped, or ``None``."""
        if self._dir is None:
            return None
        paths = self._paths(epoch0)
        if not os.path.exists(paths["ok"]):
            return None
        # Sanctioned I/O under self._lock: the load-on-miss must stay
        # inside the critical section so a block is checked, loaded and
        # installed atomically (a miss is rare — once per block per
        # process — and every competing shard needs the block anyway).
        try:
            streams = np.load(paths["streams"], mmap_mode="r")  # lint: ignore[R108]
            writes = np.load(paths["writes"], mmap_mode="r")  # lint: ignore[R108]
            sizes = np.load(paths["sizes"])  # lint: ignore[R108]
            with open(paths["rng"], "r", encoding="ascii") as fh:  # lint: ignore[R108]
                rng_states = json.load(fh)  # lint: ignore[R108]
            with np.load(paths["agg"]) as stored:  # lint: ignore[R108]
                agg = {key: stored[key] for key in stored.files}
        except (OSError, ValueError, KeyError):
            return None
        n_epochs = max(1, min(EPOCH_WINDOW, self.total_epochs - epoch0))
        if (
            streams.shape != (n_epochs, self.n_threads, self.length)
            or writes.shape != streams.shape
            or sizes.shape != (n_epochs, self.n_threads)
            or len(rng_states) != n_epochs
        ):
            return None
        rows = self._rows_from_agg(agg, sizes, n_epochs)
        if rows is None:
            return None
        tracker, sharing = rows
        return _Block.from_store(
            epoch0, streams, writes, sizes, rng_states, tracker, sharing
        )

    def _rows_from_agg(
        self, agg: Dict[str, np.ndarray], sizes: np.ndarray, n_epochs: int
    ) -> Optional[Tuple[List[tuple], List[tuple]]]:
        """Rebuild per-row fused columns from a stored block, or
        ``None`` when the payload is inconsistent (stale store)."""
        try:
            t_ids, t_counts = agg["t_ids"], agg["t_counts"]
            t_row, t_off = agg["t_row"], agg["t_off"]
            s_ids, s_first = agg["s_ids"], agg["s_first"]
            s_multi, s_row, s_lvl = agg["s_multi"], agg["s_row"], agg["s_lvl"]
        except KeyError:
            return None
        if (
            t_row.shape != (n_epochs + 1,)
            or t_off.shape != (n_epochs, self.n_threads + 1)
            or s_row.shape != (n_epochs + 1,)
            or s_lvl.shape != (n_epochs, 4)
            or int(t_row[-1]) != t_ids.size
            or t_counts.shape != t_ids.shape
            or int(s_row[-1]) != s_ids.size
            or s_first.shape != s_ids.shape
            or s_multi.shape != s_ids.shape
        ):
            return None
        tracker: List[tuple] = []
        sharing: List[tuple] = []
        for i in range(n_epochs):
            ids = t_ids[int(t_row[i]):int(t_row[i + 1])]
            counts = t_counts[int(t_row[i]):int(t_row[i + 1])]
            offsets = t_off[i]
            if int(offsets[-1]) != ids.size:
                return None
            scaled = self._scaled_counts(sizes[i], offsets, counts)
            tracker.append((ids, offsets, counts, scaled))
            lo, hi = int(s_row[i]), int(s_row[i + 1])
            lvl = s_lvl[i]
            if int(lvl[-1]) != hi - lo:
                return None
            sharing.append(
                (s_ids[lo:hi], s_first[lo:hi], s_multi[lo:hi], lvl)
            )
        return tracker, sharing


def _atomic_write(path: str, directory: str, write) -> None:
    """Write via a temp file + rename so readers never see partials."""
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            write(fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
