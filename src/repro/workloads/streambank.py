"""Epoch-batched, memoized access-stream banks.

Profiling (``BENCH_engine.json``) showed ~74% of cold grid wall-clock
in the ``streams`` phase — per-(thread, epoch) Python-loop stream
generation repeated *per run*, even though the streams themselves are
policy-independent: generation never reads the address space, so a
``linux-4k`` and a ``thp`` run of the same workload on the same machine
draw exactly the same streams.  A :class:`StreamBank` generates each
(epoch, thread) stream once, stores the ``(granules, writes, size)``
rows in preallocated ``(n_threads, length)`` arrays the engine consumes
directly, and memoizes banks process-wide keyed by a fingerprint of
everything generation depends on: workload identity and scalars, the
simulation seed, and the stream length.

Three fidelity rules keep banked runs bit-identical to inline runs:

* streams are drawn with the engine's own per-thread generators
  (``rng_for(sim_seed, instance.seed, instance.name, "stream", t,
  epoch)``) through :meth:`WorkloadInstance.epoch_stream_into`, which
  draws in exactly the order of ``epoch_stream_with_writes``;
* the IBS sampler continues each thread's generator *after* stream
  generation, so the bank captures every generator's
  ``bit_generator.state`` post-generation and replays it through
  :func:`repro._util.rng_from_state` on demand;
* the engine treats bank arrays as read-only (it keeps its own
  ``stream_homes`` scratch), so one bank serves any number of
  concurrent runs.

Banks also pre-aggregate the access tracker's ``np.unique`` columns
and the per-epoch sharing summary (the other repeated per-run costs)
— see :meth:`StreamBank.tracker_columns`,
:meth:`StreamBank.sharing_columns` and the
:class:`repro.sim.tracker.AccessTracker` methods ``add_weights`` /
``merge_epoch_sharing``.

Environment knobs:

* ``REPRO_STREAM_BANK=0`` disables banking (the engine falls back to
  inline per-thread generation; results are bit-identical either way);
* ``REPRO_STREAM_CACHE=<dir>`` persists completed epoch blocks to disk
  (``.npy`` columns loaded back memmapped), so banks survive across
  processes of a grid sweep.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._util import rng_for, rng_from_state, stable_seed
from repro.vm.layout import SHIFT_1G, SHIFT_2M

#: Set to ``0``/``false`` to disable stream banking entirely.
STREAM_BANK_ENV = "REPRO_STREAM_BANK"
#: Directory for the optional on-disk block store (unset = memory only).
STREAM_CACHE_ENV = "REPRO_STREAM_CACHE"

#: Epochs per storage block.  Blocks are filled lazily epoch by epoch,
#: so a short run never generates past what it consumes; the window
#: only bounds allocation and disk-store granularity.
EPOCH_WINDOW = 16

_FALSE_VALUES = frozenset({"0", "false", "off", "no"})

_MAX_BANKS = 12
_MAX_BLOCKS_PER_BANK = 4

_LOCK = threading.Lock()
_BANKS: "OrderedDict[str, StreamBank]" = OrderedDict()
#: Banks for instances without a stable fingerprint (e.g. trace
#: replays): keyed by identity, garbage-collected with the instance.
_INSTANCE_BANKS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def stream_bank_enabled() -> bool:
    """Whether the engine should route stream generation through banks."""
    value = os.environ.get(STREAM_BANK_ENV, "").strip().lower()
    return value not in _FALSE_VALUES


def stream_cache_dir() -> Optional[str]:
    """The on-disk block-store directory, or ``None`` when disabled."""
    path = os.environ.get(STREAM_CACHE_ENV, "").strip()
    return path or None


def clear_stream_banks() -> None:
    """Drop every memoized bank (benchmarks and tests use this to
    measure or exercise cold generation)."""
    with _LOCK:
        _BANKS.clear()
        _INSTANCE_BANKS.clear()


def _dedupe_sorted(values: np.ndarray) -> np.ndarray:
    """Distinct values of an already-sorted array (``np.unique`` minus
    the redundant sort)."""
    if values.size <= 1:
        return values
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


_SCALAR_TYPES = (bool, int, float, str, bytes, type(None))


def _region_signature(region: object) -> tuple:
    """Scalar attributes of a region, in sorted order.

    Every array/list a builtin region holds is derived deterministically
    from these scalars in ``_on_bind``, so the scalars (plus the class
    name) pin the region's sampling behaviour.
    """
    scalars = tuple(
        (key, value)
        for key, value in sorted(vars(region).items())
        if isinstance(value, _SCALAR_TYPES)
    )
    return (type(region).__name__, scalars)


def bank_fingerprint(instance: object, sim_seed: int, length: int) -> Optional[str]:
    """Stable identity of everything stream generation depends on.

    Returns ``None`` for instances without a ``regions`` list (trace
    replays and other duck-typed instances): their streams depend on
    payload data we cannot cheaply fingerprint, so they get per-object
    banks instead of shareable ones.
    """
    regions = getattr(instance, "regions", None)
    if regions is None:
        return None
    parts = (
        type(instance).__name__,
        instance.name,
        instance.seed,
        sim_seed,
        length,
        instance.n_threads,
        instance.n_granules,
        instance.backing_1g,
        instance.total_epochs,
        tuple(_region_signature(region) for region in regions),
    )
    return f"{stable_seed(*parts):016x}"


def get_stream_bank(instance: object, sim_seed: int, length: int) -> "StreamBank":
    """The process-wide bank for ``(instance, sim_seed, length)``.

    Fingerprinted instances share one bank per fingerprint (this is
    what lets the two policy runs of a grid cell reuse each other's
    streams); unfingerprintable instances get a bank tied to the object
    itself.
    """
    fingerprint = bank_fingerprint(instance, sim_seed, length)
    with _LOCK:
        if fingerprint is None:
            per_instance = _INSTANCE_BANKS.get(instance)
            if per_instance is None:
                per_instance = {}
                _INSTANCE_BANKS[instance] = per_instance
            bank = per_instance.get((sim_seed, length))
            if bank is None:
                bank = StreamBank(instance, sim_seed, length)
                per_instance[(sim_seed, length)] = bank
            return bank
        bank = _BANKS.get(fingerprint)
        if bank is not None and (
            bank_fingerprint(bank.instance, sim_seed, length) != fingerprint
        ):
            # The stored instance's regions were re-bound (e.g. via
            # ``with_1g_backing``) after the bank memoized them; its
            # future fills would no longer match the key.  Rebuild.
            bank = None
        if bank is None:
            bank = StreamBank(
                instance,
                sim_seed,
                length,
                fingerprint=fingerprint,
                cache_dir=stream_cache_dir(),
            )
            _BANKS[fingerprint] = bank
            while len(_BANKS) > _MAX_BANKS:
                _BANKS.popitem(last=False)
        else:
            _BANKS.move_to_end(fingerprint)
        return bank


class _Block:
    """Storage for one ``EPOCH_WINDOW``-sized range of epochs."""

    __slots__ = ("epoch0", "n_epochs", "streams", "writes", "sizes",
                 "rng_states", "filled", "persisted")

    def __init__(self, epoch0: int, n_epochs: int, n_threads: int,
                 length: int) -> None:
        self.epoch0 = epoch0
        self.n_epochs = n_epochs
        self.streams = np.zeros((n_epochs, n_threads, length), dtype=np.int64)
        self.writes = np.zeros((n_epochs, n_threads, length), dtype=bool)
        self.sizes = np.zeros((n_epochs, n_threads), dtype=np.int64)
        self.rng_states: List[Optional[List[dict]]] = [None] * n_epochs
        self.filled = np.zeros(n_epochs, dtype=bool)
        self.persisted = False

    @classmethod
    def from_store(
        cls,
        epoch0: int,
        streams: np.ndarray,
        writes: np.ndarray,
        sizes: np.ndarray,
        rng_states: List[List[dict]],
    ) -> "_Block":
        block = cls.__new__(cls)
        block.epoch0 = epoch0
        block.n_epochs = streams.shape[0]
        block.streams = streams
        block.writes = writes
        block.sizes = sizes
        block.rng_states = list(rng_states)
        block.filled = np.ones(block.n_epochs, dtype=bool)
        block.persisted = True
        return block


class StreamBank:
    """Memoized per-epoch access streams for one workload instance."""

    def __init__(
        self,
        instance: object,
        sim_seed: int,
        length: int,
        fingerprint: Optional[str] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.instance = instance
        self.sim_seed = sim_seed
        self.length = length
        self.n_threads = int(instance.n_threads)
        self.total_epochs = int(instance.total_epochs)
        self.fingerprint = fingerprint
        self._dir = (
            os.path.join(cache_dir, fingerprint)
            if cache_dir is not None and fingerprint is not None
            else None
        )
        self._lock = threading.Lock()
        self._blocks: "OrderedDict[int, _Block]" = OrderedDict()
        self._tracker_memo: Dict[Tuple[int, int], tuple] = {}
        self._sharing_memo: Dict[int, tuple] = {}
        #: Completed blocks awaiting persistence.  ``_fill`` runs under
        #: ``self._lock`` and must not do disk I/O there (R108), so it
        #: queues the block and the public entry points drain the queue
        #: after releasing the lock.
        self._pending_persist: List[_Block] = []

    # ------------------------------------------------------------------
    # Engine-facing API
    # ------------------------------------------------------------------
    def epoch_arrays(
        self, epoch: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(streams, writes, sizes)`` views for one epoch.

        Shapes ``(n_threads, length)``, ``(n_threads, length)`` and
        ``(n_threads,)``; rows past each thread's size are zero.  The
        arrays are shared — callers must treat them as read-only.
        """
        with self._lock:
            block, i = self._row(epoch)
            arrays = (block.streams[i], block.writes[i], block.sizes[i])
        self._drain_persist()
        return arrays

    def ibs_rngs(self, epoch: int) -> List[np.random.Generator]:
        """Fresh per-thread generators positioned after stream draws.

        Each call rebuilds the generators from the captured states, so
        every run's IBS sampler consumes its own copies — exactly the
        values the inline path would have drawn.
        """
        with self._lock:
            block, i = self._row(epoch)
            states = block.rng_states[i]
        self._drain_persist()
        return [rng_from_state(state) for state in states]

    def tracker_columns(self, epoch: int, thread: int) -> tuple:
        """``(unique, counts, unique_2m, unique_1g)`` of one stream.

        The :class:`~repro.sim.tracker.AccessTracker` aggregation
        (``np.unique`` over every thread-epoch stream) is identical
        across runs sharing a bank, so it is computed here once and
        memoized alongside the streams.
        """
        key = (epoch, thread)
        columns = self._tracker_memo.get(key)
        if columns is not None:
            # Sanctioned escape: the memoised tuple is immutable by
            # contract (sorted arrays callers must not write), so the
            # reference may leave the lock.
            return columns  # lint: ignore[R107]
        with self._lock:
            columns = self._tracker_memo.get(key)
            if columns is None:
                block, i = self._row(epoch)
                n = int(block.sizes[i, thread])
                unique, counts = np.unique(
                    block.streams[i, thread, :n], return_counts=True
                )
                # ``unique`` is sorted, so the shifted views are sorted
                # too; a neighbour-diff dedupe equals ``np.unique``
                # without re-sorting.
                columns = (
                    unique,
                    counts,
                    _dedupe_sorted(unique >> SHIFT_2M),
                    _dedupe_sorted(unique >> SHIFT_1G),
                )
                self._tracker_memo[key] = columns
        self._drain_persist()
        return columns

    def sharing_columns(self, epoch: int) -> tuple:
        """Per-level epoch sharing summary: three ``(ids, first, multi)``.

        For each page level (4KB granule, 2MB chunk, 1GB chunk):
        the sorted distinct ids touched by *any* thread this epoch,
        the lowest thread id touching each, and whether two or more
        distinct threads touched it.  Together with the per-thread
        :meth:`tracker_columns` weights this is everything the access
        tracker needs from an epoch
        (:meth:`~repro.sim.tracker.AccessTracker.merge_epoch_sharing`),
        and it is policy-independent, so runs sharing a bank pay the
        aggregation once.
        """
        columns = self._sharing_memo.get(epoch)
        if columns is not None:
            # Sanctioned escape: per-level tuples are immutable by
            # contract, like tracker_columns above.
            return columns  # lint: ignore[R107]
        per_level = ([], [], [])
        threads_per_level = ([], [], [])
        for t in range(self.n_threads):
            unique, _, u2, u1 = self.tracker_columns(epoch, t)
            for slot, ids in enumerate((unique, u2, u1)):
                if ids.size:
                    per_level[slot].append(ids)
                    threads_per_level[slot].append(
                        np.full(ids.size, t, dtype=np.int16)
                    )
        levels = []
        for ids_list, thread_list in zip(per_level, threads_per_level):
            if not ids_list:
                levels.append(
                    (
                        np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=np.int16),
                        np.empty(0, dtype=bool),
                    )
                )
                continue
            all_ids = np.concatenate(ids_list)
            all_threads = np.concatenate(thread_list)
            # Stable sort by id: per-thread lists are deduplicated and
            # appended in ascending thread order, so the first row of
            # each id run is its lowest toucher.
            order = np.argsort(all_ids, kind="stable")
            sorted_ids = all_ids[order]
            sorted_threads = all_threads[order]
            keep = np.empty(sorted_ids.size, dtype=bool)
            keep[0] = True
            np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=keep[1:])
            starts = np.flatnonzero(keep)
            touches = np.diff(np.append(starts, sorted_ids.size))
            levels.append(
                (sorted_ids[starts], sorted_threads[starts], touches >= 2)
            )
        columns = tuple(levels)
        with self._lock:
            self._sharing_memo.setdefault(epoch, columns)
        return columns

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    def _row(self, epoch: int) -> Tuple[_Block, int]:
        """The (block, row-index) holding ``epoch``, filled."""
        epoch0 = (epoch // EPOCH_WINDOW) * EPOCH_WINDOW
        block = self._blocks.get(epoch0)
        if block is None:
            block = self._load(epoch0)
            if block is None:
                n_epochs = max(1, min(EPOCH_WINDOW, self.total_epochs - epoch0))
                block = _Block(epoch0, n_epochs, self.n_threads, self.length)
            self._blocks[epoch0] = block
            while len(self._blocks) > _MAX_BLOCKS_PER_BANK:
                old0, old = self._blocks.popitem(last=False)
                for e in range(old0, old0 + old.n_epochs):
                    self._sharing_memo.pop(e, None)
                    for t in range(self.n_threads):
                        self._tracker_memo.pop((e, t), None)
        else:
            self._blocks.move_to_end(epoch0)
        i = epoch - block.epoch0
        if not block.filled[i]:
            self._fill(block, i)
        return block, i

    def _fill(self, block: _Block, i: int) -> None:
        """Generate every thread's stream for one epoch row."""
        epoch = block.epoch0 + i
        instance = self.instance
        into = getattr(instance, "epoch_stream_into", None)
        states: List[dict] = []
        for t in range(self.n_threads):
            rng = rng_for(
                self.sim_seed, instance.seed, instance.name, "stream", t, epoch
            )
            if into is not None:
                n = into(
                    t, epoch, rng, self.length,
                    block.streams[i, t], block.writes[i, t],
                )
            else:
                granules, writes = instance.epoch_stream_with_writes(
                    t, epoch, rng, self.length
                )
                n = int(granules.size)
                if n:
                    block.streams[i, t, :n] = granules
                    block.writes[i, t, :n] = writes
            block.sizes[i, t] = n
            states.append(rng.bit_generator.state)
        block.rng_states[i] = states
        block.filled[i] = True
        if self._dir is not None and not block.persisted and block.filled.all():
            self._pending_persist.append(block)

    def _drain_persist(self) -> None:
        """Persist queued blocks *outside* the lock.

        ``_fill`` completes blocks while holding ``self._lock``; doing
        the disk writes there would stall every concurrent shard on the
        bank's critical section (R108), so completed blocks are queued
        and written here after the caller releases the lock.  Draining
        is race-free: each block enters the queue exactly once (when
        its last row fills), and ``_persist`` writes via atomic
        temp-file renames.
        """
        while True:
            with self._lock:
                if not self._pending_persist:
                    return
                block = self._pending_persist.pop()
            self._persist(block)

    # ------------------------------------------------------------------
    # Optional on-disk store (REPRO_STREAM_CACHE)
    # ------------------------------------------------------------------
    def _paths(self, epoch0: int) -> Dict[str, str]:
        base = os.path.join(self._dir, f"b{epoch0}")
        return {
            "streams": base + ".streams.npy",
            "writes": base + ".writes.npy",
            "sizes": base + ".sizes.npy",
            "rng": base + ".rng.json",
            "ok": base + ".ok",
        }

    def _persist(self, block: _Block) -> None:
        """Best-effort write of a completed block (atomic per file; the
        ``.ok`` marker lands last so readers never see partial blocks)."""
        paths = self._paths(block.epoch0)
        try:
            os.makedirs(self._dir, exist_ok=True)
            for key, array in (
                ("streams", block.streams),
                ("writes", block.writes),
                ("sizes", block.sizes),
            ):
                _atomic_write(
                    paths[key], self._dir,
                    lambda fh, a=array: np.save(fh, a),
                )
            _atomic_write(
                paths["rng"], self._dir,
                lambda fh: fh.write(
                    json.dumps(block.rng_states).encode("ascii")
                ),
            )
            _atomic_write(paths["ok"], self._dir, lambda fh: fh.write(b"ok"))
            block.persisted = True
        except OSError:
            pass

    def _load(self, epoch0: int) -> Optional[_Block]:
        """Load a persisted block memmapped, or ``None``."""
        if self._dir is None:
            return None
        paths = self._paths(epoch0)
        if not os.path.exists(paths["ok"]):
            return None
        # Sanctioned I/O under self._lock: the load-on-miss must stay
        # inside the critical section so a block is checked, loaded and
        # installed atomically (a miss is rare — once per block per
        # process — and every competing shard needs the block anyway).
        try:
            streams = np.load(paths["streams"], mmap_mode="r")  # lint: ignore[R108]
            writes = np.load(paths["writes"], mmap_mode="r")  # lint: ignore[R108]
            sizes = np.load(paths["sizes"])  # lint: ignore[R108]
            with open(paths["rng"], "r", encoding="ascii") as fh:  # lint: ignore[R108]
                rng_states = json.load(fh)  # lint: ignore[R108]
        except (OSError, ValueError):
            return None
        n_epochs = max(1, min(EPOCH_WINDOW, self.total_epochs - epoch0))
        if (
            streams.shape != (n_epochs, self.n_threads, self.length)
            or writes.shape != streams.shape
            or sizes.shape != (n_epochs, self.n_threads)
            or len(rng_states) != n_epochs
        ):
            return None
        return _Block.from_store(epoch0, streams, writes, sizes, rng_states)


def _atomic_write(path: str, directory: str, write) -> None:
    """Write via a temp file + rename so readers never see partials."""
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            write(fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
