"""Trace-driven workloads: record, save, load and replay access traces.

The synthetic benchmark models in this package are calibrated to the
paper's published traits, but a downstream user evaluating Carrefour-LP
on *their* application wants to feed in real behaviour.  This module
provides that path:

* :class:`TraceRecorder` captures the per-thread, per-epoch access
  streams (with store flags) of any workload instance into a
  :class:`TraceData` object;
* traces round-trip through a compact ``.npz`` file, so they can also
  be produced externally (e.g. from a PIN/DynamoRIO tool or ``perf
  mem`` records binned into 4KB granules and epochs);
* :class:`TraceWorkloadInstance` replays a trace through the simulation
  engine under any placement policy — placement happens via ordinary
  first-touch faulting of the replayed stream.

A replayed trace reproduces the recorded access *pattern* exactly, so
policy comparisons on it are apples-to-apples with the live run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.topology import NumaTopology
from repro.workloads.base import CostProfile, FaultBatch, TlbGroup, WorkloadInstance


@dataclass
class TraceData:
    """A recorded multi-threaded access trace.

    Flat representation: sample ``i`` belongs to ``thread[i]`` during
    ``epoch[i]`` and touched 4KB granule ``granule[i]``;
    ``is_write[i]`` marks stores.  ``cost`` carries the intensity
    constants needed to time the replay.
    """

    n_threads: int
    n_granules: int
    total_epochs: int
    thread: np.ndarray
    epoch: np.ndarray
    granule: np.ndarray
    is_write: np.ndarray
    cost: CostProfile
    tlb_run_length: float = 8.0

    def __post_init__(self) -> None:
        n = len(self.granule)
        for name in ("thread", "epoch", "is_write"):
            if len(getattr(self, name)) != n:
                raise ConfigurationError("trace arrays must have equal length")
        if n and int(self.granule.max()) >= self.n_granules:
            raise ConfigurationError("trace touches granules beyond n_granules")
        if n and int(self.thread.max()) >= self.n_threads:
            raise ConfigurationError("trace references unknown threads")
        if n and int(self.epoch.max()) >= self.total_epochs:
            raise ConfigurationError("trace references epochs beyond total_epochs")

    def __len__(self) -> int:
        return int(len(self.granule))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the trace as a compressed ``.npz`` file."""
        np.savez_compressed(
            path,
            n_threads=self.n_threads,
            n_granules=self.n_granules,
            total_epochs=self.total_epochs,
            thread=self.thread.astype(np.int16),
            epoch=self.epoch.astype(np.int32),
            granule=self.granule.astype(np.int64),
            is_write=self.is_write.astype(bool),
            cost=np.array(
                [
                    self.cost.cpu_seconds,
                    self.cost.mem_accesses,
                    self.cost.dram_accesses,
                    self.cost.instructions,
                    self.cost.mlp,
                ]
            ),
            tlb_run_length=self.tlb_run_length,
        )

    @classmethod
    def load(cls, path: str) -> "TraceData":
        """Load a trace saved by :meth:`save`."""
        with np.load(path) as data:
            cost_arr = data["cost"]
            return cls(
                n_threads=int(data["n_threads"]),
                n_granules=int(data["n_granules"]),
                total_epochs=int(data["total_epochs"]),
                thread=data["thread"].astype(np.int64),
                epoch=data["epoch"].astype(np.int64),
                granule=data["granule"].astype(np.int64),
                is_write=data["is_write"].astype(bool),
                cost=CostProfile(
                    cpu_seconds=float(cost_arr[0]),
                    mem_accesses=float(cost_arr[1]),
                    dram_accesses=float(cost_arr[2]),
                    instructions=float(cost_arr[3]),
                    mlp=float(cost_arr[4]),
                ),
                tlb_run_length=float(data["tlb_run_length"]),
            )


class TraceRecorder:
    """Records the access streams of a live workload instance."""

    def record(
        self,
        instance: WorkloadInstance,
        stream_length: int = 1024,
        epochs: Optional[int] = None,
    ) -> TraceData:
        """Generate and capture the instance's streams.

        Uses the instance's own deterministic stream RNGs, so the trace
        matches what the engine would have replayed live with the same
        ``stream_length``.
        """
        if stream_length <= 0:
            raise ConfigurationError("stream_length must be positive")
        total_epochs = epochs if epochs is not None else instance.total_epochs
        threads, epochs_out, granules, writes = [], [], [], []
        for epoch in range(total_epochs):
            for t in range(instance.n_threads):
                rng = instance.stream_rng(t, epoch)
                g, w = instance.epoch_stream_with_writes(
                    t, epoch, rng, stream_length
                )
                if g.size == 0:
                    continue
                threads.append(np.full(g.size, t, dtype=np.int64))
                epochs_out.append(np.full(g.size, epoch, dtype=np.int64))
                granules.append(g)
                writes.append(w)
        if not granules:
            raise ConfigurationError("the instance produced no accesses")
        run_lengths = [
            grp.run_length for grp in instance.tlb_groups(0, 0) if grp.weight > 0
        ]
        return TraceData(
            n_threads=instance.n_threads,
            n_granules=instance.n_granules,
            total_epochs=total_epochs,
            thread=np.concatenate(threads),
            epoch=np.concatenate(epochs_out),
            granule=np.concatenate(granules),
            is_write=np.concatenate(writes),
            cost=instance.cost,
            tlb_run_length=float(np.mean(run_lengths)) if run_lengths else 8.0,
        )


class TraceWorkloadInstance:
    """Replays a :class:`TraceData` through the simulation engine.

    Implements the engine-facing workload interface.  There is no
    allocation plan: the replayed stream demand-faults memory in, so
    first-touch placement emerges from the trace itself, and every
    placement policy (THP, Carrefour, Carrefour-LP, ...) acts on the
    same accesses the original application made.
    """

    def __init__(
        self, name: str, machine: NumaTopology, trace: TraceData, seed: int = 0
    ) -> None:
        if trace.n_threads > machine.n_cores:
            raise ConfigurationError(
                f"trace has {trace.n_threads} threads but machine only"
                f" {machine.n_cores} cores"
            )
        self.name = name
        self.machine = machine
        self.trace = trace
        self.seed = seed
        self.n_threads = trace.n_threads
        self.n_granules = trace.n_granules
        self.total_epochs = trace.total_epochs
        self.cost = trace.cost
        self.backing_1g = False
        # Index the flat trace by (epoch, thread) once.
        order = np.lexsort((trace.thread, trace.epoch))
        self._granule = trace.granule[order]
        self._write = trace.is_write[order]
        keys = trace.epoch[order] * (trace.n_threads + 1) + trace.thread[order]
        boundaries = np.flatnonzero(np.diff(keys)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(keys)]])
        self._slices: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for s, e in zip(starts, ends):
            epoch = int(keys[s]) // (trace.n_threads + 1)
            thread = int(keys[s]) % (trace.n_threads + 1)
            self._slices[(epoch, thread)] = (int(s), int(e))
        # Per-thread distinct-granule counts for the TLB geometry.
        self._distinct: List[float] = []
        self._extents: List[Tuple[int, int]] = []
        for t in range(trace.n_threads):
            mask = trace.thread == t
            if np.any(mask):
                touched = np.unique(trace.granule[mask])
                self._distinct.append(float(touched.size))
                self._extents.append((int(touched.min()), int(touched.max()) + 1))
            else:
                self._distinct.append(1.0)
                self._extents.append((0, 1))

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------
    def premap_epoch(self, epoch, address_space, thread_nodes, thp_alloc,
                     interleave=False) -> FaultBatch:
        """Traces have no allocation plan; faulting happens on access."""
        return FaultBatch.zeros(self.n_threads)

    def epoch_stream_with_writes(
        self, thread: int, epoch: int, rng: np.random.Generator, length: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Replay the recorded stream (subsampled to ``length`` if longer)."""
        span = self._slices.get((epoch, thread))
        if span is None:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        s, e = span
        g = self._granule[s:e]
        w = self._write[s:e]
        if g.size > length:
            idx = rng.choice(g.size, size=length, replace=False)
            idx.sort()
            return g[idx], w[idx]
        return g, w

    def epoch_stream(
        self, thread: int, epoch: int, rng: np.random.Generator, length: int
    ) -> np.ndarray:
        """Granule stream only (compatibility helper)."""
        return self.epoch_stream_with_writes(thread, epoch, rng, length)[0]

    def tlb_groups(self, thread: int, epoch: int) -> List[TlbGroup]:
        """Single working-set group estimated from the trace."""
        lo, hi = self._extents[thread]
        distinct = self._distinct[thread]
        return [
            TlbGroup(
                lo=lo,
                hi=hi,
                weight=1.0,
                distinct_4k=distinct,
                distinct_2m=max(1.0, min(distinct, (hi - lo) / 512.0)),
                distinct_1g=max(1.0, min(distinct, (hi - lo) / 262144.0)),
                run_length=self.trace.tlb_run_length,
                sequential=False,
            )
        ]

    def stream_rng(self, thread: int, epoch: int) -> np.random.Generator:
        """Deterministic RNG (only used to subsample long epochs)."""
        from repro._util import rng_for

        return rng_for(self.seed, self.name, "trace", thread, epoch)
