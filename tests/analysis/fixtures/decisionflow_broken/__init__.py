"""Deliberately broken decision kernel for the R109-R113 CI step.

CI runs ``repro lint --deep`` over this package and asserts the run
*fails* with the expected rule ids — proving the decision-flow rules
actually gate a broken kernel rather than silently passing.  Each
module documents which rules it violates.  Never "fix" these files.
"""
