"""Decision classes with deliberate contract violations.

* ``OrphanDecision`` — no executor handler (R109).
* ``ConfusedDecision`` — declares domain ``thp`` but claims ``page``
  targets (R113).
"""

from dataclasses import dataclass
from typing import ClassVar, Tuple


@dataclass(frozen=True)
class Decision:
    domain: ClassVar[str] = "none"
    counters: ClassVar[Tuple[str, ...]] = ()

    def targets(self):
        return ()


@dataclass(frozen=True)
class MigratePage(Decision):
    page_id: int
    dst_node: int

    domain: ClassVar[str] = "page"
    counters: ClassVar[Tuple[str, ...]] = ("bytes_migrated",)

    def targets(self):
        return (("page", self.page_id),)


@dataclass(frozen=True)
class OrphanDecision(Decision):
    """R109: yielded by a policy but no ``_apply_*`` handler exists."""

    page_id: int

    domain: ClassVar[str] = "page"
    counters: ClassVar[Tuple[str, ...]] = ("bytes_migrated",)

    def targets(self):
        return (("page", self.page_id),)


@dataclass(frozen=True)
class ConfusedDecision(Decision):
    """R113: domain says ``thp`` but the targets claim ``page``."""

    page_id: int

    domain: ClassVar[str] = "thp"

    def targets(self):
        return (("page", self.page_id),)
