"""Executor whose HANDLERS table does not cover every decision (R109)."""

from typing import Callable, ClassVar, Dict, Tuple, Type

from .decisions import Decision, MigratePage


class Outcome:
    def __init__(self, applied):
        self.applied = applied


class BrokenExecutor:
    def __init__(self, sim):
        self.sim = sim

    def _apply_migrate_page(self, decision, summary):
        summary.bytes_migrated += 4096
        return Outcome(True)

    HANDLERS: ClassVar[Dict[Type[Decision], Callable]] = {
        MigratePage: _apply_migrate_page,
        # OrphanDecision and ConfusedDecision are missing: R109.
    }

    CONFLICT_DOMAINS: ClassVar[Tuple[str, ...]] = ("page",)

    def _execute(self, decision, summary):
        handler = self.HANDLERS[type(decision)]
        return handler(self, decision, summary)
