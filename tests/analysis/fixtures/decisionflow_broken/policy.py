"""A decider that reaches around the executor (R110).

``ImpurePolicy.decide`` mutates simulation state directly instead of
yielding a decision, through a one-call helper so only the
interprocedural write-effect analysis can see it.
"""

from .decisions import Decision, MigratePage, OrphanDecision


class PlacementPolicy:
    name = "base"

    def decide(self, sim, samples, window):
        yield MigratePage(0, 1)


class ImpurePolicy(PlacementPolicy):
    name = "impure"

    def decide(self, sim, samples, window):
        self._bump(sim)  # R110: writes sim.stats.moves
        yield OrphanDecision(0)

    def _bump(self, sim):
        sim.stats.moves = sim.stats.moves + 1
