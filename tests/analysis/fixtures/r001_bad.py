"""R001 fixture: cache_key drops two fields (the PR-1 bug class)."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BadSettings:
    workload: str = "CG.D"
    seed: int = 0
    scale: float = 1.0
    max_epochs: int = 100

    def cache_key(self):
        # Forgets scale and max_epochs: two configs differing only in
        # those fields collide in the memo.
        return (self.workload, self.seed)


@dataclass
class BadFingerprint:
    name: str = "x"
    version: int = 1

    def run_fingerprint(self):
        return f"{self.name}"
