"""R001 counterexamples: complete keys, exclusions, generic coverage."""

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, FrozenSet


@dataclass(frozen=True)
class CompleteSettings:
    workload: str = "CG.D"
    seed: int = 0
    scale: float = 1.0

    def cache_key(self):
        return (self.workload, self.seed, self.scale)


@dataclass(frozen=True)
class ExcludedSettings:
    workload: str = "CG.D"
    seed: int = 0
    verbose: bool = False

    _CACHE_KEY_EXCLUDE: ClassVar[FrozenSet[str]] = frozenset({"verbose"})

    def cache_key(self):
        return (self.workload, self.seed)


@dataclass(frozen=True)
class GenericSettings:
    workload: str = "CG.D"
    seed: int = 0
    scale: float = 1.0

    def fingerprint(self):
        return tuple(
            getattr(self, f.name) for f in dataclasses.fields(self)
        )


@dataclass(frozen=True)
class NoKeyMethod:
    workload: str = "CG.D"
    seed: int = 0
