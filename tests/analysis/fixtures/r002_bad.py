"""R002 fixture: unseeded randomness outside ``rng_for``."""

import random

import numpy as np


def fresh_generator():
    # Unseeded: every process draws a different stream.
    return np.random.default_rng()


def noisy_value():
    return np.random.normal(0.0, 1.0)


def shuffled(items):
    random.shuffle(items)
    return items
