"""R002 counterexample: all randomness flows through seeded generators."""

import numpy as np


def stream(rng: np.random.Generator, n: int) -> np.ndarray:
    """Callers hand in a generator built by ``repro._util.rng_for``."""
    return rng.integers(0, 100, size=n)


def pick(rng: np.random.Generator, items):
    return items[int(rng.integers(0, len(items)))]
