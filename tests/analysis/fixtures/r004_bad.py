"""R004 fixture: broad exception handlers that swallow silently."""


def load(path):
    try:
        with open(path) as fh:
            return fh.read()
    except Exception:
        return None


def cleanup(resource):
    try:
        resource.close()
    except:  # noqa: E722
        pass
