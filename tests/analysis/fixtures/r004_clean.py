"""R004 counterexamples: narrow, re-raising, or logging handlers."""

import logging

logger = logging.getLogger(__name__)


def load(path):
    try:
        with open(path) as fh:
            return fh.read()
    except (OSError, ValueError):
        return None


def load_logged(path):
    try:
        with open(path) as fh:
            return fh.read()
    except Exception as exc:
        logger.debug("unreadable %s: %r", path, exc)
        return None


def load_reraise(path):
    try:
        with open(path) as fh:
            return fh.read()
    except BaseException:
        raise
