"""R002 fixture: wall-clock reads inside simulation code."""

import time
from datetime import datetime


def epoch_stamp():
    return time.time()


def run_label():
    return datetime.now().isoformat()
