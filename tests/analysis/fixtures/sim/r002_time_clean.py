"""R002 counterexample: simulated time comes from the engine state."""


def epoch_stamp(sim_time_s: float, epoch: int) -> str:
    return f"epoch {epoch} at t={sim_time_s:.3f}s"
