"""R003 fixture: ordering-dependent numeric accumulation."""


def total_traffic(per_node: dict) -> float:
    total = 0.0
    for node, requests in per_node.items():
        total += requests
    return total


def sum_values(per_node: dict) -> float:
    return sum(v for v in per_node.values())


def count_unique(pages) -> int:
    seen = set(pages)
    weight = 0
    for page in seen:
        weight += page
    return weight
