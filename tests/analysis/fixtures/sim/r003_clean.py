"""R003 counterexamples: sorted iteration and non-accumulating loops."""


def total_traffic(per_node: dict) -> float:
    total = 0.0
    for node, requests in sorted(per_node.items()):
        total += requests
    return total


def sum_values(per_node: dict) -> float:
    return sum(per_node[node] for node in sorted(per_node))


def collect(per_node: dict) -> list:
    # Iterating a dict without numeric accumulation is fine.
    out = []
    for node in per_node.values():
        out.append(node)
    return out
