"""R005 fixture: mutable defaults and float equality in sim code."""


def record(value, log=[]):
    log.append(value)
    return log


def configure(options={}):
    return dict(options)


def is_idle(load: float) -> bool:
    return load == 0.0


def changed(a: float) -> bool:
    return a != 1.5
