"""R005 counterexamples: None defaults and ordered float comparisons."""


def record(value, log=None):
    if log is None:
        log = []
    log.append(value)
    return log


def is_idle(load: float) -> bool:
    return load <= 0.0


def same_count(a: int, b: int) -> bool:
    # Integer equality is exact and allowed.
    return a == b
