"""Tests for the lint-baseline machinery (``--baseline`` satellite)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    BASELINE_VERSION,
    BaselineError,
    baseline_counts,
    filter_new,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.linter import Finding


def finding(rule="R002", path="src/repro/sim/x.py", line=10, message="bad"):
    return Finding(rule=rule, path=path, line=line, col=1, message=message)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_ignores_line_and_column():
    a = finding(line=10)
    b = Finding(rule="R002", path="src/repro/sim/x.py", line=99, col=7, message="bad")
    assert fingerprint(a) == fingerprint(b)


def test_fingerprint_distinguishes_rule_path_message():
    base = finding()
    assert fingerprint(base) != fingerprint(finding(rule="R003"))
    assert fingerprint(base) != fingerprint(finding(path="src/other.py"))
    assert fingerprint(base) != fingerprint(finding(message="worse"))


def test_fingerprint_normalizes_path_spelling():
    assert fingerprint(finding(path="./src/x.py")) == fingerprint(
        finding(path="src/x.py")
    )
    assert fingerprint(finding(path="src\\x.py")) == fingerprint(
        finding(path="src/x.py")
    )


def test_baseline_counts_duplicates():
    counts = baseline_counts([finding(), finding(), finding(rule="R003")])
    assert counts[fingerprint(finding())] == 2
    assert counts[fingerprint(finding(rule="R003"))] == 1


# ----------------------------------------------------------------------
# Round trip and validation
# ----------------------------------------------------------------------
def test_write_load_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [finding(), finding(), finding(rule="R003")]
    write_baseline(path, findings)
    payload = json.loads(path.read_text())
    assert payload["version"] == BASELINE_VERSION
    assert load_baseline(path) == baseline_counts(findings)


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(BaselineError):
        load_baseline(tmp_path / "absent.json")


def test_load_malformed_json_raises(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError):
        load_baseline(path)


@pytest.mark.parametrize(
    "payload",
    [
        [],  # not an object
        {"version": 99, "counts": {}},  # unknown version
        {"version": BASELINE_VERSION},  # missing counts
        {"version": BASELINE_VERSION, "counts": []},  # counts not a dict
        {"version": BASELINE_VERSION, "counts": {"k": "one"}},  # bad value
    ],
)
def test_load_rejects_bad_shapes(tmp_path, payload):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(BaselineError):
        load_baseline(path)


# ----------------------------------------------------------------------
# Filtering
# ----------------------------------------------------------------------
def test_filter_new_absorbs_baselined_findings():
    old = finding()
    new = finding(message="fresh")
    baseline = baseline_counts([old])
    assert filter_new([old, new], baseline) == [new]


def test_filter_new_counts_per_fingerprint():
    # One baselined occurrence absorbs exactly one of two duplicates.
    baseline = baseline_counts([finding()])
    remaining = filter_new([finding(line=1), finding(line=2)], baseline)
    assert len(remaining) == 1
    assert remaining[0].line == 2  # absorbed in source order


def test_filter_new_with_stale_entries_and_empty_baseline():
    stale = baseline_counts([finding(message="long gone")])
    fresh = finding()
    assert filter_new([fresh], stale) == [fresh]
    assert filter_new([fresh], {}) == [fresh]
    assert filter_new([], stale) == []
