"""Cache-key completeness regression, driven by R001 as a library.

PR 1 shipped a memo key that silently dropped four ``SimConfig``
fields; the R001 rule exists so that bug class cannot recur.  These
tests (a) run R001 over the real tree so any new config dataclass with
an incomplete ``cache_key``/``fingerprint`` fails CI, (b) prove the
rule would actually catch a regression by injecting one, and (c) pin
the runtime semantics of ``_CACHE_KEY_EXCLUDE``.
"""

from __future__ import annotations

import dataclasses
import pathlib

import repro
from repro.analysis.linter import format_findings, lint_paths, lint_source
from repro.analysis.rules import rules_by_id
from repro.experiments.cache import normalized_config, run_fingerprint
from repro.experiments.runner import RunSettings
from repro.sim.config import SimConfig

PACKAGE = pathlib.Path(repro.__file__).parent
RUNNER_SRC = PACKAGE / "experiments" / "runner.py"


def test_every_cache_key_method_covers_all_fields():
    findings = lint_paths([PACKAGE], rules=rules_by_id("R001"))
    assert findings == [], format_findings(findings)


def test_r001_catches_an_injected_field():
    """Add a field to RunSettings without touching cache_key: R001 trips.

    This mutation test keeps the rule and the real source honest with
    each other — if R001's dataclass parsing drifted away from how
    runner.py is written, the clean-tree test above could pass
    vacuously; this one would fail.
    """
    source = RUNNER_SRC.read_text(encoding="utf-8")
    anchor = "    seed: int = 0\n"
    assert anchor in source, "RunSettings layout changed; update this test"
    mutated = source.replace(anchor, anchor + "    extra_knob: int = 0\n", 1)
    findings = lint_source(mutated, str(RUNNER_SRC), rules=rules_by_id("R001"))
    assert findings, "R001 missed a field added to RunSettings"
    assert any("extra_knob" in f.message for f in findings)


def test_exclude_list_names_real_fields():
    field_names = {f.name for f in dataclasses.fields(SimConfig)}
    assert SimConfig._CACHE_KEY_EXCLUDE <= field_names


def test_excluded_fields_do_not_split_the_memo_key():
    cfg = SimConfig.quick(seed=0)
    checked = dataclasses.replace(cfg, check_invariants=True)
    base = RunSettings(config=cfg, seed=0)
    with_checks = RunSettings(config=checked, seed=0)
    key_a = base.cache_key("CG.D", "machine-B", "thp", False)
    key_b = with_checks.cache_key("CG.D", "machine-B", "thp", False)
    assert key_a == key_b
    assert normalized_config(checked) == normalized_config(cfg)


def test_excluded_fields_do_not_split_the_fingerprint():
    cfg = SimConfig.quick(seed=0)
    checked = dataclasses.replace(cfg, check_invariants=True)
    args = ("CG.D", "machine-B", "thp", False)
    assert run_fingerprint(*args, cfg, 0) == run_fingerprint(*args, checked, 0)


def test_result_affecting_fields_still_split_both_keys():
    cfg = SimConfig.quick(seed=0)
    other = dataclasses.replace(cfg, max_epochs=cfg.max_epochs + 1)
    args = ("CG.D", "machine-B", "thp", False)
    assert run_fingerprint(*args, cfg, 0) != run_fingerprint(*args, other, 0)
    key_a = RunSettings(config=cfg, seed=0).cache_key(*args)
    key_b = RunSettings(config=other, seed=0).cache_key(*args)
    assert key_a != key_b
