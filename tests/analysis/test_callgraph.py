"""Unit tests for the whole-program symbol table and effect inference.

Each test builds a tiny in-memory project and checks the inferred
write-effect sets (or call-graph reachability) directly, so regressions
in the analyzer surface here before they surface as bogus R101/R104
findings on the real tree.
"""

from __future__ import annotations

from repro.analysis.callgraph import (
    GLOBAL_ROOT,
    Effect,
    Project,
    module_name_for,
)


def analyzed(sources):
    project = Project.from_sources(sources)
    project.analyze()
    return project


def effects_of(project, qualname):
    return {e.describe() for e in project.functions[qualname].effects}


# ----------------------------------------------------------------------
# Direct effects
# ----------------------------------------------------------------------
def test_attribute_write_on_parameter():
    project = analyzed({"src/m.py": "def f(sim):\n    sim.epoch = 1\n"})
    assert effects_of(project, "m.f") == {"sim.epoch"}


def test_subscript_write_collapses_onto_container():
    source = "def f(sim, i):\n    sim.weights[i] = 0.0\n"
    project = analyzed({"src/m.py": source})
    assert effects_of(project, "m.f") == {"sim.weights"}


def test_augassign_and_nested_attribute():
    source = "def f(sim):\n    sim.asp.replica_bytes += 4096\n"
    project = analyzed({"src/m.py": source})
    assert effects_of(project, "m.f") == {"sim.asp.replica_bytes"}


def test_builtin_mutator_marks_receiver():
    source = "def f(sim, x):\n    sim.bank.append(x)\n"
    project = analyzed({"src/m.py": source})
    assert effects_of(project, "m.f") == {"sim.bank"}


def test_global_write():
    source = "COUNT = 0\n\ndef f():\n    global COUNT\n    COUNT += 1\n"
    project = analyzed({"src/m.py": source})
    assert project.functions["m.f"].effects == {
        Effect(GLOBAL_ROOT, ("COUNT",))
    }


def test_pure_function_has_no_effects():
    source = "def f(sim):\n    total = sim.a + sim.b\n    return total\n"
    project = analyzed({"src/m.py": source})
    assert effects_of(project, "m.f") == set()


def test_local_alias_resolves_to_parameter_path():
    source = (
        "class C:\n"
        "    def f(self):\n"
        "        sim = self.sim\n"
        "        sim.epoch = 1\n"
    )
    project = analyzed({"src/m.py": source})
    assert effects_of(project, "m.C.f") == {"self.sim.epoch"}


def test_fresh_object_mutation_is_dropped():
    source = (
        "class Timer:\n"
        "    def __init__(self):\n"
        "        self.mark = 0\n"
        "\n"
        "def f():\n"
        "    t = Timer()\n"
        "    t.mark = 1\n"
        "    return t\n"
    )
    project = analyzed({"src/m.py": source})
    # The constructor writes its own (fresh) receiver; neither that nor
    # the local attribute write escapes f.
    assert effects_of(project, "m.f") == set()


def test_setattr_and_np_copyto_are_writes():
    source = (
        "import numpy as np\n"
        "\n"
        "def f(sim, out, src):\n"
        "    setattr(sim, 'epoch', 1)\n"
        "    np.copyto(out, src)\n"
    )
    project = analyzed({"src/m.py": source})
    assert effects_of(project, "m.f") == {"sim.?", "out"}


# ----------------------------------------------------------------------
# Transitive propagation
# ----------------------------------------------------------------------
def test_effects_propagate_through_calls():
    source = (
        "def poke(sim):\n"
        "    sim.epoch = 1\n"
        "\n"
        "def outer(sim):\n"
        "    poke(sim)\n"
        "\n"
        "def outermost(sim):\n"
        "    outer(sim)\n"
    )
    project = analyzed({"src/m.py": source})
    assert effects_of(project, "m.outer") == {"sim.epoch"}
    assert effects_of(project, "m.outermost") == {"sim.epoch"}


def test_effects_propagate_across_modules():
    sources = {
        "src/a.py": "def poke(sim):\n    sim.epoch = 1\n",
        "src/b.py": (
            "from a import poke\n"
            "\n"
            "def outer(sim):\n"
            "    poke(sim)\n"
        ),
    }
    project = analyzed(sources)
    assert effects_of(project, "b.outer") == {"sim.epoch"}


def test_method_call_binds_receiver_and_arguments():
    source = (
        "class M:\n"
        "    def store(self, v):\n"
        "        self.slot = v\n"
        "        v.tag = 1\n"
        "\n"
        "def f(m_obj, x):\n"
        "    m_obj.store(x)\n"
    )
    project = analyzed({"src/m.py": source})
    assert effects_of(project, "m.f") == {"m_obj.slot", "x.tag"}


def test_effects_on_caller_locals_stay_local():
    source = (
        "def poke(sim):\n"
        "    sim.epoch = 1\n"
        "\n"
        "def f():\n"
        "    box = object()\n"
        "    poke(box)\n"
    )
    project = analyzed({"src/m.py": source})
    assert effects_of(project, "m.f") == set()


def test_builtin_shadowed_names_never_resolve_to_project_methods():
    source = (
        "class Table:\n"
        "    def get(self, key):\n"
        "        self.hits = self.hits + 1\n"
        "        return key\n"
        "\n"
        "def f(sim, d):\n"
        "    return d.get('x')\n"
    )
    project = analyzed({"src/m.py": source})
    # d.get must not inherit Table.get's effects: .get on a dict is the
    # overwhelmingly common case and the name-based fallback would
    # poison every caller in the tree.
    assert effects_of(project, "m.f") == set()


def test_constructor_call_does_not_leak_receiver_effects():
    source = (
        "class Sim:\n"
        "    def __init__(self, machine):\n"
        "        self.machine = machine\n"
        "\n"
        "def f(machine):\n"
        "    return Sim(machine)\n"
    )
    project = analyzed({"src/m.py": source})
    assert effects_of(project, "m.f") == set()


# ----------------------------------------------------------------------
# Reachability and registries
# ----------------------------------------------------------------------
def test_reachable_from_returns_shortest_chains():
    source = (
        "def c():\n"
        "    return 3\n"
        "\n"
        "def b():\n"
        "    return c()\n"
        "\n"
        "def a():\n"
        "    b()\n"
        "    c()\n"
    )
    project = analyzed({"src/m.py": source})
    chains = project.reachable_from(["m.a"])
    assert chains["m.a"] == ("m.a",)
    assert chains["m.b"] == ("m.a", "m.b")
    assert chains["m.c"] == ("m.a", "m.c")  # direct edge wins over a->b->c


def test_reachability_does_not_include_unreachable_functions():
    source = "def a():\n    return 1\n\ndef lonely():\n    return 2\n"
    project = analyzed({"src/m.py": source})
    assert "m.lonely" not in project.reachable_from(["m.a"])


def test_registry_tuples_are_indexed():
    source = (
        "_RESULT_NEUTRAL = ('sim.profile', 'monitor.watch')\n"
        "_SIM_ENTRY_POINTS = ('Daemon.tick',)\n"
    )
    project = Project.from_sources({"src/m.py": source})
    assert project.result_neutral == {"sim.profile", "monitor.watch"}
    assert project.entry_points == {"Daemon.tick"}


def test_module_name_for_strips_src_and_init():
    assert module_name_for("src/repro/vm/layout.py") == "repro.vm.layout"
    assert module_name_for("repro/sim/engine.py") == "repro.sim.engine"
    assert module_name_for("src/repro/__init__.py") == "repro"
    assert module_name_for("snippet.py") == "snippet"
