"""CLI contract tests for ``repro lint``.

Pins the externally observable behaviour CI depends on: exit codes
(0 clean / 1 findings / 2 usage error / 3 missing-or-unknown-schema
baseline), the ``--format json`` schema, the SARIF output, canonical
finding order, the baseline workflow, suppression-comment parsing edge
cases, and the sim-path scoping rules.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.linter import FileContext, lint_source
from repro.cli import main

CLEAN_SRC = "def f(x):\n    return x + 1\n"

# R002 (wall-clock in sim code) — fires only under a sim-path.
CLOCK_SRC = "import time\n\n\ndef stamp():\n    return time.time()\n"

# Shallow-clean but R103 under --deep (granules + bytes, no conversion).
DEEP_BAD_SRC = "def footprint(n_granules, nbytes):\n    return n_granules + nbytes\n"


@pytest.fixture
def sim_tree(tmp_path):
    """A throwaway tree whose files lint as simulation code."""
    root = tmp_path / "src" / "repro" / "sim"
    root.mkdir(parents=True)
    return root


# ----------------------------------------------------------------------
# Exit codes
# ----------------------------------------------------------------------
def test_exit_0_on_clean_tree(sim_tree, capsys):
    (sim_tree / "ok.py").write_text(CLEAN_SRC)
    assert main(["lint", str(sim_tree)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_exit_1_on_findings(sim_tree, capsys):
    (sim_tree / "bad.py").write_text(CLOCK_SRC)
    assert main(["lint", str(sim_tree)]) == 1
    out = capsys.readouterr().out
    assert "R002" in out
    assert "finding(s)" in out


def test_exit_2_on_baseline_update_without_baseline(sim_tree, capsys):
    (sim_tree / "ok.py").write_text(CLEAN_SRC)
    assert main(["lint", str(sim_tree), "--baseline-update"]) == 2
    assert "--baseline-update requires --baseline" in capsys.readouterr().err


def test_exit_3_on_missing_baseline(sim_tree, tmp_path, capsys):
    (sim_tree / "ok.py").write_text(CLEAN_SRC)
    absent = tmp_path / "absent.json"
    assert main(["lint", str(sim_tree), "--baseline", str(absent)]) == 3
    err = capsys.readouterr().err
    assert "does not exist" in err
    assert "--baseline-update" in err


def test_exit_3_on_unknown_baseline_schema(sim_tree, tmp_path, capsys):
    (sim_tree / "ok.py").write_text(CLEAN_SRC)
    stale = tmp_path / "stale.json"
    stale.write_text(
        json.dumps(
            {"schema": "repro-lint-baseline/99", "version": 99, "counts": {}}
        )
    )
    assert main(["lint", str(sim_tree), "--baseline", str(stale)]) == 3
    err = capsys.readouterr().err
    assert "unknown schema" in err
    assert "--baseline-update" in err


def test_exit_2_on_malformed_baseline(sim_tree, tmp_path, capsys):
    (sim_tree / "ok.py").write_text(CLEAN_SRC)
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["lint", str(sim_tree), "--baseline", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_legacy_unstamped_baseline_still_loads(sim_tree, tmp_path, capsys):
    # Version-1 files written before the ``schema`` stamp existed carry
    # no ``schema`` key; they must keep working.
    (sim_tree / "bad.py").write_text(CLOCK_SRC)
    baseline = tmp_path / "legacy.json"
    args = ["lint", str(sim_tree), "--baseline", str(baseline)]
    assert main(args + ["--baseline-update"]) == 0
    payload = json.loads(baseline.read_text())
    assert payload["schema"] == "repro-lint-baseline/1"  # stamped on write
    del payload["schema"]
    baseline.write_text(json.dumps(payload))
    capsys.readouterr()
    assert main(args) == 0


# ----------------------------------------------------------------------
# JSON schema stability
# ----------------------------------------------------------------------
def test_json_schema_is_stable(sim_tree, capsys):
    (sim_tree / "bad.py").write_text(CLOCK_SRC)
    assert main(["lint", str(sim_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"findings", "count"}
    assert payload["count"] == len(payload["findings"]) == 1
    assert set(payload["findings"][0]) == {"rule", "path", "line", "col", "message"}
    assert payload["findings"][0]["rule"] == "R002"


def test_json_schema_on_clean_tree(sim_tree, capsys):
    (sim_tree / "ok.py").write_text(CLEAN_SRC)
    assert main(["lint", str(sim_tree), "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out) == {"findings": [], "count": 0}


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------
def test_sarif_output_is_valid_2_1_0(sim_tree, capsys):
    (sim_tree / "bad.py").write_text(CLOCK_SRC)
    assert main(["lint", str(sim_tree), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    # Every shallow + deep rule is declared up front, findings or not.
    for rule_id in ("R002", "R101", "R109", "R113"):
        assert rule_id in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "R002"
    assert rule_ids[result["ruleIndex"]] == "R002"
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1
    uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
    assert "\\" not in uri


def test_sarif_clean_tree_still_emits_log(sim_tree, capsys):
    (sim_tree / "ok.py").write_text(CLEAN_SRC)
    assert main(["lint", str(sim_tree), "--format", "sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"] == []


def test_sarif_carries_chain_as_properties():
    from repro.analysis.linter import Finding
    from repro.analysis.sarif import to_sarif

    finding = Finding(
        "R110", "sim/x.py", 3, 1, "decider mutates sim",
        chain=("Policy.decide", "helper"),
    )
    (result,) = to_sarif([finding])["runs"][0]["results"]
    assert result["properties"]["chain"] == ["Policy.decide", "helper"]


# ----------------------------------------------------------------------
# Canonical ordering
# ----------------------------------------------------------------------
def test_finding_order_is_path_line_rule(sim_tree, capsys):
    """The pinned sort key: (path, line, rule id) across rule families.

    ``a.py`` triggers shallow R002 at line 5 and deep R103 at line 8;
    ``b.py`` triggers R002 again.  Output must interleave by path then
    line, not by which rule family produced the finding.
    """
    (sim_tree / "a.py").write_text(
        "import time\n\n\n"
        "def stamp():\n"
        "    return time.time()\n\n\n"
        "def footprint(n_granules, nbytes):\n"
        "    return n_granules + nbytes\n"
    )
    (sim_tree / "b.py").write_text(CLOCK_SRC)
    assert main(["lint", str(sim_tree), "--deep", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    triples = [
        (f["path"], f["line"], f["rule"]) for f in payload["findings"]
    ]
    assert triples == sorted(triples)
    assert [t[2] for t in triples] == ["R002", "R103", "R002"]


# ----------------------------------------------------------------------
# --deep through the CLI
# ----------------------------------------------------------------------
def test_deep_flag_adds_whole_program_findings(sim_tree, capsys):
    (sim_tree / "sizes.py").write_text(DEEP_BAD_SRC)
    assert main(["lint", str(sim_tree)]) == 0  # shallow rules are blind
    capsys.readouterr()
    assert main(["lint", str(sim_tree), "--deep"]) == 1
    captured = capsys.readouterr()
    assert "R103" in captured.out
    assert "deep analysis:" in captured.err  # wall-clock reported


def test_deep_flag_clean_tree(sim_tree, capsys):
    (sim_tree / "ok.py").write_text(CLEAN_SRC)
    assert main(["lint", str(sim_tree), "--deep"]) == 0
    assert "no findings" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Baseline workflow end to end
# ----------------------------------------------------------------------
def test_baseline_workflow(sim_tree, tmp_path, capsys):
    (sim_tree / "bad.py").write_text(CLOCK_SRC)
    baseline = tmp_path / "baseline.json"

    assert main(["lint", str(sim_tree)]) == 1
    capsys.readouterr()

    # Record the debt...
    args = ["lint", str(sim_tree), "--baseline", str(baseline)]
    assert main(args + ["--baseline-update"]) == 0
    assert baseline.exists()
    capsys.readouterr()

    # ...now the same tree passes against the baseline...
    assert main(args) == 0
    capsys.readouterr()

    # ...but a *new* finding still fails, and only it is reported.
    (sim_tree / "worse.py").write_text(CLOCK_SRC)
    assert main(args) == 1
    out = capsys.readouterr().out
    assert "worse.py" in out
    assert "bad.py" not in out


def test_baseline_update_covers_deep_findings(sim_tree, tmp_path, capsys):
    (sim_tree / "sizes.py").write_text(DEEP_BAD_SRC)
    baseline = tmp_path / "baseline.json"
    args = ["lint", str(sim_tree), "--deep", "--baseline", str(baseline)]
    assert main(args + ["--baseline-update"]) == 0
    assert main(args) == 0
    payload = json.loads(baseline.read_text())
    assert any(key.startswith("R103|") for key in payload["counts"])


# ----------------------------------------------------------------------
# Suppression-comment parsing
# ----------------------------------------------------------------------
def clock_findings(comment):
    source = CLOCK_SRC.replace("time.time()", f"time.time(){comment}")
    return lint_source(source, path="sim/x.py")


def test_suppression_single_id():
    assert clock_findings("") != []
    assert clock_findings("  # lint: ignore[R002]") == []


def test_suppression_multiple_ids():
    assert clock_findings("  # lint: ignore[R002,R005]") == []
    assert clock_findings("  # lint: ignore[R005,R002]") == []


def test_suppression_tolerates_whitespace():
    assert clock_findings("  #   lint:   ignore[ R002 , R005 ]") == []


def test_suppression_other_rule_does_not_apply():
    assert clock_findings("  # lint: ignore[R005]") != []


def test_suppression_bare_ignores_everything():
    assert clock_findings("  # lint: ignore") == []


# ----------------------------------------------------------------------
# Sim-path scoping (SIM_PATH_ROOTS regression)
# ----------------------------------------------------------------------
def is_sim_path(path):
    return FileContext("x = 1\n", path).is_sim_path


def test_sim_paths_inside_the_package():
    assert is_sim_path("src/repro/sim/engine.py")
    assert is_sim_path("src/repro/vm/layout.py")
    assert not is_sim_path("src/repro/cli.py")
    assert not is_sim_path("src/repro/analysis/linter.py")


def test_checkout_directory_names_do_not_leak():
    # Regression: a checkout under .../sim/... or .../core/... used to
    # mark *every* file sim-path; only components below the package
    # root may count.
    assert not is_sim_path("/home/u/sim/checkout/src/repro/cli.py")
    assert not is_sim_path("/data/core/repos/src/repro/analysis/rules.py")
    assert is_sim_path("/home/u/core/checkout/src/repro/sim/engine.py")
    assert not is_sim_path("/opt/core/stuff.py")


def test_fixture_trees_and_relative_snippets_still_match():
    assert is_sim_path("tests/analysis/fixtures/sim/x.py")
    assert is_sim_path("sim/snippet.py")  # lint_source() convention
    assert not is_sim_path("notes/readme.py")
