"""Fixture tests for the concurrency-safety rules R105-R108.

Each rule gets at least two seeded violations plus a suppressed or
negative case, following the R101-R104 fixture-test convention.
Entry-point discovery (``pool.submit``, ``threading.Thread``, the
``_THREAD_ENTRY_POINTS`` registry), the ``_CONCURRENCY_SAFE``
sanctioning registry, shared-class publication, and the CLI contract
(JSON schema, exit codes, ``--explain``) are covered at the end.
"""

from __future__ import annotations

import json

from repro.analysis.deep import deep_lint_sources
from repro.analysis.linter import format_findings
from repro.cli import main


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# R105: unguarded writes to shared state on a thread path
# ----------------------------------------------------------------------
RACY_POOL = """\
import threading
from concurrent.futures import ThreadPoolExecutor

_LOCK = threading.Lock()
_STATS = {}
_MEMO = {}


def dispatch(items):
    with ThreadPoolExecutor() as pool:
        for item in items:
            pool.submit(worker, item)


def worker(item):
    _STATS[item] = 1
    _MEMO.pop(item, None)
    record(item)
    hushed(item)


def record(item):
    with _LOCK:
        _MEMO[item] = item


def hushed(item):
    _STATS[item] = 2  # lint: ignore[R105]
"""


def test_r105_fires_on_unguarded_writes():
    findings = deep_lint_sources({"src/jobs/racy.py": RACY_POOL})
    r105 = by_rule(findings, "R105")
    assert len(r105) == 2, format_findings(findings)
    messages = "\n".join(f.message for f in r105)
    assert "_STATS" in messages and "_MEMO" in messages
    assert "worker()" in messages
    # The guarded write in record() and the suppressed one stay quiet.
    assert all(f.line in (16, 17) for f in r105)


def test_r105_findings_carry_entry_chain():
    findings = deep_lint_sources({"src/jobs/racy.py": RACY_POOL})
    for finding in by_rule(findings, "R105"):
        assert finding.chain, finding
        assert finding.chain[-1].endswith("worker")
        assert finding.lockset == ()


THREAD_ENTRY = """\
import threading

_TABLE = {}


def spawn():
    thread = threading.Thread(target=loop)
    thread.start()


def loop():
    _TABLE["tick"] = 1
"""


def test_r105_thread_target_is_an_entry():
    findings = deep_lint_sources({"src/jobs/spawn.py": THREAD_ENTRY})
    r105 = by_rule(findings, "R105")
    assert len(r105) == 1, format_findings(findings)
    assert "loop()" in r105[0].message


PROCESS_POOL = """\
from concurrent.futures import ProcessPoolExecutor

_TABLE = {}


def dispatch(items):
    pool = ProcessPoolExecutor()
    for item in items:
        pool.submit(worker, item)


def worker(item):
    _TABLE[item] = 1
"""


def test_r105_process_pool_workers_are_not_thread_entries():
    findings = deep_lint_sources({"src/jobs/procs.py": PROCESS_POOL})
    assert by_rule(findings, "R105") == [], format_findings(findings)


REGISTERED = """\
_JOBS = []
_THREAD_ENTRY_POINTS = ("daemon_loop",)


def daemon_loop():
    _JOBS.append(1)
"""


def test_r105_entry_point_registry_extends_roots():
    findings = deep_lint_sources({"src/jobs/daemon.py": REGISTERED})
    r105 = by_rule(findings, "R105")
    assert len(r105) == 1, format_findings(findings)
    assert "_JOBS" in r105[0].message


SANCTIONED = """\
_COUNTS = {}
_CONCURRENCY_SAFE = ("tally",)
_THREAD_ENTRY_POINTS = ("tally",)


def tally(key):
    _COUNTS[key] = 1
"""


def test_r105_concurrency_safe_registry_sanctions():
    findings = deep_lint_sources({"src/jobs/tally.py": SANCTIONED})
    assert by_rule(findings, "R105") == [], format_findings(findings)


PUBLISHED = """\
import threading

_LOCK = threading.Lock()
_REGISTRY = {}


def start(pool, name):
    pool.submit(tick, name)


def get_bank(name):
    with _LOCK:
        bank = _REGISTRY.get(name)
        if bank is None:
            bank = Bank(name)
            _REGISTRY[name] = bank
        return bank


def tick(name):
    bank = get_bank(name)
    bank.note(name)
    bank.safe_note(name)


class Bank:
    def __init__(self, name):
        self.name = name
        self._lock = threading.Lock()
        self.counts = {}

    def note(self, key):
        self.counts[key] = 1

    def safe_note(self, key):
        with self._lock:
            self.counts[key] = 2
"""


def test_r105_published_instances_share_their_attributes():
    """``_REGISTRY[name] = Bank(...)`` publishes Bank: its unguarded
    instance-attribute writes count; ``__init__`` and guarded ones
    don't."""
    findings = deep_lint_sources({"src/jobs/banks.py": PUBLISHED})
    r105 = by_rule(findings, "R105")
    assert len(r105) == 1, format_findings(findings)
    assert "note()" in r105[0].message
    assert "counts" in r105[0].message


CLASS_ATTR = """\
import threading

_LOCK = threading.Lock()
_THREAD_ENTRY_POINTS = ("bump", "bump_safe")


class Counter:
    totals = {}


def bump(key):
    Counter.totals[key] = 1


def bump_safe(key):
    with _LOCK:
        Counter.totals[key] = 2
"""


def test_r105_class_level_containers_are_shared():
    findings = deep_lint_sources({"src/jobs/klass.py": CLASS_ATTR})
    r105 = by_rule(findings, "R105")
    assert len(r105) == 1, format_findings(findings)
    assert "bump()" in r105[0].message


# ----------------------------------------------------------------------
# R106: inconsistent lock choice across writers
# ----------------------------------------------------------------------
MIXED_LOCKS = """\
import threading

_A = threading.Lock()
_B = threading.Lock()
_TABLE = {}
_QUEUE = []
_SAFE = {}
_THREAD_ENTRY_POINTS = ("writer_a", "writer_b")


def writer_a(key):
    with _A:
        _TABLE[key] = 1
        _QUEUE.append(key)
        _SAFE[key] = 1


def writer_b(key):
    with _B:
        _TABLE[key] = 2
        _QUEUE.append(key)
    with _A:
        _SAFE[key] = 2
"""


def test_r106_fires_on_mixed_locks():
    findings = deep_lint_sources({"src/jobs/mixed.py": MIXED_LOCKS})
    r106 = by_rule(findings, "R106")
    assert len(r106) == 2, format_findings(findings)
    messages = "\n".join(f.message for f in r106)
    assert "_TABLE" in messages and "_QUEUE" in messages
    assert "_SAFE" not in messages  # consistently under _A
    assert by_rule(findings, "R105") == []  # every write is guarded


def test_r106_findings_carry_locksets():
    findings = deep_lint_sources({"src/jobs/mixed.py": MIXED_LOCKS})
    for finding in by_rule(findings, "R106"):
        assert finding.lockset, finding


# ----------------------------------------------------------------------
# R107: locked state escaping via return
# ----------------------------------------------------------------------
ESCAPES = """\
import threading

_LOCK = threading.Lock()
_REGISTRY = {}
_THREAD_ENTRY_POINTS = ("handle",)


def handle(item):
    with _LOCK:
        _REGISTRY[item] = [item]
    leak()
    peek(item)
    snapshot()
    hushed()


def leak():
    with _LOCK:
        return _REGISTRY


def peek(item):
    with _LOCK:
        return _REGISTRY.get(item)


def snapshot():
    with _LOCK:
        return dict(_REGISTRY)


def hushed():
    with _LOCK:
        return _REGISTRY  # lint: ignore[R107]
"""


def test_r107_fires_on_escaping_references():
    findings = deep_lint_sources({"src/jobs/escape.py": ESCAPES})
    r107 = by_rule(findings, "R107")
    assert len(r107) == 2, format_findings(findings)
    messages = "\n".join(f.message for f in r107)
    assert "leak()" in messages
    assert "peek()" in messages  # .get hands out the stored reference
    assert "snapshot()" not in messages  # dict(...) is a copy


FROZEN = """\
import threading

_LOCK = threading.Lock()
_BY_NAME = {"a": 1}
_THREAD_ENTRY_POINTS = ("lookup",)


def lookup(name):
    with _LOCK:
        return _BY_NAME
"""


def test_r107_ignores_import_time_frozen_registries():
    """Containers never written by any function are effectively frozen:
    handing out a reference cannot race."""
    findings = deep_lint_sources({"src/jobs/frozen.py": FROZEN})
    assert by_rule(findings, "R107") == [], format_findings(findings)


# ----------------------------------------------------------------------
# R108: lock-order inversions and blocking calls under a lock
# ----------------------------------------------------------------------
DISCIPLINE = """\
import subprocess
import threading
import time

_A = threading.Lock()
_B = threading.Lock()
_THREAD_ENTRY_POINTS = ("refresh", "flush")


def refresh():
    with _A:
        with _B:
            tick()
    with _A:
        time.sleep(0.1)
    quiet()


def flush():
    with _B:
        with _A:
            subprocess.run(["true"])


def tick():
    return None


def quiet():
    with _A:
        time.sleep(0.1)  # lint: ignore[R108]
"""


def test_r108_fires_on_inversions_and_blocking_calls():
    findings = deep_lint_sources({"src/jobs/order.py": DISCIPLINE})
    r108 = by_rule(findings, "R108")
    assert len(r108) == 3, format_findings(findings)
    messages = "\n".join(f.message for f in r108)
    assert "lock-order inversion" in messages
    assert "time.sleep" in messages
    assert "subprocess.run" in messages
    inversions = [f for f in r108 if "inversion" in f.message]
    assert len(inversions) == 1  # one report per lock pair


def test_r108_sees_locks_held_across_calls():
    """``subprocess.run`` fires with both _B and _A: the interprocedural
    lockset, not just the lexical one."""
    findings = deep_lint_sources({"src/jobs/order.py": DISCIPLINE})
    blocked = [
        f for f in by_rule(findings, "R108") if "subprocess.run" in f.message
    ]
    assert len(blocked) == 1
    assert set(blocked[0].lockset) == {"order._A", "order._B"}


# ----------------------------------------------------------------------
# Cone restriction: code unreachable from any entry stays quiet
# ----------------------------------------------------------------------
NO_ENTRY = """\
_TABLE = {}


def helper(key):
    _TABLE[key] = 1
"""


def test_rules_stay_quiet_without_thread_entries():
    findings = deep_lint_sources({"src/jobs/serial.py": NO_ENTRY})
    for rule in ("R105", "R106", "R107", "R108"):
        assert by_rule(findings, rule) == [], format_findings(findings)


# ----------------------------------------------------------------------
# CLI contract: JSON schema, exit codes, --explain
# ----------------------------------------------------------------------
def _racy_tree(tmp_path):
    pkg = tmp_path / "src" / "jobs"
    pkg.mkdir(parents=True)
    (pkg / "racy.py").write_text(RACY_POOL)
    return tmp_path / "src"


def test_json_findings_carry_chain_and_lockset(tmp_path, capsys):
    tree = _racy_tree(tmp_path)
    (tmp_path / "src" / "jobs" / "order.py").write_text(DISCIPLINE)
    assert main(["lint", str(tree), "--deep", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)["findings"]
    base = {"rule", "path", "line", "col", "message"}
    r105 = [f for f in payload if f["rule"] == "R105"]
    assert r105
    for finding in r105:
        # chain present, lockset omitted when empty: the base schema
        # (R001-R104 findings) is unchanged.
        assert set(finding) == base | {"chain"}
        assert finding["chain"][-1].endswith("worker")
    blocked = [
        f
        for f in payload
        if f["rule"] == "R108" and "subprocess.run" in f["message"]
    ]
    assert blocked and set(blocked[0]) == base | {"chain", "lockset"}


def test_explain_prints_rationale_and_model(tmp_path, capsys):
    tree = _racy_tree(tmp_path)
    assert main(["lint", str(tree), "--deep", "--explain", "R105"]) == 1
    out = capsys.readouterr().out
    assert "R105" in out
    assert "thread entry points:" in out
    assert "shared objects" in out
    assert "UNGUARDED" in out  # _STATS has no inferred lock
    assert "entry chain: racy.worker" in out  # the seeded finding's chain


def test_explain_on_clean_tree_exits_zero(tmp_path, capsys):
    pkg = tmp_path / "src" / "jobs"
    pkg.mkdir(parents=True)
    (pkg / "tally.py").write_text(SANCTIONED)
    assert main(["lint", str(tmp_path / "src"), "--deep", "--explain", "R107"]) == 0
    assert "R107" in capsys.readouterr().out


def test_explain_unknown_rule_is_a_usage_error(tmp_path, capsys):
    tree = _racy_tree(tmp_path)
    assert main(["lint", str(tree), "--explain", "R999"]) == 2
    assert "R999" in capsys.readouterr().err
