"""Syntactic regression guard for the decider-purity boundary.

The authoritative check is now the interprocedural lint rule **R110**
(:func:`repro.analysis.decisionflow.check_purity`): a write-effect
fixpoint over the whole call graph that proves nothing reachable from a
policy ``decide()`` writes simulation state, however many calls deep.
``tests/analysis/test_decisionflow.py::test_shipped_policies_prove_pure_under_r110``
pins that proof for every registered policy.

This file is the cheap syntactic backstop it grew from: a name-based
scan of ``repro/core/`` for known AddressSpace/ThpState mutator calls.
It cannot see through helpers the way R110 does, but it runs without
the call-graph machinery and keeps failing loudly if the analysis
package itself is broken — so it stays as a regression guard.
"""

import ast
import pathlib

import repro.core

CORE_DIR = pathlib.Path(repro.core.__file__).parent

#: AddressSpace/ThpState methods that change simulation state.  Calling
#: any of these from a core policy module bypasses the executor's
#: accounting, conflict resolution, and trace.
MUTATORS = {
    # AddressSpace
    "fault_in",
    "premap_range",
    "premap_pattern_4k",
    "premap_pattern_2m",
    "map_range_1g",
    "split_chunk",
    "split_gchunk",
    "collapse_chunk",
    "migrate_backing",
    "migrate_granules",
    "replicate_backing",
    "unreplicate_backing",
    "block_collapse",
    "clear_collapse_blocks",
    # split helper (moved to vm/, executor-only)
    "split_backing_page",
    # ThpState
    "enable_alloc",
    "disable_alloc",
    "enable_promotion",
    "disable_promotion",
}


def mutator_calls(path: pathlib.Path):
    """Mutating calls outside ``setup()``.

    ``setup`` runs once before the simulation starts (initial THP
    state, like ``LinuxPolicy.setup``); the decision contract covers
    the daemon path, where every state change must be a yielded
    decision.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    setup_spans = [
        (node.lineno, node.end_lineno)
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and node.name == "setup"
    ]
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name not in MUTATORS:
            continue
        if any(lo <= node.lineno <= hi for lo, hi in setup_spans):
            continue
        out.append(f"{path.name}:{node.lineno} calls {name}()")
    return out


def test_core_modules_never_mutate_state():
    offenders = []
    for path in sorted(CORE_DIR.glob("*.py")):
        offenders.extend(mutator_calls(path))
    assert not offenders, (
        "core/ policy modules must yield decisions instead of mutating"
        " simulation state directly:\n  " + "\n  ".join(offenders)
    )


def test_mutators_exist_on_their_classes():
    """Guard the guard: the names we forbid must be real methods, or a
    rename would silently blunt the purity check."""
    from repro.vm.address_space import AddressSpace
    from repro.vm import address_space
    from repro.vm.thp import ThpState

    for name in MUTATORS - {"split_backing_page"}:
        assert hasattr(AddressSpace, name) or hasattr(ThpState, name), name
    assert hasattr(address_space, "split_backing_page")


def test_policies_setup_may_touch_thp_but_core_deciders_do_not():
    """`sim/policy.py` LinuxPolicy.setup legitimately flips THP state;
    the restriction is specifically about the ``core/`` daemon policies,
    whose every action must be observable in the decision trace."""
    import repro.sim.policy as policy_mod

    # The base module is allowed to call ThpState setters in setup().
    src = pathlib.Path(policy_mod.__file__).read_text(encoding="utf-8")
    assert "enable_alloc" in src
