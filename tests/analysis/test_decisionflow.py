"""Fixture tests for the decision-kernel rules R109-R113.

Each rule gets at least two seeded violations, one suppressed case and
one negative case, per the linter's fixture-test convention.  The final
tests run the rules over the shipped tree: the policy kernel must prove
clean (every policy in ``POLICIES`` pure under R110) inside the 3s
acceptance budget.
"""

from __future__ import annotations

import pathlib
import time

import repro
from repro.analysis.callgraph import Project
from repro.analysis.decisionflow import decision_flow_model
from repro.analysis.deep import deep_lint_sources
from repro.analysis.linter import format_findings

PACKAGE = pathlib.Path(repro.__file__).parent


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# R109: handler exhaustiveness
# ----------------------------------------------------------------------
R109_SRC = """\
class Decision:
    domain = "none"


class MigratePage(Decision):
    domain = "page"
    counters = ("bytes_migrated",)

    def targets(self):
        return (("page", self.page_id),)


class MigrateThread(Decision):
    domain = "page"

    def targets(self):
        return (("page", self.tid),)


class Collapse2M(Decision):
    domain = "page"
    counters = ("collapses_2m",)

    def targets(self):
        return (("page", self.chunk),)


class Phantom(Decision):  # lint: ignore[R109]
    domain = "page"

    def targets(self):
        return (("page", self.x),)


class Frame:
    pass


class ActionExecutor:
    def _apply_migrate_page(self, decision, summary):
        summary.bytes_migrated += 8
        return None

    def _apply_stale(self, decision, summary):
        return None

    def _apply_orphan(self, decision, summary):
        return None

    HANDLERS = {MigratePage: _apply_migrate_page, Frame: _apply_stale}
    CONFLICT_DOMAINS = ("page",)
"""


def r109_findings():
    return deep_lint_sources({"src/sim/kernel.py": R109_SRC})


def test_r109_flags_decisions_without_handlers():
    r109 = by_rule(r109_findings(), "R109")
    messages = "\n".join(f.message for f in r109)
    assert "MigrateThread has no executor handler" in messages
    assert "Collapse2M has no executor handler" in messages


def test_r109_flags_foreign_keys_and_dead_handlers():
    r109 = by_rule(r109_findings(), "R109")
    messages = "\n".join(f.message for f in r109)
    # Frame is in HANDLERS but is not a Decision subclass.
    assert "'Frame' is not a Decision subclass" in messages
    # _apply_orphan exists but nothing dispatches to it.
    assert "dead handler" in messages
    assert "_apply_orphan" in messages
    # _apply_stale is referenced (by the Frame entry, itself flagged):
    # one finding per defect, no double-reporting.
    assert "_apply_stale" not in messages


def test_r109_suppression_and_negative():
    r109 = by_rule(r109_findings(), "R109")
    messages = "\n".join(f.message for f in r109)
    assert "Phantom" not in messages  # class line carries the ignore
    assert "MigratePage has no executor handler" not in messages


def test_r109_silent_without_an_executor():
    source = R109_SRC.split("class Frame:")[0]
    findings = deep_lint_sources({"src/sim/kernel.py": source})
    assert by_rule(findings, "R109") == []


# ----------------------------------------------------------------------
# R110: interprocedural decider purity
# ----------------------------------------------------------------------
R110_SRC = """\
class PlacementPolicy:
    def decide(self, sim, samples, window):
        return iter(())


class EagerPolicy(PlacementPolicy):
    def decide(self, sim, samples, window):
        rebalance(sim)
        return iter(())


def rebalance(sim):
    push_home(sim.address_space)


def push_home(asp):
    asp.node4k = 0


class SneakyPolicy(PlacementPolicy):
    def decide(self, sim, samples, window):
        sim.tracker.counts = {}
        return iter(())


class MemoPolicy(PlacementPolicy):
    def decide(self, sim, samples, window):
        sim.asp._home_map = None
        return iter(())


class HushedPolicy(PlacementPolicy):
    def decide(self, sim, samples, window):  # lint: ignore[R110]
        sim.epoch = 3
        return iter(())
"""


def r110_findings():
    return deep_lint_sources({"src/core/mut.py": R110_SRC})


def test_r110_proves_mutation_through_a_two_call_chain():
    r110 = by_rule(r110_findings(), "R110")
    eager = [f for f in r110 if "EagerPolicy" in f.message]
    assert len(eager) == 1, format_findings(r110)
    assert "sim.address_space.node4k" in eager[0].message
    # The full decide -> rebalance -> push_home chain is spelled out.
    assert "rebalance" in eager[0].message
    assert "push_home" in eager[0].message
    assert eager[0].chain[-1] == "mut.push_home"


def test_r110_flags_direct_decider_writes():
    r110 = by_rule(r110_findings(), "R110")
    messages = "\n".join(f.message for f in r110)
    assert "SneakyPolicy" in messages
    assert "sim.tracker.counts" in messages


def test_r110_sanctions_private_memo_paths():
    messages = "\n".join(f.message for f in r110_findings())
    assert "MemoPolicy" not in messages  # _home_map is a private memo


def test_r110_suppression_comment_respected():
    messages = "\n".join(f.message for f in r110_findings())
    assert "HushedPolicy" not in messages


# ----------------------------------------------------------------------
# R111: generator-protocol misuse
# ----------------------------------------------------------------------
R111_SRC = """\
class Decision:
    domain = "none"


class MigratePage(Decision):
    domain = "page"

    def targets(self):
        return (("page", self.page_id),)


class Stats:
    pass


class PlacementPolicy:
    def decide(self, sim, samples, window):
        yield MigratePage(0)


class ChattyPolicy(PlacementPolicy):
    def decide(self, sim, samples, window):
        yield {"kind": "migrate"}
        yield Stats()
        return 7


class BudgetPolicy(PlacementPolicy):
    def decide(self, sim, samples, window):
        budget = 4096
        for page in sim.hot_pages:
            if budget <= 0:
                break
            yield MigratePage(page)
            budget -= 4096


class PatientPolicy(PlacementPolicy):
    def decide(self, sim, samples, window):
        budget = 4096
        for page in sim.hot_pages:
            if budget <= 0:
                break
            outcome = yield MigratePage(page)
            budget -= outcome.bytes_moved


class HushedPolicy(PlacementPolicy):
    def decide(self, sim, samples, window):
        yield 3  # lint: ignore[R111]
"""


def r111_findings():
    return deep_lint_sources({"src/core/gen.py": R111_SRC})


def test_r111_flags_non_decision_yields():
    r111 = by_rule(r111_findings(), "R111")
    messages = "\n".join(f.message for f in r111)
    assert "yields a container literal" in messages
    assert "yields a gen.Stats instance" in messages


def test_r111_flags_dropped_return_value():
    r111 = by_rule(r111_findings(), "R111")
    messages = "\n".join(f.message for f in r111)
    assert "run_interval silently drops" in messages


def test_r111_flags_discarded_outcome_in_budget_loop():
    r111 = by_rule(r111_findings(), "R111")
    budget = [f for f in r111 if "BudgetPolicy" in f.message]
    assert len(budget) == 1, format_findings(r111)
    assert "discards the Outcome" in budget[0].message
    assert "'budget'" in budget[0].message


def test_r111_accepts_bound_outcomes_and_suppression():
    messages = "\n".join(f.message for f in r111_findings())
    assert "PatientPolicy" not in messages  # outcome is bound
    assert "HushedPolicy" not in messages  # suppressed constant yield


# ----------------------------------------------------------------------
# R112: accounting completeness
# ----------------------------------------------------------------------
R112_SRC = """\
_ACTION_FIELDS = ("bytes_migrated", "splits_2m", "replicated_pages")


class PolicyActionSummary:
    bytes_migrated: int = 0
    splits_2m: int = 0
    collapses_2m: int = 0
    replicated_pages: int = 0


class Decision:
    domain = "none"


class MigratePage(Decision):
    domain = "page"
    counters = ("bytes_migrated",)

    def targets(self):
        return (("page", self.page_id),)


class Split2M(Decision):
    domain = "page"
    counters = ("splits_2m",)

    def targets(self):
        return (("page", self.page_id),)


class Collapse2M(Decision):
    domain = "page"
    counters = ("collapses_2m", "ghost_field")

    def targets(self):
        return (("page", self.chunk),)


class PurgePage(Decision):
    domain = "page"

    def targets(self):
        return (("page", self.page_id),)


class ReplicatePage(Decision):
    domain = "page"
    counters = ("replicated_pages",)

    def targets(self):
        return (("page", self.page_id),)


class ActionExecutor:
    def _apply_migrate_page(self, decision, summary):
        summary.bytes_migrated += 8
        summary.collapses_2m += 1
        return None

    def _apply_split_2m(self, decision, summary):
        return None

    def _apply_collapse_2m(self, decision, summary):
        summary.collapses_2m += 1
        return None

    def _apply_purge_page(self, decision, summary):
        self.sim.asp.node4k = 0
        return None

    def _apply_replicate_page(self, decision, summary):  # lint: ignore[R112]
        summary.replicated_pages += 1
        summary.bytes_migrated += 8
        return None

    HANDLERS = {
        MigratePage: _apply_migrate_page,
        Split2M: _apply_split_2m,
        Collapse2M: _apply_collapse_2m,
        PurgePage: _apply_purge_page,
        ReplicatePage: _apply_replicate_page,
    }
    CONFLICT_DOMAINS = ("page",)
"""


def r112_findings():
    return deep_lint_sources({"src/sim/acct.py": R112_SRC})


def test_r112_flags_undeclared_counter_touch():
    r112 = by_rule(r112_findings(), "R112")
    messages = "\n".join(f.message for f in r112)
    assert (
        "touches summary.collapses_2m, which MigratePage.counters does "
        "not declare" in messages
    )


def test_r112_flags_declared_but_untouched_counter():
    r112 = by_rule(r112_findings(), "R112")
    messages = "\n".join(f.message for f in r112)
    assert "'splits_2m'" in messages
    assert "never touches it" in messages


def test_r112_flags_unknown_counter_and_unaccounted_mutation():
    r112 = by_rule(r112_findings(), "R112")
    messages = "\n".join(f.message for f in r112)
    # ghost_field is not a PolicyActionSummary field.
    assert "'ghost_field'" in messages
    assert "not a PolicyActionSummary field" in messages
    # PurgePage mutates backing state with no counter at all.
    assert "_apply_purge_page" in messages
    assert "accounts no summary counter" in messages


def test_r112_suppression_and_negative():
    r112 = by_rule(r112_findings(), "R112")
    messages = "\n".join(f.message for f in r112)
    # The replicate handler's undeclared bytes_migrated touch carries an
    # ignore comment on its def line.
    assert "_apply_replicate_page" not in messages
    # A declared-and-touched counter is silent.
    assert (
        "touches summary.bytes_migrated, which MigratePage.counters"
        not in messages
    )


def test_r112_conservation_coverage():
    # Every _ACTION_FIELDS entry is declared by some decision here, so
    # no conservation finding fires...
    messages = "\n".join(f.message for f in r112_findings())
    assert "reconciled by the invariant checker" not in messages
    # ...but dropping the ReplicatePage declaration leaves
    # replicated_pages unclaimed.
    source = R112_SRC.replace(
        'counters = ("replicated_pages",)', "counters = ()"
    )
    findings = deep_lint_sources({"src/sim/acct.py": source})
    messages = "\n".join(f.message for f in by_rule(findings, "R112"))
    assert "'replicated_pages'" in messages
    assert "reconciled by the invariant checker" in messages


# ----------------------------------------------------------------------
# R113: conflict-domain declarations
# ----------------------------------------------------------------------
R113_SRC = """\
class Decision:
    domain = "none"


class MigratePage(Decision):
    domain = "page"

    def targets(self):
        return (("page", self.page_id),)


class UndeclaredDecision(Decision):
    def targets(self):
        return (("page", self.page_id),)


class ConfusedDecision(Decision):
    domain = "thp"

    def targets(self):
        return (("page", self.page_id),)


class BodilessDecision(Decision):
    domain = "pt"


class WeirdDecision(Decision):
    domain = "disk"


class SilentDecision(Decision):
    domain = "none"


class HushedDecision(Decision):  # lint: ignore[R113]
    def targets(self):
        return (("page", self.x),)


class ActionExecutor:
    def _apply_migrate_page(self, decision, summary):
        return None

    HANDLERS = {MigratePage: _apply_migrate_page}
    CONFLICT_DOMAINS = ("page", "thp")
"""


def r113_findings():
    return deep_lint_sources({"src/sim/dom.py": R113_SRC})


def test_r113_requires_an_explicit_domain():
    r113 = by_rule(r113_findings(), "R113")
    messages = "\n".join(f.message for f in r113)
    assert "UndeclaredDecision does not declare its conflict domain" in messages


def test_r113_checks_targets_against_the_domain():
    r113 = by_rule(r113_findings(), "R113")
    messages = "\n".join(f.message for f in r113)
    # Declared thp but targets() claims page keys.
    assert "ConfusedDecision declares domain 'thp'" in messages
    # Declared pt but targets() claims nothing.
    assert "BodilessDecision declares domain 'pt'" in messages
    assert "claims nothing" in messages
    # Invalid domain value.
    assert "WeirdDecision.domain is 'disk'" in messages


def test_r113_checks_executor_claim_coverage():
    r113 = by_rule(r113_findings(), "R113")
    messages = "\n".join(f.message for f in r113)
    assert "CONFLICT_DOMAINS" in messages
    assert "unclaimed-by-decisions thp" in messages


def test_r113_suppression_and_negative():
    r113 = by_rule(r113_findings(), "R113")
    messages = "\n".join(f.message for f in r113)
    assert "HushedDecision" not in messages
    assert "SilentDecision" not in messages
    assert "MigratePage declares" not in messages


# ----------------------------------------------------------------------
# The shipped tree: the kernel proves sound
# ----------------------------------------------------------------------
def shipped_model():
    project = Project.from_paths([PACKAGE])
    project.analyze()
    return decision_flow_model(project)


def test_shipped_kernel_model_is_complete():
    model = shipped_model()
    # All 14 concrete decision classes, one executor, full coverage.
    assert len(model.decisions) == 14
    assert len(model.executors) == 1
    executor = model.executors[0]
    assert set(executor.handlers) == set(model.decisions)
    assert executor.conflict_domains == ("page", "thp", "pt")
    # The conserved-field map is parsed from analysis/invariants.py.
    assert "bytes_migrated" in model.action_fields


def test_shipped_policies_prove_pure_under_r110():
    from repro.analysis.decisionflow import check_purity
    from repro.experiments.configs import POLICIES

    model = shipped_model()
    assert check_purity(model) == []
    # Every registry policy's decide() is actually among the proof
    # roots (directly or via its class hierarchy) — the clean result is
    # not vacuous.
    root_classes = {q.split(".")[-2] for q in model.policy_roots}
    for name, factory in POLICIES.items():
        policy = factory(0)
        assert any(
            klass.__name__ in root_classes
            for klass in type(policy).__mro__
            if klass.__name__ != "object"
        ), f"policy {name} ({type(policy).__name__}) has no analyzed root"


def test_shipped_tree_decision_rules_clean_within_budget():
    from repro.analysis.deep import deep_lint_paths

    t0 = time.perf_counter()
    findings = deep_lint_paths([PACKAGE])
    elapsed = time.perf_counter() - t0
    decision_rules = [
        f for f in findings if f.rule in ("R109", "R110", "R111", "R112", "R113")
    ]
    assert decision_rules == [], format_findings(decision_rules)
    # ISSUE acceptance bound: R101-R113 over src/ in < 3 s.
    assert elapsed < 3.0, f"deep analysis took {elapsed:.2f}s"


def test_broken_fixture_package_fails_deep_lint():
    """The CI proof fixture really trips the rules it claims to trip.

    CI deep-lints ``fixtures/decisionflow_broken`` and requires a
    non-zero exit with R109 in the output; this test keeps the fixture
    honest so that step can never silently pass.
    """
    from repro.analysis.deep import deep_lint_paths

    fixture = pathlib.Path(__file__).parent / "fixtures" / "decisionflow_broken"
    findings = deep_lint_paths([fixture])
    rules = sorted({f.rule for f in findings})
    assert "R109" in rules, format_findings(findings)
    assert "R110" in rules, format_findings(findings)
    assert "R113" in rules, format_findings(findings)
    orphans = [f for f in findings if f.rule == "R109"]
    assert any("OrphanDecision" in f.message for f in orphans)
