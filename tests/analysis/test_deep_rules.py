"""Fixture tests for the whole-program rules R101-R104.

Each rule gets at least two seeded violations plus a suppressed or
negative case, per the linter's fixture-test convention.  The final
test deep-lints the shipped package itself: the tree must stay clean
and the whole analysis must finish well inside the 10s budget.
"""

from __future__ import annotations

import pathlib
import time

import repro
from repro.analysis.deep import deep_lint_paths, deep_lint_sources
from repro.analysis.linter import format_findings

PACKAGE = pathlib.Path(repro.__file__).parent


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# R101: result-neutral purity
# ----------------------------------------------------------------------
R101_WATCH = """\
_RESULT_NEUTRAL = ("monitor.watch",)


class Watcher:
    def __init__(self):
        self.counts = {}

    def observe(self, sim):
        sim.asp.node4k = 1

    def note(self, epoch):
        self.counts[epoch] = 1


def poke(sim):
    sim.epoch = 3


def sanctioned(sim):  # lint: ignore[R101]
    sim.flags.append(1)
"""

R101_FREE = """\
def mutate(sim):
    sim.epoch = 9
"""


def test_r101_fires_on_registered_mutators():
    findings = deep_lint_sources({"src/monitor/watch.py": R101_WATCH})
    r101 = by_rule(findings, "R101")
    assert len(r101) == 2, format_findings(findings)
    messages = "\n".join(f.message for f in r101)
    assert "monitor.watch.Watcher.observe" in messages
    assert "monitor.watch.poke" in messages
    assert "sim.asp.node4k" in messages
    assert "sim.epoch" in messages


def test_r101_allows_own_instance_bookkeeping():
    # __init__ and note() write one attribute deep into self: the
    # sanctioned PhaseTimer-style bookkeeping pattern.
    findings = deep_lint_sources({"src/monitor/watch.py": R101_WATCH})
    for finding in by_rule(findings, "R101"):
        assert "note" not in finding.message
        assert "__init__" not in finding.message


def test_r101_suppression_comment_respected():
    findings = deep_lint_sources({"src/monitor/watch.py": R101_WATCH})
    assert all("sanctioned" not in f.message for f in findings)


def test_r101_ignores_unregistered_modules():
    findings = deep_lint_sources({"src/other/free.py": R101_FREE})
    assert by_rule(findings, "R101") == []


def test_r101_default_protection_survives_registry_deletion():
    # A sim/profile.py with its _RESULT_NEUTRAL declaration removed is
    # still covered by DEFAULT_RESULT_NEUTRAL: deleting the registry
    # entry cannot silently disable the purity check.
    source = (
        "class PhaseTimer:\n"
        "    def lap(self, sim):\n"
        "        sim.asp.replica_bytes = 0\n"
    )
    findings = deep_lint_sources({"src/repro/sim/profile.py": source})
    r101 = by_rule(findings, "R101")
    assert len(r101) == 1
    assert "sim.profile" in r101[0].message


# ----------------------------------------------------------------------
# R102: unit mismatch (unrelated dimensions)
# ----------------------------------------------------------------------
R102_SRC = """\
def pick(home: NodeId, owner: ThreadId):
    return home + owner


def tally(n_samples, total_bytes):
    return n_samples > total_bytes


def hushed(n_samples, total_bytes):
    return n_samples + total_bytes  # lint: ignore[R102]


def clean(n_samples, more_samples):
    return n_samples + more_samples
"""


def test_r102_fires_on_dimension_mixes():
    findings = deep_lint_sources({"src/policy/score.py": R102_SRC})
    r102 = by_rule(findings, "R102")
    assert len(r102) == 2, format_findings(findings)
    messages = "\n".join(f.message for f in r102)
    assert "node vs tid" in messages
    assert "samples vs bytes" in messages


def test_r102_suppression_and_negative():
    findings = deep_lint_sources({"src/policy/score.py": R102_SRC})
    for finding in findings:
        assert "hushed" not in finding.message
        assert "clean" not in finding.message


# ----------------------------------------------------------------------
# R103: missing page-size conversion
# ----------------------------------------------------------------------
R103_SRC = """\
def footprint(n_granules, nbytes):
    return n_granules + nbytes


def compare(n_chunks_2m, n_granules):
    return n_chunks_2m < n_granules


def converted(n_granules, nbytes):
    return n_granules * PAGE_4K + nbytes


def hushed(n_granules, nbytes):
    return n_granules + nbytes  # lint: ignore[R103]
"""


def test_r103_fires_and_names_the_factor():
    findings = deep_lint_sources({"src/vm/sizes.py": R103_SRC})
    r103 = by_rule(findings, "R103")
    assert len(r103) == 2, format_findings(findings)
    messages = "\n".join(f.message for f in r103)
    assert "convert with PAGE_4K" in messages
    assert "GRANULES_PER_2M (512)" in messages


def test_r103_conversion_and_suppression_are_silent():
    findings = deep_lint_sources({"src/vm/sizes.py": R103_SRC})
    for finding in findings:
        assert "converted" not in finding.message
        assert "hushed" not in finding.message


def test_r102_and_r103_partition_by_family():
    findings = deep_lint_sources(
        {"src/policy/score.py": R102_SRC, "src/vm/sizes.py": R103_SRC}
    )
    assert {f.rule for f in findings} == {"R102", "R103"}
    # Page/byte-family mixes are R103, everything else R102 — never both.
    for finding in by_rule(findings, "R102"):
        assert finding.path == "src/policy/score.py"
    for finding in by_rule(findings, "R103"):
        assert finding.path == "src/vm/sizes.py"


# ----------------------------------------------------------------------
# R104: randomness / wall-clock reachable from sim entry points
# ----------------------------------------------------------------------
R104_ENGINE = """\
import numpy as np

from util import jitter, rng_for, rng_from_state, sanctioned


class Simulation:
    def run(self):
        self.step()
        rng_for(0)
        rng_from_state(None)
        sanctioned()
        return jitter()

    def step(self):
        return np.random.rand()
"""

R104_UTIL = """\
import time

import numpy as np


def jitter():
    return time.time()


def rng_for(seed):
    return np.random.default_rng(seed)


def rng_from_state(state):
    rng = np.random.default_rng()
    rng.bit_generator.state = state
    return rng


def sanctioned():
    return time.perf_counter()  # lint: ignore[R002]


def unreachable():
    return time.monotonic()
"""


def r104_findings():
    sources = {
        "src/repro/sim/engine.py": R104_ENGINE,
        "src/repro/util.py": R104_UTIL,
    }
    return deep_lint_sources(sources)


def test_r104_reports_reachable_sinks_with_chains():
    r104 = by_rule(r104_findings(), "R104")
    assert len(r104) == 2, format_findings(r104)
    messages = "\n".join(f.message for f in r104)
    assert "np.random.rand()" in messages
    assert "time.time()" in messages
    # The call chain from the entry point is spelled out.
    assert "Simulation.run -> util.jitter" in messages


def test_r104_skips_unreachable_and_sanctioned_sinks():
    messages = "\n".join(f.message for f in r104_findings())
    assert "time.monotonic" not in messages  # unreachable from run()
    assert "perf_counter" not in messages  # carries lint: ignore[R002]
    # rng_for and rng_from_state are the sanctioned construction sites
    assert "default_rng" not in messages


def test_r104_entry_point_registry_extends_roots():
    source = (
        "import time\n"
        "\n"
        "_SIM_ENTRY_POINTS = ('Daemon.tick',)\n"
        "\n"
        "\n"
        "class Daemon:\n"
        "    def tick(self):\n"
        "        return time.monotonic()\n"
    )
    findings = deep_lint_sources({"src/policyd.py": source})
    r104 = by_rule(findings, "R104")
    assert len(r104) == 1
    assert "time.monotonic" in r104[0].message


def test_r104_silent_without_entry_points():
    source = "import time\n\n\ndef helper():\n    return time.time()\n"
    findings = deep_lint_sources({"src/loose.py": source})
    assert by_rule(findings, "R104") == []


# ----------------------------------------------------------------------
# The shipped tree itself
# ----------------------------------------------------------------------
def test_shipped_tree_deep_lints_clean_within_budget():
    t0 = time.perf_counter()
    findings = deep_lint_paths([PACKAGE])
    elapsed = time.perf_counter() - t0
    assert findings == [], format_findings(findings)
    # ISSUE acceptance bound: single-process analysis of src/ < 10s.
    assert elapsed < 10.0, f"deep analysis took {elapsed:.2f}s"


def test_shipped_prefill_worker_is_a_thread_entry():
    # The stream-bank background prefill worker runs concurrently with
    # every bank consumer; R105-R108 are vacuous for it unless the
    # module's _THREAD_ENTRY_POINTS registry resolves it to an analyzed
    # entry whose call chain is walked.
    from repro.analysis.callgraph import Project
    from repro.analysis.concurrency import ConcurrencyModel

    project = Project.from_paths([PACKAGE])
    model = ConcurrencyModel(project)
    worker = [
        q for q in model.entries if q.endswith("StreamBank._prefill_worker")
    ]
    assert worker, f"prefill worker not a thread entry; entries: {model.entries}"
    # The analysis actually reaches the fill path through the worker,
    # so the lock-discipline rules see the row-claim protocol.
    chains = model.chains
    assert any(q.endswith("StreamBank._ensure_row") for q in chains)
    assert any(q.endswith("StreamBank._fill_row") for q in chains)


def test_shipped_profiler_and_invariants_are_verified_neutral():
    # The R101 registries actually cover the measurement modules: every
    # function in sim/profile.py and analysis/invariants.py is analyzed
    # and passes the purity predicate (the clean deep lint above is not
    # vacuous).
    from repro.analysis.callgraph import Project
    from repro.analysis.deep import ResultNeutralPurity, _covers

    project = Project.from_paths([PACKAGE])
    project.analyze()
    covered = [
        q
        for q in project.functions
        if _covers("sim.profile", q) or _covers("analysis.invariants", q)
    ]
    assert len(covered) >= 15
    assert any("PhaseTimer.lap" in q for q in covered)
    assert any("InvariantChecker.after_epoch" in q for q in covered)
    assert list(ResultNeutralPurity().check(project)) == []
