"""Runtime invariant checker: enablement, overhead-freedom, detection.

The contract under test: with checking on, a healthy run is bit-
identical to an unchecked run and completes without violations; with
state corrupted in any of the ways the checker guards (conservation,
split bookkeeping, replica accounting, counter sanity), it raises a
structured :class:`InvariantViolation` naming the run context.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.invariants import (
    CHECK_ENV,
    InvariantViolation,
    check_address_space,
    check_epoch_counters,
    check_page_conservation,
    check_physical_memory,
    invariants_enabled,
)
from repro.experiments.configs import make_policy
from repro.hardware.machines import machine_by_name
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.workloads.registry import get_workload

WORKLOAD = "CG.D"
MACHINE = "A"
POLICY = "carrefour-lp"  # exercises splits, migration and replication


def _make_sim(check_invariants: bool) -> Simulation:
    cfg = dataclasses.replace(
        SimConfig.quick(seed=0), check_invariants=check_invariants
    )
    return Simulation(
        machine_by_name(MACHINE),
        get_workload(WORKLOAD),
        make_policy(POLICY, seed=0),
        config=cfg,
    )


@pytest.fixture(scope="module")
def checked_sim():
    """One completed, invariant-checked simulation shared by the module.

    Corruption tests mutate its state and must restore it before
    returning.
    """
    sim = _make_sim(check_invariants=True)
    sim.run()
    return sim


# ----------------------------------------------------------------------
# Enablement
# ----------------------------------------------------------------------
def test_config_flag_enables_checker(monkeypatch):
    monkeypatch.delenv(CHECK_ENV, raising=False)
    assert _make_sim(True).invariant_checker is not None
    assert _make_sim(False).invariant_checker is None


def test_env_overrides_config_both_directions(monkeypatch):
    monkeypatch.setenv(CHECK_ENV, "1")
    assert _make_sim(False).invariant_checker is not None
    monkeypatch.setenv(CHECK_ENV, "0")
    assert _make_sim(True).invariant_checker is None


def test_invariants_enabled_semantics(monkeypatch):
    cfg_on = dataclasses.replace(SimConfig.quick(seed=0), check_invariants=True)
    cfg_off = SimConfig.quick(seed=0)
    monkeypatch.delenv(CHECK_ENV, raising=False)
    assert invariants_enabled(cfg_on) is True
    assert invariants_enabled(cfg_off) is False
    assert invariants_enabled(None) is False
    for value in ("1", "true", "ON", "yes"):
        monkeypatch.setenv(CHECK_ENV, value)
        assert invariants_enabled(cfg_off) is True
    for value in ("0", "false", "Off", "no"):
        monkeypatch.setenv(CHECK_ENV, value)
        assert invariants_enabled(cfg_on) is False


# ----------------------------------------------------------------------
# Clean runs
# ----------------------------------------------------------------------
def test_checked_run_is_clean_and_checks_every_epoch(checked_sim):
    checker = checked_sim.invariant_checker
    assert checker is not None
    assert checker._epochs_checked == len(checked_sim.bank.epochs) > 0


def test_checking_does_not_perturb_results(checked_sim, monkeypatch):
    monkeypatch.delenv(CHECK_ENV, raising=False)
    unchecked = _make_sim(check_invariants=False)
    result = unchecked.run()
    assert result.runtime_s.hex() == checked_sim.sim_time_s.hex()
    assert result.epoch_times_s == [
        e.duration_s for e in checked_sim.bank.epochs
    ]


# ----------------------------------------------------------------------
# Detection (corrupt one property at a time, restore afterwards)
# ----------------------------------------------------------------------
def test_detects_split_bookkeeping_drift(checked_sim):
    asp = checked_sim.asp
    asp.mapped_count_2m[0] += 1
    try:
        with pytest.raises(InvariantViolation, match="mapped_count_2m"):
            check_address_space(asp)
    finally:
        asp.mapped_count_2m[0] -= 1
    check_address_space(asp)


def test_detects_replica_byte_drift(checked_sim):
    asp = checked_sim.asp
    asp.replica_bytes += 4096
    try:
        with pytest.raises(InvariantViolation, match="replica byte counter"):
            check_address_space(asp)
    finally:
        asp.replica_bytes -= 4096
    check_address_space(asp)


def test_detects_leaked_frames(checked_sim):
    """Allocator usage with no backing mapping breaks conservation."""
    node = checked_sim.phys[0]
    node.alloc_small(1)
    try:
        with pytest.raises(InvariantViolation, match="page conservation"):
            check_page_conservation(checked_sim.asp)
    finally:
        node.free_small(1)
    check_page_conservation(checked_sim.asp)


def test_detects_bad_epoch_counters(checked_sim):
    counters = checked_sim.bank.epochs[-1]
    n_nodes = checked_sim.machine.n_nodes
    original = counters.traffic[0, 0]
    counters.traffic[0, 0] = -1.0
    try:
        with pytest.raises(InvariantViolation, match="negative traffic"):
            check_epoch_counters(counters, n_nodes)
    finally:
        counters.traffic[0, 0] = original
    check_epoch_counters(counters, n_nodes)
    with pytest.raises(InvariantViolation, match="shape"):
        check_epoch_counters(counters, n_nodes + 1)


def test_physical_memory_accounting_holds(checked_sim):
    check_physical_memory(checked_sim.phys)


# ----------------------------------------------------------------------
# Violations carry run context
# ----------------------------------------------------------------------
def test_engine_raises_with_run_context(monkeypatch):
    monkeypatch.delenv(CHECK_ENV, raising=False)
    sim = _make_sim(check_invariants=True)
    sim.asp.replica_bytes += 4096  # corrupt before the first epoch
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run()
    exc = excinfo.value
    assert exc.workload == sim.instance.name
    assert exc.machine == sim.machine.name
    assert exc.policy == sim.policy.name
    assert exc.epoch == 0
    assert "replica byte counter" in exc.detail
    assert f"policy={sim.policy.name}" in str(exc)


def test_violation_message_without_context():
    exc = InvariantViolation("LAR 1.5 outside [0, 1]")
    assert str(exc) == "LAR 1.5 outside [0, 1]"
    assert exc.epoch is None
