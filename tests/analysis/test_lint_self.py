"""The shipped tree must satisfy its own linter, and the CLI must
report that with exit code 0 (non-zero when findings exist)."""

from __future__ import annotations

import json
import pathlib

import repro
from repro.analysis.linter import format_findings, lint_paths
from repro.cli import main

PACKAGE = pathlib.Path(repro.__file__).parent
FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def test_package_lints_clean():
    findings = lint_paths([PACKAGE])
    assert findings == [], format_findings(findings)


def test_cli_lint_exits_zero_on_clean_tree(capsys):
    assert main(["lint", str(PACKAGE), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"findings": [], "count": 0}


def test_cli_lint_default_target_is_the_package(capsys):
    assert main(["lint"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_lint_exits_nonzero_on_findings(capsys):
    assert main(["lint", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "finding(s)" in out
    for rule in ("R001", "R002", "R003", "R004", "R005"):
        assert rule in out


def test_cli_lint_json_findings_shape(capsys):
    assert main(["lint", str(FIXTURES / "r004_bad.py"), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"]) > 0
    assert set(payload["findings"][0]) == {
        "rule",
        "path",
        "line",
        "col",
        "message",
    }
