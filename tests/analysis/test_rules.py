"""Fixture-driven tests for lint rules R001-R005.

Each rule has a ``*_bad.py`` fixture that must trip it (and only it)
and a ``*_clean.py`` counterexample that must lint clean under every
rule.  Path-scoped rules (R003, R005, the wall-clock half of R002)
keep their fixtures under ``fixtures/sim/`` so the scoping logic is
exercised by the same layout the real tree uses.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.linter import lint_paths, lint_source
from repro.analysis.rules import rules_by_id

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

BAD_FIXTURES = [
    ("r001_bad.py", "R001"),
    ("r002_bad.py", "R002"),
    ("sim/r002_time_bad.py", "R002"),
    ("sim/r003_bad.py", "R003"),
    ("r004_bad.py", "R004"),
    ("sim/r005_bad.py", "R005"),
]

CLEAN_FIXTURES = [
    "r001_clean.py",
    "r002_clean.py",
    "sim/r002_time_clean.py",
    "sim/r003_clean.py",
    "r004_clean.py",
    "sim/r005_clean.py",
]


@pytest.mark.parametrize("name,rule_id", BAD_FIXTURES)
def test_bad_fixture_trips_exactly_its_rule(name, rule_id):
    findings = lint_paths([FIXTURES / name])
    assert findings, f"{name} produced no findings"
    assert {f.rule for f in findings} == {rule_id}


@pytest.mark.parametrize("name", CLEAN_FIXTURES)
def test_clean_fixture_has_no_findings(name):
    assert lint_paths([FIXTURES / name]) == []


def test_bad_fixture_counts():
    """Every distinct defect in a bad fixture is reported separately."""
    expected = {
        "r001_bad.py": 2,  # two dataclasses with incomplete keys
        "r002_bad.py": 3,  # two np.random calls + one random.shuffle
        "sim/r002_time_bad.py": 2,  # time.time + datetime.now
        "sim/r003_bad.py": 3,  # dict loop, sum-over-values, set loop
        "r004_bad.py": 2,  # except Exception + bare except
        "sim/r005_bad.py": 4,  # two mutable defaults + == and != on floats
    }
    for name, count in expected.items():
        findings = lint_paths([FIXTURES / name])
        assert len(findings) == count, (name, [f.message for f in findings])


def test_sim_scoped_rules_skip_non_sim_paths():
    source = (FIXTURES / "sim" / "r003_bad.py").read_text()
    assert lint_source(source, "sim/r003_bad.py")
    assert lint_source(source, "tools/r003_bad.py") == []


def test_suppression_comment_silences_named_rule():
    source = (
        "def f(d: dict) -> float:\n"
        "    total = 0.0\n"
        "    for k, v in d.items():  # lint: ignore[R003]\n"
        "        total += v\n"
        "    return total\n"
    )
    assert lint_source(source, "sim/snippet.py") == []
    # The suppression is per-rule: a different id does not silence it.
    unsuppressed = source.replace("[R003]", "[R004]")
    assert [f.rule for f in lint_source(unsuppressed, "sim/snippet.py")] == [
        "R003"
    ]


def test_r002_sanctions_generator_construction_sites():
    """R002 skips calls inside the two sanctioned sites: the seeded
    derivation (rng_for) and the state replay the stream banks use
    (rng_from_state)."""
    source = (
        "import numpy as np\n"
        "\n"
        "\n"
        "def rng_from_state(state):\n"
        "    rng = np.random.default_rng()\n"
        "    rng.bit_generator.state = state\n"
        "    return rng\n"
        "\n"
        "\n"
        "def unsanctioned(state):\n"
        "    return np.random.default_rng()\n"
    )
    findings = lint_source(source, "x.py")
    assert [f.rule for f in findings] == ["R002"]
    assert findings[0].line == 11  # only the call outside rng_from_state


def test_blanket_suppression_comment():
    source = "import numpy as np\nrng = np.random.default_rng()  # lint: ignore\n"
    assert lint_source(source, "x.py") == []


def test_rule_subset_selection():
    """Running only R004 ignores defects other rules would flag."""
    source = (FIXTURES / "r002_bad.py").read_text()
    assert lint_source(source, "x.py", rules=rules_by_id("R004")) == []
    with pytest.raises(ValueError):
        rules_by_id("R999")


def test_syntax_error_reported_not_raised(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    findings = lint_paths([broken])
    assert [f.rule for f in findings] == ["E001"]


def test_finding_formats():
    findings = lint_paths([FIXTURES / "r004_bad.py"])
    text = findings[0].format_text()
    assert "R004" in text and text.count(":") >= 3
    payload = findings[0].to_dict()
    assert payload["rule"] == "R004" and payload["line"] > 0
