"""Unit tests for the units-of-measure inference pass (R102/R103 core).

These drive :class:`repro.analysis.units.UnitChecker` directly over
tiny in-memory projects and assert on the raw :class:`UnitEvent`
stream, independent of rule classification and suppression (covered in
``test_deep_rules.py``).
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import Project
from repro.analysis.units import (
    BYTES,
    NODE,
    PAGES_2M,
    PAGES_4K,
    SAMPLES,
    TID,
    UnitChecker,
    naming_fallback,
    unit_from_annotation,
)


def events_for(source, path="src/mod.py"):
    project = Project.from_sources({path: source})
    project.analyze()
    checker = UnitChecker(project)
    return [(info.name, event) for info, event in checker.check()]


def pairs(events):
    return {(name, e.left, e.right) for name, e in events}


# ----------------------------------------------------------------------
# Annotation parsing
# ----------------------------------------------------------------------
def annotation_unit(text):
    return unit_from_annotation(ast.parse(text, mode="eval").body)


def test_alias_annotations():
    assert annotation_unit("Bytes") == BYTES
    assert annotation_unit("Pages4K") == PAGES_4K
    assert annotation_unit("units.NodeId") == NODE
    assert annotation_unit("SamplesArray") == SAMPLES


def test_annotated_literal_and_string_forms():
    assert annotation_unit("Annotated[int, 'pages4k']") == PAGES_4K
    assert annotation_unit("typing.Annotated[int, 'node']") == NODE
    # `from __future__ import annotations` turns annotations into
    # string constants; the parser must see through them.
    assert unit_from_annotation(ast.Constant(value="Bytes")) == BYTES
    assert unit_from_annotation(ast.Constant(value="Optional[Pages4K]")) == (
        PAGES_4K
    )


def test_unknown_annotations_are_none():
    assert annotation_unit("int") is None
    assert annotation_unit("Annotated[int, 'furlongs']") is None
    assert unit_from_annotation(None) is None


# ----------------------------------------------------------------------
# Naming fallback
# ----------------------------------------------------------------------
def test_naming_fallback_vocabulary():
    assert naming_fallback("total_bytes") == BYTES
    assert naming_fallback("nbytes") == BYTES
    assert naming_fallback("n_granules") == PAGES_4K
    assert naming_fallback("free_frames") == PAGES_4K
    assert naming_fallback("n_chunks_2m") == PAGES_2M
    assert naming_fallback("node_id") == NODE
    assert naming_fallback("dst_node") == NODE
    assert naming_fallback("thread_id") == TID
    assert naming_fallback("n_samples") == SAMPLES


def test_naming_fallback_exclusions():
    # x_of_y names are mappings *indexed by* y, not quantities of y.
    assert naming_fallback("chunk_of_granule") is None
    assert naming_fallback("g_of_granule") is None
    # faults_2m is a count of fault events, not 2MB pages: bare
    # _2m/_4k suffixes deliberately do not participate.
    assert naming_fallback("page_faults_2m") is None
    assert naming_fallback("weight") is None


# ----------------------------------------------------------------------
# Mismatch events
# ----------------------------------------------------------------------
def test_arithmetic_mismatch_from_annotations():
    source = "def f(home: NodeId, owner: ThreadId):\n    return home + owner\n"
    events = events_for(source)
    assert pairs(events) == {("f", NODE, TID)}


def test_comparison_mismatch_from_naming():
    source = (
        "def f(n_samples, total_bytes):\n"
        "    return n_samples > total_bytes\n"
    )
    events = events_for(source)
    assert pairs(events) == {("f", SAMPLES, BYTES)}


def test_assignment_to_dimensioned_name():
    source = "def f(n_granules):\n    total_bytes = n_granules\n    return total_bytes\n"
    events = events_for(source)
    assert pairs(events) == {("f", BYTES, PAGES_4K)}
    assert all(e.is_conversion for _, e in events)


def test_matching_units_are_silent():
    source = (
        "def f(n_granules, more_granules, total_bytes, other_bytes):\n"
        "    a = n_granules + more_granules\n"
        "    b = total_bytes - other_bytes\n"
        "    return a, b\n"
    )
    assert events_for(source) == []


def test_unannotated_code_is_silent():
    source = "def f(x, y):\n    return x + y\n"
    assert events_for(source) == []


# ----------------------------------------------------------------------
# Conversion algebra
# ----------------------------------------------------------------------
def test_multiplying_by_page_4k_converts_to_bytes():
    source = (
        "def f(n_granules, other_bytes):\n"
        "    return n_granules * PAGE_4K + other_bytes\n"
    )
    assert events_for(source) == []


def test_dividing_by_page_4k_converts_to_granules():
    source = (
        "def f(total_bytes, n_granules):\n"
        "    return total_bytes // PAGE_4K + n_granules\n"
    )
    assert events_for(source) == []


def test_int_wrapped_converter_still_converts():
    source = (
        "def f(n_chunks_2m, other_bytes):\n"
        "    return n_chunks_2m * int(PageSize.SIZE_2M) + other_bytes\n"
    )
    assert events_for(source) == []


def test_shift_by_shift_2m_converts_granules_to_chunks():
    good = "def f(granule):\n    n_chunks_2m = granule >> SHIFT_2M\n"
    assert events_for(good) == []
    bad = "def f(granule):\n    n_chunks_2m = granule\n"
    assert pairs(events_for(bad)) == {("f", PAGES_2M, PAGES_4K)}


def test_shift_difference_converts_chunks_to_gigachunks():
    source = (
        "def f(n_chunks_2m):\n"
        "    n_chunks_1g = n_chunks_2m >> (SHIFT_1G - SHIFT_2M)\n"
    )
    assert events_for(source) == []


def test_standalone_converter_reads_as_target_unit():
    # Bare GRANULES_PER_2M is "the 4KB pages in one 2MB page".
    good = "def f():\n    n_granules = GRANULES_PER_2M\n    return n_granules\n"
    assert events_for(good) == []
    bad = "def f():\n    nbytes = GRANULES_PER_2M\n    return nbytes\n"
    assert pairs(events_for(bad)) == {("f", BYTES, PAGES_4K)}


def test_modulo_keeps_unit_only_for_dimensionless_divisor():
    # x % ALIGN is an in-unit offset...
    bad = "def f(granule):\n    home_node = granule % 8\n"
    assert pairs(events_for(bad)) == {("f", NODE, PAGES_4K)}
    # ...but x % n_nodes is the round-robin interleave idiom: the
    # result is a node index, not a granule count.
    good = "def f(granule, n_nodes):\n    home_node = (granule + 3) % n_nodes\n"
    assert events_for(good) == []


def test_suggestion_names_the_conversion_factor():
    events = events_for("def f(n_granules, nbytes):\n    return n_granules + nbytes\n")
    assert len(events) == 1
    _, event = events[0]
    assert event.is_conversion
    assert "PAGE_4K" in event.suggestion()


# ----------------------------------------------------------------------
# Signatures, attributes, returns
# ----------------------------------------------------------------------
def test_call_argument_checked_against_annotated_parameter():
    source = (
        "def alloc(n: Pages4K):\n"
        "    return n\n"
        "\n"
        "def f(nbytes):\n"
        "    return alloc(nbytes)\n"
    )
    events = events_for(source)
    assert pairs(events) == {("f", PAGES_4K, BYTES)}
    assert any("alloc" in e.detail for _, e in events)


def test_keyword_argument_checked():
    source = (
        "def alloc(count, n: Pages4K = 0):\n"
        "    return n\n"
        "\n"
        "def f(nbytes):\n"
        "    return alloc(0, n=nbytes)\n"
    )
    assert pairs(events_for(source)) == {("f", PAGES_4K, BYTES)}


def test_return_annotation_checked():
    source = "def f(n_granules) -> Bytes:\n    return n_granules\n"
    events = events_for(source)
    assert pairs(events) == {("f", BYTES, PAGES_4K)}
    assert events[0][1].kind == "return"


def test_annotated_class_attribute_dimensions_reads():
    source = (
        "class A:\n"
        "    footprint: Bytes\n"
        "\n"
        "def f(a, n_granules):\n"
        "    return a.footprint + n_granules\n"
    )
    assert pairs(events_for(source)) == {("f", BYTES, PAGES_4K)}


def test_conflicting_attribute_annotations_poison_the_name():
    source = (
        "class A:\n"
        "    slot: Bytes\n"
        "\n"
        "class B:\n"
        "    slot: Pages4K\n"
        "\n"
        "def f(a, n_granules):\n"
        "    return a.slot + n_granules\n"
    )
    assert events_for(source) == []


def test_ambiguous_method_candidates_are_skipped():
    source = (
        "class A:\n"
        "    def place(self, n: Pages4K):\n"
        "        return n\n"
        "\n"
        "class B:\n"
        "    def place(self, n: Bytes):\n"
        "        return n\n"
        "\n"
        "def f(obj, n_nodes):\n"
        "    return obj.place(n_nodes)\n"
    )
    # Two candidates with disagreeing units: no basis to check against.
    assert events_for(source) == []


def test_passthrough_calls_preserve_units():
    source = (
        "def f(n_granules, nbytes):\n"
        "    return int(n_granules) + abs(nbytes)\n"
    )
    assert pairs(events_for(source)) == {("f", PAGES_4K, BYTES)}
